//! The `zoomd` wire layer: framed requests/responses over the binary
//! codec, the run-sharding router, and the per-tenant quota table.
//!
//! The daemon speaks a length-prefixed binary protocol whose payloads are
//! [`Request`]/[`Response`] values encoded with the same hand-rolled serde
//! codec ([`crate::codec`]) that backs persistence and traces, and whose
//! frames carry the same `[u32 len][u32 crc32][payload]` envelope as the
//! journal and the ZOOMTR trace format. Every frame is capped at
//! [`MAX_FRAME_BYTES`] on **both** sides: writers refuse to emit an
//! oversized frame (no silent `as u32` truncation), and readers reject an
//! oversized *declared* length before allocating a byte for it, so a
//! hostile 4 GiB length prefix costs the server nothing.
//!
//! Sharding model: runs are hash-partitioned across N independent
//! warehouse shards ([`ShardRouter`]). Specifications and views are
//! broadcast to every shard under the registration lock, so `SpecId` and
//! `ViewId` assignments agree everywhere; run ids are allocated globally
//! and sequentially (exactly the sequence a single warehouse would
//! produce, which is what lets a recorded trace replay against a daemon
//! digest-for-digest) and translated to the owning shard's local id
//! through the run map. A query only ever locks the one shard that owns
//! its run, so queries against different shards proceed in parallel, each
//! under that shard's own admission control.
//!
//! Tenancy: each connection names a tenant (`Hello`); the
//! [`TenantQuotaTable`] layers a per-tenant session cap and a per-tenant
//! admission semaphore (the PR 5 [`AdmissionControl`]) *above* the
//! per-shard one, so one tenant flooding the daemon sheds its own traffic
//! before it can starve another tenant's shard time. The table itself is
//! bounded against hostile tenant churn: names are capped at
//! [`MAX_TENANT_NAME_BYTES`], the table holds at most
//! [`TenantQuotas::max_tenants`] entries, and idle entries (no open
//! sessions, no in-flight or queued requests) are evicted to make room
//! before a new tenant is refused.

use crate::codec::{self, CodecError};
use crate::durable::{fsck_with, DurableError, DurableOptions, DurableWarehouse, FsckReport};
use crate::io::{RealFs, StorageIo};
use crate::journal::crc32;
use crate::metrics::{MetricsSnapshot, SlowQuery};
use crate::query::ProvenanceResult;
use crate::resilience::{AdmissionControl, AdmissionPermit, HealthReport, ShardState};
use crate::schema::{RunId, SpecId, ViewId, WarehouseStats};
use crate::store::{ImmediateAnswer, Result as WhResult, Warehouse, WarehouseError};
use crate::stream::PushOutcome;
use crate::trace::fnv1a;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};
use std::time::Instant;
use zoom_model::{DataId, EventLog, LogEvent, StepId, UserView, WorkflowSpec};

/// Hard cap on one wire/trace frame payload, enforced on write (no silent
/// truncation) and on read (no attacker-sized allocation): 64 MiB.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Hard cap on a tenant name (`Hello`); names are attacker-chosen, so
/// anything that stores one must bound it first.
pub const MAX_TENANT_NAME_BYTES: usize = 256;

/// Backoff hint carried by the typed [`Response::Unavailable`] answer a
/// quarantined or rebuilding shard returns instead of serving a mutation.
pub const DEFAULT_RETRY_AFTER_MS: u64 = 100;

/// Errors from the framed wire layer.
#[derive(Debug)]
pub enum WireError {
    /// A frame payload exceeded [`MAX_FRAME_BYTES`] — either an outgoing
    /// payload too large to frame, or an incoming declared length that was
    /// rejected before any allocation.
    FrameTooLarge {
        /// The offending payload (or declared) length.
        len: u64,
    },
    /// An incoming frame's CRC did not match its payload.
    BadCrc,
    /// The peer disconnected mid-frame (after a frame header started).
    Truncated,
    /// Transport error.
    Io(std::io::Error),
    /// A frame payload failed to decode as the expected message type.
    Codec(CodecError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::FrameTooLarge { len } => {
                write!(f, "frame of {len} bytes exceeds cap of {MAX_FRAME_BYTES}")
            }
            WireError::BadCrc => write!(f, "frame checksum mismatch"),
            WireError::Truncated => write!(f, "connection closed mid-frame"),
            WireError::Io(e) => write!(f, "wire io error: {e}"),
            WireError::Codec(e) => write!(f, "wire codec error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        WireError::Codec(e)
    }
}

/// Writes one `[u32 len][u32 crc32][payload]` frame, refusing payloads
/// over [`MAX_FRAME_BYTES`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() as u64 > MAX_FRAME_BYTES as u64 {
        return Err(WireError::FrameTooLarge {
            len: payload.len() as u64,
        });
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream (the peer closed
/// between frames); a close *inside* a frame is [`WireError::Truncated`].
/// A declared length above [`MAX_FRAME_BYTES`] is rejected before any
/// payload allocation.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
    let mut header = [0u8; 8];
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(WireError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len > MAX_FRAME_BYTES {
        return Err(WireError::FrameTooLarge { len: len as u64 });
    }
    let mut payload = vec![0u8; len as usize];
    if let Err(e) = r.read_exact(&mut payload) {
        return if e.kind() == std::io::ErrorKind::UnexpectedEof {
            Err(WireError::Truncated)
        } else {
            Err(WireError::Io(e))
        };
    }
    if crc32(&payload) != crc {
        return Err(WireError::BadCrc);
    }
    Ok(Some(payload))
}

/// Encodes a message and writes it as one frame.
pub fn write_message<T: Serialize>(w: &mut impl Write, msg: &T) -> Result<(), WireError> {
    let payload = codec::to_bytes(msg).map_err(WireError::Codec)?;
    write_frame(w, &payload)
}

/// Reads one frame and decodes it. `Ok(None)` is clean end-of-stream.
pub fn read_message<T: for<'de> Deserialize<'de>>(
    r: &mut impl Read,
) -> Result<Option<T>, WireError> {
    match read_frame(r)? {
        None => Ok(None),
        Some(payload) => Ok(Some(codec::from_bytes(&payload)?)),
    }
}

// ---------------------------------------------------------------------------
// Protocol messages
// ---------------------------------------------------------------------------

/// One client request frame. Requests and responses correlate 1:1 in
/// order on a connection; many logical sessions multiplex over one
/// connection by carrying their `session` id per request.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Names the connection's tenant for quota accounting. Optional;
    /// connections that skip it bill to the `"anon"` tenant.
    Hello {
        /// Tenant name.
        tenant: String,
    },
    /// Opens a logical session; the reply carries its id.
    OpenSession,
    /// Closes a logical session. Only sessions opened on the *same*
    /// connection may be closed — session ids are guessable, so closing
    /// by id alone would let one tenant corrupt another's quota
    /// accounting.
    CloseSession {
        /// The session to close.
        session: u64,
    },
    /// `register_spec`, broadcast to every shard.
    RegisterSpec {
        /// The specification.
        spec: WorkflowSpec,
    },
    /// `register_view`, broadcast to every shard.
    RegisterView {
        /// Owning specification.
        spec: SpecId,
        /// The (already-validated) view partition.
        view: UserView,
    },
    /// Builds the good user view for a relevant-module set server-side.
    BuildView {
        /// Owning specification.
        spec: SpecId,
        /// Relevant module names.
        relevant: Vec<String>,
    },
    /// Registers the admin (identity) view server-side.
    AdminView {
        /// Owning specification.
        spec: SpecId,
    },
    /// Batch `load_log` of a complete event log.
    LoadLog {
        /// Session the ingest bills to.
        session: u64,
        /// Owning specification.
        spec: SpecId,
        /// The event log.
        log: EventLog,
    },
    /// Opens a streaming ingest run.
    BeginStream {
        /// Session the stream bills to.
        session: u64,
        /// Owning specification.
        spec: SpecId,
    },
    /// Pushes one event into an open stream.
    StreamPush {
        /// Session the stream bills to.
        session: u64,
        /// The (global) run id.
        run: RunId,
        /// The event.
        event: LogEvent,
    },
    /// Seals an open stream.
    StreamSeal {
        /// Session the stream bills to.
        session: u64,
        /// The (global) run id.
        run: RunId,
    },
    /// Deep provenance query.
    DeepProvenance {
        /// Session the query bills to.
        session: u64,
        /// The run.
        run: RunId,
        /// The view.
        view: ViewId,
        /// The data object.
        data: DataId,
    },
    /// Batched deep provenance queries (fan out on the owning shards).
    QueryBatch {
        /// Session the batch bills to.
        session: u64,
        /// `(run, view, data)` triples, answered in input order.
        queries: Vec<(RunId, ViewId, DataId)>,
    },
    /// Immediate provenance query.
    ImmediateProvenance {
        /// Session the query bills to.
        session: u64,
        /// The run.
        run: RunId,
        /// The view.
        view: ViewId,
        /// The data object.
        data: DataId,
    },
    /// Forward (dependents) query.
    DependentsOf {
        /// Session the query bills to.
        session: u64,
        /// The run.
        run: RunId,
        /// The view.
        view: ViewId,
        /// The data object.
        data: DataId,
    },
    /// Data passed between two (possibly virtual) executions.
    DataBetween {
        /// Session the query bills to.
        session: u64,
        /// The run.
        run: RunId,
        /// The view.
        view: ViewId,
        /// Source execution (`None` = the input node).
        from: Option<StepId>,
        /// Target execution (`None` = the output node).
        to: Option<StepId>,
    },
    /// The run's final outputs.
    FinalOutputs {
        /// Session the query bills to.
        session: u64,
        /// The run.
        run: RunId,
    },
    /// Every data object visible at a view level.
    VisibleData {
        /// Session the query bills to.
        session: u64,
        /// The run.
        run: RunId,
        /// The view.
        view: ViewId,
    },
    /// Per-shard table counters.
    Stats,
    /// Per-shard full observability snapshots. Snapshots embed the
    /// slow-query ring; non-admin callers get the ring filtered to their
    /// own tenant's entries (same admin rule as [`Request::SlowLog`]).
    Metrics {
        /// The admin token, for the unfiltered cross-tenant snapshot.
        token: Option<String>,
    },
    /// Per-shard health reports.
    Health,
    /// The slow-query log across shards, optionally resetting the capture
    /// threshold first.
    SlowLog {
        /// New threshold to set before reading, if any. Honoured only for
        /// admin callers; non-admin callers get their own tenant's slice
        /// of the ring and cannot retune the capture threshold.
        threshold_nanos: Option<u64>,
        /// The admin token, when the caller wants the full cross-tenant
        /// ring (same rule as [`Request::Shutdown`]).
        token: Option<String>,
    },
    /// Checkpoint every durable shard.
    Checkpoint,
    /// Resolves a workflow by name — and optionally one of its views by
    /// name — and lists the workflow's runs in load order, so the CLI's
    /// name-based addressing works without shipping whole tables.
    Resolve {
        /// The workflow name.
        workflow: String,
        /// A view name under that workflow, if one should resolve too.
        view: Option<String>,
    },
    /// Total open logical sessions across every tenant (daemon gauge).
    SessionCount,
    /// Asks the daemon to exit after replying. Honoured only for clients
    /// presenting the daemon's admin token — or, when no token is
    /// configured, for loopback peers — so a remote tenant cannot stop
    /// the daemon for everyone else.
    Shutdown {
        /// The admin token, when the daemon requires one.
        token: Option<String>,
    },
    /// Installs (or clears) a tenant's visibility policy. Admin-gated
    /// with the same rule as [`Request::Shutdown`]: the daemon's admin
    /// token when one is configured, else loopback peers only.
    PolicySet {
        /// The tenant the policy applies to.
        tenant: String,
        /// The policy; `None` (or an empty policy) clears it.
        policy: Option<crate::privacy::VisibilityPolicy>,
        /// The admin token, when the daemon requires one.
        token: Option<String>,
    },
    /// Reads a tenant's installed visibility policy. A tenant may always
    /// read its *own* policy; reading another tenant's requires admin.
    PolicyGet {
        /// The tenant whose policy to read.
        tenant: String,
        /// The admin token, when reading another tenant's policy.
        token: Option<String>,
    },
}

/// One batched-query slot: `Result` flattened for the wire.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum BatchItem {
    /// The query succeeded.
    Ok(ProvenanceResult),
    /// The query failed; the payload is the error's display rendering.
    Err(String),
}

/// One server response frame.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Response {
    /// Generic success.
    Ok,
    /// Reply to [`Request::Ping`].
    Pong,
    /// Reply to [`Request::OpenSession`].
    Session {
        /// The new session id.
        id: u64,
    },
    /// A registered specification id.
    Spec {
        /// The id (identical on every shard).
        id: SpecId,
    },
    /// A registered view id.
    View {
        /// The id (identical on every shard).
        id: ViewId,
    },
    /// A loaded/opened (global) run id.
    Run {
        /// The id.
        id: RunId,
    },
    /// A stream push outcome.
    Push {
        /// What the event did to the committed prefix.
        outcome: PushOutcome,
    },
    /// A deep-provenance answer.
    Provenance {
        /// The result.
        result: ProvenanceResult,
    },
    /// Batched deep-provenance answers, input order.
    Batch {
        /// One slot per input query.
        results: Vec<BatchItem>,
    },
    /// An immediate-provenance answer.
    Immediate {
        /// The answer.
        answer: ImmediateAnswer,
    },
    /// A plain data-object list.
    Data {
        /// The ids.
        ids: Vec<DataId>,
    },
    /// Reply to [`Request::Stats`].
    StatsAll {
        /// One entry per shard, shard order.
        shards: Vec<WarehouseStats>,
    },
    /// Reply to [`Request::Metrics`].
    MetricsAll {
        /// One entry per shard, shard order.
        shards: Vec<MetricsSnapshot>,
    },
    /// Reply to [`Request::Health`].
    HealthAll {
        /// One entry per shard, shard order.
        shards: Vec<HealthReport>,
    },
    /// Reply to [`Request::Resolve`].
    Resolved {
        /// The workflow's id.
        spec: SpecId,
        /// The resolved view id, when a view name was given.
        view: Option<ViewId>,
        /// The workflow's (global) run ids, load order.
        runs: Vec<RunId>,
    },
    /// Reply to [`Request::SessionCount`].
    Count {
        /// The gauge value.
        n: u64,
    },
    /// Reply to [`Request::SlowLog`].
    SlowLogAll {
        /// Captured slow queries across all shards.
        queries: Vec<SlowQuery>,
    },
    /// The request failed; `message` is the error's display rendering
    /// (identical to what the equivalent in-process call would render, so
    /// trace digests agree across local and remote replay).
    Error {
        /// Display rendering of the error.
        message: String,
    },
    /// The addressed shard is quarantined or mid-rebuild: the supervisor
    /// took it out of the write path and it will return once repaired.
    /// Unlike [`Response::Error`] this is a *typed* refusal — the client
    /// can retry after the hinted delay without parsing error text, and
    /// the connection stays healthy (other shards keep answering on it).
    Unavailable {
        /// The supervised shard that refused the operation.
        shard: u32,
        /// Suggested client backoff before retrying, milliseconds.
        retry_after_ms: u64,
    },
    /// Reply to [`Request::Shutdown`]; the daemon exits after sending it.
    Bye,
    /// Reply to [`Request::PolicyGet`].
    Policy {
        /// The installed policy, `None` when the tenant is unrestricted.
        policy: Option<crate::privacy::VisibilityPolicy>,
    },
}

// ---------------------------------------------------------------------------
// Tenant quotas
// ---------------------------------------------------------------------------

/// Per-tenant limits layered above per-shard admission control.
#[derive(Clone, Copy, Debug)]
pub struct TenantQuotas {
    /// Maximum concurrently open logical sessions per tenant.
    pub max_sessions: usize,
    /// Maximum in-flight requests per tenant (the admission semaphore's
    /// in-flight limit).
    pub max_in_flight: usize,
    /// Maximum queued requests per tenant beyond the in-flight limit;
    /// past it, requests are shed with an overload error.
    pub max_queue: usize,
    /// Maximum distinct tenants tracked at once. Tenant names arrive
    /// attacker-chosen over the wire, so the table must not grow without
    /// bound: when full, idle entries (no sessions, nothing in flight)
    /// are evicted first, and if every entry is busy the new tenant is
    /// refused.
    pub max_tenants: usize,
}

impl Default for TenantQuotas {
    fn default() -> Self {
        TenantQuotas {
            max_sessions: 1 << 20,
            max_in_flight: 256,
            max_queue: 4096,
            max_tenants: 4096,
        }
    }
}

#[derive(Debug)]
struct TenantState {
    admission: Arc<AdmissionControl>,
    sessions: AtomicUsize,
}

/// Per-tenant session counters and admission semaphores.
#[derive(Debug)]
pub struct TenantQuotaTable {
    quotas: TenantQuotas,
    tenants: Mutex<HashMap<String, Arc<TenantState>>>,
}

impl TenantQuotaTable {
    /// A table applying `quotas` to every tenant.
    pub fn new(quotas: TenantQuotas) -> Self {
        TenantQuotaTable {
            quotas,
            tenants: Mutex::new(HashMap::new()),
        }
    }

    /// The configured limits.
    pub fn quotas(&self) -> TenantQuotas {
        self.quotas
    }

    /// The tenant's state, creating it if the table has room. `None`
    /// means the tenant must be refused: its name is oversized, or the
    /// table is at [`TenantQuotas::max_tenants`] and every tracked
    /// tenant is busy (idle entries are evicted to make room first).
    fn state(&self, tenant: &str) -> Option<Arc<TenantState>> {
        let mut map = lock(&self.tenants);
        if let Some(s) = map.get(tenant) {
            return Some(Arc::clone(s));
        }
        if tenant.len() > MAX_TENANT_NAME_BYTES {
            return None;
        }
        if map.len() >= self.quotas.max_tenants {
            // Evict idle tenants: no open sessions, nobody between a
            // table lookup and an admit (the map holds the only Arc),
            // and no permit outstanding or waiter queued.
            map.retain(|_, s| {
                s.sessions.load(Ordering::Relaxed) > 0
                    || Arc::strong_count(s) > 1
                    || s.admission.load() > 0
            });
            if map.len() >= self.quotas.max_tenants {
                return None;
            }
        }
        let s = Arc::new(TenantState {
            admission: Arc::new(AdmissionControl::new(
                self.quotas.max_in_flight,
                self.quotas.max_queue,
            )),
            sessions: AtomicUsize::new(0),
        });
        map.insert(tenant.to_string(), Arc::clone(&s));
        Some(s)
    }

    /// Distinct tenants currently tracked.
    pub fn tenant_count(&self) -> usize {
        lock(&self.tenants).len()
    }

    /// Reserves one session slot; `false` means the tenant is at its
    /// session cap (or refused outright by the table bound) and the open
    /// must be refused.
    pub fn open_session(&self, tenant: &str) -> bool {
        let Some(s) = self.state(tenant) else {
            return false;
        };
        let mut cur = s.sessions.load(Ordering::Relaxed);
        loop {
            if cur >= self.quotas.max_sessions {
                return false;
            }
            match s.sessions.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Releases one session slot.
    pub fn close_session(&self, tenant: &str) {
        let Some(s) = lock(&self.tenants).get(tenant).map(Arc::clone) else {
            return;
        };
        let mut cur = s.sessions.load(Ordering::Relaxed);
        while cur > 0 {
            match s.sessions.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Open sessions currently charged to `tenant`.
    pub fn session_count(&self, tenant: &str) -> usize {
        lock(&self.tenants)
            .get(tenant)
            .map(|s| s.sessions.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Admits one request for `tenant`, blocking in the tenant's bounded
    /// queue; `None` means the request is shed — the tenant's queue is
    /// full, or the tenant itself was refused by the table bound.
    pub fn admit(&self, tenant: &str) -> Option<AdmissionPermit> {
        let s = self.state(tenant)?;
        s.admission.admit()
    }
}

// ---------------------------------------------------------------------------
// Shard router
// ---------------------------------------------------------------------------

/// A poison-tolerant lock: a request thread that panicked while holding a
/// shard (the daemon catches the unwind and answers an error) must not
/// convert every later lock on that shard into a panic — that would let
/// one hostile session take the whole shard down for every other tenant.
/// Shard mutations are accept/apply split (validation happens before any
/// state changes), so the state under a poisoned lock is consistent.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One shard's storage: plain in-memory, or crash-safe durable.
#[derive(Debug)]
pub enum ShardBacking {
    /// In-memory warehouse.
    Memory(Box<Warehouse>),
    /// Durable warehouse directory.
    Durable(Box<DurableWarehouse>),
}

/// Unboxes warehouse-level rejections from the durable wrapper so remote
/// error renderings match the in-process ones digest-for-digest.
pub fn durability_err(e: DurableError) -> WarehouseError {
    match e {
        DurableError::Warehouse(we) => we,
        other => WarehouseError::Durability(Box::new(other)),
    }
}

impl ShardBacking {
    /// The underlying query warehouse.
    pub fn warehouse(&self) -> &Warehouse {
        match self {
            ShardBacking::Memory(w) => w,
            ShardBacking::Durable(dw) => dw.warehouse(),
        }
    }

    fn register_spec(&mut self, spec: WorkflowSpec) -> WhResult<SpecId> {
        match self {
            ShardBacking::Memory(w) => w.register_spec(spec),
            ShardBacking::Durable(dw) => dw.register_spec(spec).map_err(durability_err),
        }
    }

    fn register_view(&mut self, spec: SpecId, view: UserView) -> WhResult<ViewId> {
        match self {
            ShardBacking::Memory(w) => w.register_view(spec, view),
            ShardBacking::Durable(dw) => dw.register_view(spec, view).map_err(durability_err),
        }
    }

    fn load_log(&mut self, spec: SpecId, log: &EventLog) -> WhResult<RunId> {
        match self {
            ShardBacking::Memory(w) => w.load_log(spec, log),
            ShardBacking::Durable(dw) => dw.load_log(spec, log).map_err(durability_err),
        }
    }

    fn begin_stream(&mut self, spec: SpecId) -> WhResult<RunId> {
        match self {
            ShardBacking::Memory(w) => w.begin_stream(spec),
            ShardBacking::Durable(dw) => dw.begin_stream(spec).map_err(durability_err),
        }
    }

    fn stream_push(&mut self, run: RunId, event: &LogEvent) -> WhResult<PushOutcome> {
        match self {
            ShardBacking::Memory(w) => w.stream_push(run, event),
            ShardBacking::Durable(dw) => dw.stream_push(run, event).map_err(durability_err),
        }
    }

    fn stream_seal(&mut self, run: RunId) -> WhResult<()> {
        match self {
            ShardBacking::Memory(w) => w.stream_seal(run),
            ShardBacking::Durable(dw) => dw.stream_seal(run).map_err(durability_err),
        }
    }

    fn stats(&self) -> WarehouseStats {
        match self {
            ShardBacking::Memory(w) => w.stats(),
            ShardBacking::Durable(dw) => dw.stats(),
        }
    }

    fn health(&self) -> HealthReport {
        match self {
            ShardBacking::Memory(_) => HealthReport::in_memory(),
            ShardBacking::Durable(dw) => dw.health(),
        }
    }
}

/// Supervisor bookkeeping for one shard (DESIGN.md §17). Guarded by its
/// own mutex so state checks never contend with the (long-held) backing
/// lock; the supervision lock is a leaf — it is only ever taken last and
/// never held across a backing-lock acquisition.
#[derive(Debug)]
struct Supervision {
    state: ShardState,
    quarantines: u64,
    repairs: u64,
    failed_repairs: u64,
    last_repair_nanos: u64,
}

impl Supervision {
    fn new() -> Self {
        Supervision {
            state: ShardState::Healthy,
            quarantines: 0,
            repairs: 0,
            failed_repairs: 0,
            last_repair_nanos: 0,
        }
    }
}

/// The result of one online shard repair (fsck + reopen + atomic swap).
#[derive(Debug)]
pub struct RepairOutcome {
    /// The repaired shard.
    pub shard: usize,
    /// What fsck found on disk before the reopen; `None` for in-memory
    /// shards (nothing on disk to verify — the repair only clears the
    /// supervisor state).
    pub fsck: Option<FsckReport>,
    /// Wall-clock nanoseconds the repair took.
    pub nanos: u64,
}

/// Hash-partitions runs across N independent shards while keeping the
/// spec/view/run id sequences identical to a single warehouse's.
#[derive(Debug)]
pub struct ShardRouter {
    shards: Vec<Mutex<ShardBacking>>,
    /// Per-shard supervisor state, same order as `shards` (DESIGN.md §17).
    supervision: Vec<Mutex<Supervision>>,
    /// Serializes spec/view broadcasts across shards. Registration locks
    /// shards one at a time; without an outer lock, two concurrent
    /// registrations could interleave (shard 0 sees A then B, shard 1
    /// sees B then A) and commit divergent ids before the mismatch check
    /// could catch it.
    registration: Mutex<()>,
    /// Next global run id; held across the owning shard's mutation so a
    /// failed load consumes no id (exactly like a single warehouse).
    alloc: Mutex<u32>,
    /// Global run id → (shard index, shard-local run id).
    runs: RwLock<crate::fxhash::FxHashMap<u32, (usize, RunId)>>,
    /// Per-tenant visibility policies (DESIGN.md §16). Enforcement runs
    /// *before* dispatch — the daemon rewrites a restricted tenant's
    /// query to its effective view, so the shards never need to know
    /// about tenants. Not persisted: an operator re-applies policies on
    /// restart (`zoomctl policy set`), which also guarantees a daemon
    /// never boots with stale rules.
    policies: crate::privacy::PolicyTable,
}

/// Name of the file at a durable root that pins the shard count the
/// directory was created with.
const SHARD_MANIFEST: &str = "SHARDS";

impl ShardRouter {
    /// N in-memory shards.
    pub fn in_memory(shards: usize) -> Self {
        let shards = shards.max(1);
        ShardRouter {
            shards: (0..shards)
                .map(|_| Mutex::new(ShardBacking::Memory(Box::new(Warehouse::new()))))
                .collect(),
            supervision: (0..shards)
                .map(|_| Mutex::new(Supervision::new()))
                .collect(),
            registration: Mutex::new(()),
            alloc: Mutex::new(0),
            policies: crate::privacy::PolicyTable::new(),
            runs: RwLock::new(crate::fxhash::FxHashMap::default()),
        }
    }

    /// N durable shards under `dir/shard-<i>`. Reopening an existing
    /// directory recovers every shard, then rebuilds the global run map by
    /// replaying the allocation order (global ids are dense, and the
    /// owning shard of each global id is a pure function of the id).
    ///
    /// The shard count is pinned at creation in a `SHARDS` manifest at
    /// the root: the run→shard mapping is a function of N, so reopening
    /// with a different N would silently drop the runs on unopened
    /// shards and remap every surviving global id — that is refused with
    /// a [`DurableError::BadManifest`] instead.
    pub fn open_durable(dir: &Path, shards: usize) -> Result<Self, DurableError> {
        Self::open_durable_with(dir, shards, DurableOptions::default(), &[])
    }

    /// [`ShardRouter::open_durable`] with explicit per-shard storage
    /// backends and options. `ios[i]` backs shard `i`; shards past the
    /// slice use the real filesystem. Injecting a
    /// [`FaultFs`](crate::io::FaultFs) per shard is what lets the chaos
    /// harness arm deterministic fault schedules against a live daemon;
    /// the supervisor's repair reopens a shard on the *same* backend, so
    /// recovery is exercised under the identical fault model.
    pub fn open_durable_with(
        dir: &Path,
        shards: usize,
        options: DurableOptions,
        ios: &[Arc<dyn StorageIo>],
    ) -> Result<Self, DurableError> {
        let n = shards.max(1);
        std::fs::create_dir_all(dir)?;
        let manifest = dir.join(SHARD_MANIFEST);
        match std::fs::read_to_string(&manifest) {
            Ok(raw) => {
                let stored: usize = raw.trim().parse().map_err(|_| {
                    DurableError::BadManifest(format!(
                        "shard manifest `{}` holds `{}`, not a shard count",
                        manifest.display(),
                        raw.trim()
                    ))
                })?;
                if stored != n {
                    return Err(DurableError::BadManifest(format!(
                        "directory was created with {stored} shard(s) but reopened \
                         with {n}; the run→shard mapping is fixed at creation, so \
                         reopen with --shards {stored}"
                    )));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                // No manifest: a fresh directory, or one from before the
                // manifest existed. Refuse if a shard directory beyond N
                // is present (its runs would silently vanish; shard dirs
                // are created densely, so checking `shard-<n>` suffices),
                // then pin the count for every later open.
                if dir.join(format!("shard-{n}")).is_dir() {
                    return Err(DurableError::BadManifest(format!(
                        "directory holds shard-{n} but only {n} shard(s) were \
                         requested; reopening would drop its runs"
                    )));
                }
                std::fs::write(&manifest, format!("{n}\n"))?;
            }
            Err(e) => return Err(DurableError::Io(e)),
        }
        let mut backings = Vec::with_capacity(n);
        for i in 0..n {
            let sub = dir.join(format!("shard-{i}"));
            std::fs::create_dir_all(&sub)?;
            let io: Arc<dyn StorageIo> = match ios.get(i) {
                Some(io) => Arc::clone(io),
                None => Arc::new(RealFs),
            };
            backings.push(Mutex::new(ShardBacking::Durable(Box::new(
                DurableWarehouse::open_with(io, &sub, options)?,
            ))));
        }
        let router = ShardRouter {
            shards: backings,
            supervision: (0..n).map(|_| Mutex::new(Supervision::new())).collect(),
            registration: Mutex::new(()),
            alloc: Mutex::new(0),
            policies: crate::privacy::PolicyTable::new(),
            runs: RwLock::new(crate::fxhash::FxHashMap::default()),
        };
        // Rebuild the global run map: global ids were handed out densely,
        // each one owned by `shard_of(id)`, and each shard assigned its
        // local ids densely in the same order — so walking global ids in
        // order and counting per-shard recovers the exact mapping.
        let mut per_shard_next: Vec<u32> = vec![0; n];
        let shard_runs: Vec<usize> = router.shards.iter().map(|s| lock(s).stats().runs).collect();
        let total: usize = shard_runs.iter().sum();
        {
            let mut map = router.runs.write().unwrap_or_else(PoisonError::into_inner);
            let mut next = lock(&router.alloc);
            let mut assigned = 0usize;
            while assigned < total {
                let global = *next;
                let sh = router.shard_of_raw(global);
                if per_shard_next[sh] as usize >= shard_runs[sh] {
                    // A hole would mean the stored shards disagree with
                    // the allocation discipline; surface it as corruption
                    // rather than looping forever.
                    return Err(DurableError::BadManifest(format!(
                        "shard {sh} has {} runs but global id {global} maps to it",
                        shard_runs[sh]
                    )));
                }
                map.insert(global, (sh, RunId(per_shard_next[sh])));
                per_shard_next[sh] += 1;
                *next += 1;
                assigned += 1;
            }
        }
        Ok(router)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total runs routed so far.
    pub fn run_count(&self) -> u32 {
        *lock(&self.alloc)
    }

    fn shard_of_raw(&self, global: u32) -> usize {
        (fnv1a(&global.to_le_bytes()) % self.shards.len() as u64) as usize
    }

    /// The shard that owns (or would own) a global run id.
    pub fn shard_of(&self, run: RunId) -> usize {
        self.shard_of_raw(run.0)
    }

    fn resolve(&self, run: RunId) -> WhResult<(usize, RunId)> {
        self.runs
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&run.0)
            .copied()
            .ok_or(WarehouseError::RunNotFound(run))
    }

    fn with_run<R>(
        &self,
        run: RunId,
        f: impl FnOnce(&ShardBacking, RunId) -> WhResult<R>,
    ) -> WhResult<R> {
        let (sh, local) = self.resolve(run)?;
        let guard = lock(&self.shards[sh]);
        f(&guard, local)
    }

    /// Refuses a mutation when the shard is out of the write path
    /// (`Quarantined`/`Rebuilding`). Called *while holding* the shard's
    /// backing lock: a writer that passed this check cannot interleave
    /// with a repair's disk scan, because the repair takes the backing
    /// lock as a barrier after changing the state and before reading the
    /// disk. `Degraded` still passes — the breaker stays the authority
    /// for fail-fast rejections so error renderings match PR 5's.
    fn write_allowed(&self, sh: usize, backing: &ShardBacking) -> WhResult<()> {
        let state = lock(&self.supervision[sh]).state;
        if state.accepts_writes() {
            Ok(())
        } else {
            backing
                .warehouse()
                .metrics_registry()
                .record_unavailable_rejected();
            Err(WarehouseError::ShardUnavailable {
                shard: sh as u32,
                retry_after_ms: DEFAULT_RETRY_AFTER_MS,
            })
        }
    }

    /// Folds a mutation's outcome into the supervisor state: a durable
    /// shard whose breaker is open is marked `Degraded`, and one whose
    /// breaker closed again (checkpoint probe) returns to `Healthy`.
    /// Quarantined/rebuilding shards are left to the repair path.
    fn note_write_outcome(&self, sh: usize, backing: &ShardBacking) {
        let degraded = match backing {
            ShardBacking::Memory(_) => false,
            ShardBacking::Durable(dw) => dw.degraded(),
        };
        let mut sup = lock(&self.supervision[sh]);
        match (sup.state, degraded) {
            (ShardState::Healthy, true) => sup.state = ShardState::Degraded,
            (ShardState::Degraded, false) => sup.state = ShardState::Healthy,
            _ => {}
        }
    }

    fn with_run_mut<R>(
        &self,
        run: RunId,
        f: impl FnOnce(&mut ShardBacking, RunId) -> WhResult<R>,
    ) -> WhResult<R> {
        let (sh, local) = self.resolve(run)?;
        let mut guard = lock(&self.shards[sh]);
        self.write_allowed(sh, &guard)?;
        let out = f(&mut guard, local);
        self.note_write_outcome(sh, &guard);
        out
    }

    fn load_into_shard(
        &self,
        load: impl FnOnce(&mut ShardBacking) -> WhResult<RunId>,
    ) -> WhResult<RunId> {
        let mut next = lock(&self.alloc);
        let global = RunId(*next);
        let sh = self.shard_of(global);
        let local = {
            let mut guard = lock(&self.shards[sh]);
            self.write_allowed(sh, &guard)?;
            let out = load(&mut guard);
            self.note_write_outcome(sh, &guard);
            out?
        };
        self.runs
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(global.0, (sh, local));
        *next += 1;
        Ok(global)
    }

    /// Registers a specification on every shard; all shards assign the
    /// same id. The registration lock serializes broadcasts, so a
    /// divergent id (only possible if shard state was mutated behind the
    /// router's back) is surfaced as corruption.
    pub fn register_spec(&self, spec: &WorkflowSpec) -> WhResult<SpecId> {
        let _reg = lock(&self.registration);
        self.broadcast_allowed()?;
        let mut agreed: Option<SpecId> = None;
        for (i, shard) in self.shards.iter().enumerate() {
            let id = lock(shard).register_spec(spec.clone())?;
            match agreed {
                None => agreed = Some(id),
                Some(prev) if prev == id => {}
                Some(prev) => {
                    return Err(WarehouseError::SpecMismatch {
                        expected: format!("{prev} on every shard"),
                        got: format!("{id} on shard {i}"),
                    })
                }
            }
        }
        Ok(agreed.expect("at least one shard"))
    }

    /// Registers a view on every shard; all shards assign the same id.
    pub fn register_view(&self, spec: SpecId, view: &UserView) -> WhResult<ViewId> {
        let _reg = lock(&self.registration);
        self.broadcast_view(spec, view)
    }

    /// Finds an already-registered view of the same name under `spec`, or
    /// registers `view` on every shard — atomically under the
    /// registration lock, so two concurrent callers cannot both miss the
    /// lookup and register the view twice (or interleave with another
    /// registration and commit divergent ids).
    pub fn register_view_if_absent(&self, spec: SpecId, view: &UserView) -> WhResult<ViewId> {
        let _reg = lock(&self.registration);
        if let Some(existing) = lock(&self.shards[0])
            .warehouse()
            .find_view(spec, view.name())
        {
            return Ok(existing);
        }
        self.broadcast_view(spec, view)
    }

    /// A broadcast mutates every shard, so it is refused up front while
    /// any shard is out of the write path — a partial broadcast would
    /// commit id assignments the quarantined shard never journaled,
    /// leaving the tables divergent after its repair. Callers hold the
    /// registration lock, so no new quarantine can slip between this
    /// check and the broadcast except via a breaker trip, which the
    /// per-shard append failure surfaces anyway.
    fn broadcast_allowed(&self) -> WhResult<()> {
        for (i, shard) in self.shards.iter().enumerate() {
            let guard = lock(shard);
            self.write_allowed(i, &guard)?;
        }
        Ok(())
    }

    /// The broadcast loop shared by the `register_view*` entry points;
    /// callers must hold the registration lock.
    fn broadcast_view(&self, spec: SpecId, view: &UserView) -> WhResult<ViewId> {
        self.broadcast_allowed()?;
        let mut agreed: Option<ViewId> = None;
        for (i, shard) in self.shards.iter().enumerate() {
            let id = lock(shard).register_view(spec, view.clone())?;
            match agreed {
                None => agreed = Some(id),
                Some(prev) if prev == id => {}
                Some(prev) => {
                    return Err(WarehouseError::SpecMismatch {
                        expected: format!("{prev} on every shard"),
                        got: format!("{id} on shard {i}"),
                    })
                }
            }
        }
        Ok(agreed.expect("at least one shard"))
    }

    /// A clone of a registered specification (shard 0's copy; all agree).
    pub fn spec(&self, id: SpecId) -> WhResult<WorkflowSpec> {
        lock(&self.shards[0]).warehouse().spec(id).cloned()
    }

    /// An already-registered view id by name under `spec`, if any (shard
    /// 0's copy; all shards agree).
    pub fn find_view(&self, spec: SpecId, name: &str) -> Option<ViewId> {
        lock(&self.shards[0]).warehouse().find_view(spec, name)
    }

    /// A registered specification id by name, if any.
    pub fn spec_by_name(&self, name: &str) -> Option<SpecId> {
        lock(&self.shards[0]).warehouse().spec_by_name(name)
    }

    /// The global run ids belonging to `spec`, in load order (global ids
    /// are allocated in load order, so walking them in order and testing
    /// shard-local membership reconstructs the single-warehouse listing).
    pub fn runs_of_spec(&self, spec: SpecId) -> Vec<RunId> {
        let members: Vec<std::collections::HashSet<u32>> = self
            .shards
            .iter()
            .map(|s| {
                lock(s)
                    .warehouse()
                    .runs_of_spec(spec)
                    .iter()
                    .map(|r| r.0)
                    .collect()
            })
            .collect();
        // Take the alloc count before the run map: `load_into_shard`
        // acquires alloc → runs, so acquiring runs → alloc here would be
        // a lock-order inversion.
        let total = self.run_count();
        let map = self.runs.read().unwrap_or_else(PoisonError::into_inner);
        (0..total)
            .filter_map(|g| {
                let &(sh, local) = map.get(&g)?;
                members[sh].contains(&local.0).then_some(RunId(g))
            })
            .collect()
    }

    /// Loads a complete event log as a new (globally-id'd) run.
    pub fn load_log(&self, spec: SpecId, log: &EventLog) -> WhResult<RunId> {
        self.load_into_shard(|b| b.load_log(spec, log))
    }

    /// Opens a streaming run with a global id.
    pub fn begin_stream(&self, spec: SpecId) -> WhResult<RunId> {
        self.load_into_shard(|b| b.begin_stream(spec))
    }

    /// Pushes one event into an open stream.
    pub fn stream_push(&self, run: RunId, event: &LogEvent) -> WhResult<PushOutcome> {
        self.with_run_mut(run, |b, local| b.stream_push(local, event))
    }

    /// Seals an open stream.
    pub fn stream_seal(&self, run: RunId) -> WhResult<()> {
        self.with_run_mut(run, |b, local| b.stream_seal(local))
    }

    /// Tears down a stream whose ingest session died mid-push (e.g. a
    /// panicked request): rolls the committed prefix back out of the
    /// owning in-memory shard so readers never see a half-applied run.
    /// Durable shards keep the stream open (their journal is consistent;
    /// the client can resume or seal).
    pub fn abort_stream(&self, run: RunId) {
        if let Ok((sh, local)) = self.resolve(run) {
            let mut guard = lock(&self.shards[sh]);
            if let ShardBacking::Memory(w) = &mut *guard {
                if w.is_streaming(local) {
                    w.rollback_stream(local);
                }
            }
        }
    }

    /// Deep provenance, routed to the owning shard.
    pub fn deep_provenance(
        &self,
        run: RunId,
        view: ViewId,
        data: DataId,
    ) -> WhResult<ProvenanceResult> {
        self.with_run(run, |b, local| {
            b.warehouse().deep_provenance(local, view, data)
        })
    }

    /// Immediate provenance, routed to the owning shard.
    pub fn immediate_provenance(
        &self,
        run: RunId,
        view: ViewId,
        data: DataId,
    ) -> WhResult<ImmediateAnswer> {
        self.with_run(run, |b, local| {
            b.warehouse().immediate_provenance(local, view, data)
        })
    }

    /// Forward provenance, routed to the owning shard.
    pub fn dependents_of(&self, run: RunId, view: ViewId, data: DataId) -> WhResult<Vec<DataId>> {
        self.with_run(run, |b, local| {
            b.warehouse().dependents_of(local, view, data)
        })
    }

    /// Data between two executions, routed to the owning shard.
    pub fn data_between(
        &self,
        run: RunId,
        view: ViewId,
        from: Option<StepId>,
        to: Option<StepId>,
    ) -> WhResult<Vec<DataId>> {
        self.with_run(run, |b, local| {
            b.warehouse().data_between(local, view, from, to)
        })
    }

    /// The run's final outputs.
    pub fn final_outputs(&self, run: RunId) -> WhResult<Vec<DataId>> {
        self.with_run(run, |b, local| {
            Ok(b.warehouse().run(local)?.final_outputs())
        })
    }

    /// Every data object visible at `view` over `run`.
    pub fn visible_data(&self, run: RunId, view: ViewId) -> WhResult<Vec<DataId>> {
        self.with_run(run, |b, local| {
            Ok(b.warehouse().view_run(local, view)?.visible_data())
        })
    }

    /// Batched deep provenance: queries are grouped by owning shard, each
    /// group fans out through that shard's work-stealing batch path, and
    /// answers return in input order.
    pub fn query_batch(
        &self,
        queries: &[(RunId, ViewId, DataId)],
    ) -> Vec<WhResult<ProvenanceResult>> {
        let mut slots: Vec<Option<WhResult<ProvenanceResult>>> =
            (0..queries.len()).map(|_| None).collect();
        // Group indices per shard, translating run ids; unknown runs
        // answer immediately.
        type Routed = (usize, (RunId, ViewId, DataId));
        let mut per_shard: Vec<Vec<Routed>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (i, &(run, view, data)) in queries.iter().enumerate() {
            match self.resolve(run) {
                Ok((sh, local)) => per_shard[sh].push((i, (local, view, data))),
                Err(e) => slots[i] = Some(Err(e)),
            }
        }
        for (sh, group) in per_shard.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let triples: Vec<(RunId, ViewId, DataId)> = group.iter().map(|(_, t)| *t).collect();
            let answers = lock(&self.shards[sh])
                .warehouse()
                .deep_provenance_many(&triples);
            for ((i, _), ans) in group.into_iter().zip(answers) {
                slots[i] = Some(ans);
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every batch slot answered"))
            .collect()
    }

    /// Per-shard table counters, shard order.
    pub fn stats(&self) -> Vec<WarehouseStats> {
        self.shards.iter().map(|s| lock(s).stats()).collect()
    }

    /// Per-shard observability snapshots, shard order.
    pub fn metrics(&self) -> Vec<MetricsSnapshot> {
        self.shards
            .iter()
            .map(|s| {
                let guard = lock(s);
                let stats = guard.stats();
                guard.warehouse().metrics_with(stats)
            })
            .collect()
    }

    /// Per-shard health, shard order, with the supervisor's lifecycle
    /// state overlaid: a quarantined or rebuilding shard reports itself
    /// unwritable regardless of what its (possibly freshly-swapped)
    /// breaker says, and the quarantine/repair counters survive the
    /// repair's registry swap because the supervisor owns them.
    pub fn health(&self) -> Vec<HealthReport> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut h = lock(s).health();
                let sup = lock(&self.supervision[i]);
                if !matches!(sup.state, ShardState::Healthy) {
                    h.state = sup.state;
                }
                h.writable = h.writable && sup.state.accepts_writes();
                h.quarantines = sup.quarantines;
                h.repairs = sup.repairs;
                h.last_repair_nanos = sup.last_repair_nanos;
                h
            })
            .collect()
    }

    /// Every shard's supervisor lifecycle state, shard order.
    pub fn shard_states(&self) -> Vec<ShardState> {
        self.supervision.iter().map(|s| lock(s).state).collect()
    }

    /// One shard's supervisor lifecycle state.
    pub fn shard_state(&self, sh: usize) -> ShardState {
        lock(&self.supervision[sh]).state
    }

    /// Refreshes every shard's `Healthy`/`Degraded` state from its
    /// breaker (quarantined/rebuilding shards are left alone) and returns
    /// the states. The daemon's supervisor thread calls this each tick so
    /// breaker trips surface even when no mutation has touched the shard
    /// since.
    pub fn supervise_once(&self) -> Vec<ShardState> {
        for (i, shard) in self.shards.iter().enumerate() {
            let guard = lock(shard);
            self.note_write_outcome(i, &guard);
        }
        self.shard_states()
    }

    /// Takes a shard out of the write path: `Healthy`/`Degraded` →
    /// `Quarantined`. Mutations routed to it answer the typed
    /// [`Response::Unavailable`] refusal; reads keep serving from memory.
    /// Returns `false` when the shard is already quarantined or mid-
    /// rebuild (or out of range).
    pub fn quarantine_shard(&self, sh: usize) -> bool {
        let Some(sup) = self.supervision.get(sh) else {
            return false;
        };
        let mut sup = lock(sup);
        if !sup.state.accepts_writes() {
            return false;
        }
        sup.state = ShardState::Quarantined;
        sup.quarantines += 1;
        drop(sup);
        lock(&self.shards[sh])
            .warehouse()
            .metrics_registry()
            .record_quarantine();
        true
    }

    /// Repairs a shard online while the other shards keep serving:
    ///
    /// 1. quarantine it if it is not already (`Rebuilding` is refused —
    ///    one repair at a time), then mark it `Rebuilding`;
    /// 2. take the backing lock once as a barrier, so any mutation that
    ///    passed its state check before step 1 has finished and the disk
    ///    image is stable — no later writer can start against the old
    ///    backing;
    /// 3. fsck the shard's directory and re-open a fresh
    ///    [`DurableWarehouse`] from it on the *same* storage backend,
    ///    both without holding the backing lock (reads keep answering
    ///    from the old in-memory image throughout);
    /// 4. checkpoint the fresh store as a write probe — a repair must
    ///    not declare a still-broken disk healthy just because replaying
    ///    the journal needed no writes;
    /// 5. swap the fresh store in under the backing lock (atomic from
    ///    every other thread's point of view) and mark the shard
    ///    `Healthy`.
    ///
    /// On any failure the shard returns to `Quarantined` and the error is
    /// surfaced; the old backing keeps serving reads either way. Memory
    /// shards have no disk to rebuild from, so their "repair" just
    /// re-admits them to the write path.
    pub fn repair_shard(&self, sh: usize) -> Result<RepairOutcome, DurableError> {
        if sh >= self.shards.len() {
            return Err(DurableError::BadManifest(format!(
                "no shard {sh} (router has {})",
                self.shards.len()
            )));
        }
        let started = Instant::now();
        {
            let mut sup = lock(&self.supervision[sh]);
            if sup.state == ShardState::Rebuilding {
                return Err(DurableError::BadManifest(format!(
                    "shard {sh} is already rebuilding"
                )));
            }
            if sup.state.accepts_writes() {
                sup.quarantines += 1;
            }
            sup.state = ShardState::Rebuilding;
        }
        // Barrier: wait out any mutation that passed its state check
        // before we flipped it, and capture what we need for the rebuild.
        let source = {
            let guard = lock(&self.shards[sh]);
            match &*guard {
                ShardBacking::Memory(_) => None,
                ShardBacking::Durable(dw) => Some((dw.io(), dw.dir().to_path_buf(), dw.options())),
            }
        };
        let Some((io, dir, options)) = source else {
            // In-memory shard: nothing on disk to verify or replay.
            let nanos = started.elapsed().as_nanos() as u64;
            let mut sup = lock(&self.supervision[sh]);
            sup.state = ShardState::Healthy;
            sup.repairs += 1;
            sup.last_repair_nanos = nanos;
            return Ok(RepairOutcome {
                shard: sh,
                fsck: None,
                nanos,
            });
        };
        let rebuilt = fsck_with(&*io, &dir).and_then(|report| {
            let mut fresh = DurableWarehouse::open_with(Arc::clone(&io), &dir, options)?;
            // Write probe: recovery alone may need no writes at all, and
            // a repair must not declare a dead disk healthy.
            fresh.checkpoint()?;
            Ok((report, fresh))
        });
        match rebuilt {
            Ok((report, fresh)) => {
                {
                    let mut guard = lock(&self.shards[sh]);
                    *guard = ShardBacking::Durable(Box::new(fresh));
                }
                let nanos = started.elapsed().as_nanos() as u64;
                {
                    let mut sup = lock(&self.supervision[sh]);
                    sup.state = ShardState::Healthy;
                    sup.repairs += 1;
                    sup.last_repair_nanos = nanos;
                }
                lock(&self.shards[sh])
                    .warehouse()
                    .metrics_registry()
                    .record_repair(nanos);
                Ok(RepairOutcome {
                    shard: sh,
                    fsck: Some(report),
                    nanos,
                })
            }
            Err(e) => {
                let mut sup = lock(&self.supervision[sh]);
                sup.state = ShardState::Quarantined;
                sup.failed_repairs += 1;
                Err(e)
            }
        }
    }

    /// Slow queries across every shard (shard order, capture order within
    /// a shard).
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.shards
            .iter()
            .flat_map(|s| lock(s).warehouse().metrics_registry().slow_queries())
            .collect()
    }

    /// Slow queries captured for one tenant only — the non-admin
    /// [`Request::SlowLog`] answer. Entries recorded before tenant
    /// tagging existed (or outside any connection) carry no tenant and
    /// are visible to no non-admin caller.
    pub fn slow_queries_of_tenant(&self, tenant: &str) -> Vec<SlowQuery> {
        self.slow_queries()
            .into_iter()
            .filter(|q| q.tenant.as_deref() == Some(tenant))
            .collect()
    }

    /// The per-tenant visibility-policy table (enforced before dispatch).
    pub fn policies(&self) -> &crate::privacy::PolicyTable {
        &self.policies
    }

    /// The specification a (global) run belongs to.
    pub fn spec_of_run(&self, run: RunId) -> WhResult<SpecId> {
        self.with_run(run, |b, local| b.warehouse().run_spec(local))
    }

    /// A [`PolicyMetricsSink`](crate::privacy::PolicyMetricsSink) that
    /// records enforcement counters into shard 0's registry (policies are
    /// daemon-global, so one shard's registry is the canonical home; the
    /// aggregated metrics view sums across shards anyway). Each record
    /// takes the shard lock briefly — the policy table never calls the
    /// sink while holding a shard lock, so this cannot deadlock.
    pub fn policy_sink(&self) -> ShardPolicySink<'_> {
        ShardPolicySink { router: self }
    }

    /// Sets the slow-query capture threshold on every shard.
    pub fn set_slow_query_threshold_nanos(&self, nanos: u64) {
        for s in &self.shards {
            lock(s)
                .warehouse()
                .metrics_registry()
                .set_slow_threshold_nanos(nanos);
        }
    }

    /// Checkpoints every durable shard that is still in the write path
    /// (no-op for memory shards; quarantined/rebuilding shards are
    /// skipped — forcing writes at a sick disk during drain would only
    /// stall the shutdown, and repair re-checkpoints on swap anyway).
    pub fn checkpoint(&self) -> WhResult<()> {
        for (i, s) in self.shards.iter().enumerate() {
            let mut guard = lock(s);
            if !lock(&self.supervision[i]).state.accepts_writes() {
                continue;
            }
            if let ShardBacking::Durable(dw) = &mut *guard {
                dw.checkpoint().map_err(durability_err)?;
            }
        }
        Ok(())
    }

    /// Folds per-shard stats into one aggregate: per-run counters sum,
    /// broadcast tables (specs/views) carry over as-is, `epoch` takes the
    /// max, and degraded anywhere is degraded everywhere.
    pub fn aggregate_stats(shards: &[WarehouseStats]) -> WarehouseStats {
        let mut agg = WarehouseStats::default();
        for s in shards {
            agg.specs = s.specs; // broadcast tables: identical per shard
            agg.views = s.views;
            agg.runs += s.runs;
            agg.steps += s.steps;
            agg.data_objects += s.data_objects;
            agg.cached_view_runs += s.cached_view_runs;
            agg.cached_indexes += s.cached_indexes;
            agg.index_hits += s.index_hits;
            agg.index_misses += s.index_misses;
            agg.index_build_nanos += s.index_build_nanos;
            agg.view_run_hits += s.view_run_hits;
            agg.view_run_misses += s.view_run_misses;
            agg.view_run_evictions += s.view_run_evictions;
            agg.journal_records += s.journal_records;
            agg.journal_bytes += s.journal_bytes;
            agg.compactions += s.compactions;
            agg.epoch = agg.epoch.max(s.epoch);
            agg.degraded = agg.degraded || s.degraded;
        }
        agg
    }
}

impl crate::privacy::ViewRegistry for ShardRouter {
    fn spec_of(&self, id: SpecId) -> WhResult<WorkflowSpec> {
        self.spec(id)
    }

    fn view_of(&self, id: ViewId) -> WhResult<UserView> {
        lock(&self.shards[0]).warehouse().view(id).cloned()
    }

    fn find_view_id(&self, spec: SpecId, name: &str) -> Option<ViewId> {
        self.find_view(spec, name)
    }

    fn register_view_if_absent(&self, spec: SpecId, view: &UserView) -> WhResult<ViewId> {
        ShardRouter::register_view_if_absent(self, spec, view)
    }

    fn spec_ids(&self) -> Vec<SpecId> {
        lock(&self.shards[0]).warehouse().spec_ids()
    }

    fn view_ids_of(&self, spec: SpecId) -> Vec<ViewId> {
        lock(&self.shards[0])
            .warehouse()
            .views_of_spec(spec)
            .to_vec()
    }
}

/// Routes policy-enforcement counters into shard 0's metrics registry;
/// see [`ShardRouter::policy_sink`].
pub struct ShardPolicySink<'a> {
    router: &'a ShardRouter,
}

impl ShardPolicySink<'_> {
    fn with_registry(&self, f: impl FnOnce(&crate::metrics::MetricsRegistry)) {
        let guard = lock(&self.router.shards[0]);
        f(guard.warehouse().metrics_registry());
    }
}

impl crate::privacy::PolicyMetricsSink for ShardPolicySink<'_> {
    fn policy_substitution(&self) {
        self.with_registry(|r| r.record_policy_substitution());
    }

    fn policy_denial(&self) {
        self.with_registry(|r| r.record_policy_denial());
    }

    fn policy_cache_hit(&self) {
        self.with_registry(|r| r.record_policy_cache_hit());
    }

    fn policy_compilation(&self) {
        self.with_registry(|r| r.record_policy_compilation());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoom_model::{RunBuilder, SpecBuilder};

    fn spec(name: &str) -> WorkflowSpec {
        let mut b = SpecBuilder::new(name);
        b.analysis("A");
        b.analysis("B");
        b.from_input("A").edge("A", "B").to_output("B");
        b.build().unwrap()
    }

    fn log_of(s: &WorkflowSpec) -> EventLog {
        let (a, bb) = (s.module("A").unwrap(), s.module("B").unwrap());
        let mut rb = RunBuilder::new(s);
        let s1 = rb.step(a);
        let s2 = rb.step(bb);
        rb.input_edge(s1, [1])
            .data_edge(s1, s2, [2])
            .output_edge(s2, [3]);
        EventLog::from_run(&rb.build().unwrap(), s)
    }

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_write_refused() {
        // A pretend slice: avoid allocating 64 MiB by checking the guard
        // directly with a small cap stand-in is not possible (const), so
        // allocate once — zeroed pages are cheap.
        let big = vec![0u8; MAX_FRAME_BYTES as usize + 1];
        let mut buf = Vec::new();
        assert!(matches!(
            write_frame(&mut buf, &big),
            Err(WireError::FrameTooLarge { .. })
        ));
        assert!(buf.is_empty(), "nothing written for refused frame");
    }

    #[test]
    fn oversized_declared_length_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let mut r = &buf[..];
        assert!(matches!(
            read_frame(&mut r),
            Err(WireError::FrameTooLarge { len }) if len == u32::MAX as u64
        ));
    }

    #[test]
    fn corrupt_and_truncated_frames_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        let n = buf.len();
        let mut bad = buf.clone();
        bad[n - 1] ^= 0xff;
        assert!(matches!(read_frame(&mut &bad[..]), Err(WireError::BadCrc)));
        let torn = &buf[..n - 3];
        assert!(matches!(
            read_frame(&mut &torn[..]),
            Err(WireError::Truncated)
        ));
        let header_only = &buf[..5];
        assert!(matches!(
            read_frame(&mut &header_only[..]),
            Err(WireError::Truncated)
        ));
    }

    #[test]
    fn message_roundtrip() {
        let mut buf = Vec::new();
        write_message(
            &mut buf,
            &Request::Hello {
                tenant: "alice".to_string(),
            },
        )
        .unwrap();
        write_message(
            &mut buf,
            &Response::Error {
                message: "nope".to_string(),
            },
        )
        .unwrap();
        let mut r = &buf[..];
        match read_message::<Request>(&mut r).unwrap().unwrap() {
            Request::Hello { tenant } => assert_eq!(tenant, "alice"),
            other => panic!("{other:?}"),
        }
        match read_message::<Response>(&mut r).unwrap().unwrap() {
            Response::Error { message } => assert_eq!(message, "nope"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn router_matches_single_warehouse_ids_and_answers() {
        let router = ShardRouter::in_memory(4);
        let mut single = Warehouse::new();

        let s = spec("sharded");
        let sid_r = router.register_spec(&s).unwrap();
        let sid_s = single.register_spec(s.clone()).unwrap();
        assert_eq!(sid_r, sid_s);

        let admin = zoom_model::UserView::admin(&s);
        let vid_r = router.register_view(sid_r, &admin).unwrap();
        let vid_s = single.register_view(sid_s, admin).unwrap();
        assert_eq!(vid_r, vid_s);

        let log = log_of(&s);
        for i in 0..8 {
            let rid_r = router.load_log(sid_r, &log).unwrap();
            let rid_s = single.load_log(sid_s, &log).unwrap();
            assert_eq!(rid_r, rid_s, "load {i}");

            let pr = router.deep_provenance(rid_r, vid_r, DataId(3)).unwrap();
            let ps = single.deep_provenance(rid_s, vid_s, DataId(3)).unwrap();
            assert_eq!(pr.rows, ps.rows);
            assert_eq!(pr.execs, ps.execs);
        }
        assert_eq!(router.run_count(), 8);

        // Runs actually spread over more than one shard.
        let used: std::collections::HashSet<usize> =
            (0..8).map(|i| router.shard_of(RunId(i))).collect();
        assert!(used.len() > 1, "8 runs landed on one shard: {used:?}");

        // Unknown run: same error rendering as a single warehouse.
        let err_r = router
            .deep_provenance(RunId(99), vid_r, DataId(3))
            .unwrap_err();
        assert!(matches!(err_r, WarehouseError::RunNotFound(RunId(99))));

        // Batch across shards comes back in input order.
        let triples: Vec<(RunId, ViewId, DataId)> = (0..8)
            .map(|i| (RunId(i), vid_r, DataId(3)))
            .chain([(RunId(99), vid_r, DataId(3))])
            .collect();
        let batch = router.query_batch(&triples);
        assert_eq!(batch.len(), 9);
        for ans in &batch[..8] {
            assert!(ans.is_ok());
        }
        assert!(matches!(
            batch[8],
            Err(WarehouseError::RunNotFound(RunId(99)))
        ));
    }

    #[test]
    fn router_streams_and_failed_loads_consume_no_id() {
        let router = ShardRouter::in_memory(3);
        let s = spec("streams");
        let sid = router.register_spec(&s).unwrap();
        let vid = router
            .register_view(sid, &zoom_model::UserView::admin(&s))
            .unwrap();

        // A failed load consumes no global id.
        let bogus = router.load_log(SpecId(7), &log_of(&s)).unwrap_err();
        assert!(matches!(bogus, WarehouseError::SpecNotFound(SpecId(7))));
        assert_eq!(router.run_count(), 0);

        let rid = router.begin_stream(sid).unwrap();
        assert_eq!(rid, RunId(0));
        for ev in &log_of(&s).events {
            router.stream_push(rid, ev).unwrap();
        }
        router.stream_seal(rid).unwrap();
        let deep = router.deep_provenance(rid, vid, DataId(3)).unwrap();
        assert_eq!(deep.tuples(), 3);
        assert_eq!(router.final_outputs(rid).unwrap(), vec![DataId(3)]);
        assert_eq!(router.visible_data(rid, vid).unwrap().len(), 3);
    }

    #[test]
    fn aggregate_stats_sums_runs_but_not_broadcast_tables() {
        let router = ShardRouter::in_memory(2);
        let s = spec("agg");
        let sid = router.register_spec(&s).unwrap();
        let log = log_of(&s);
        for _ in 0..4 {
            router.load_log(sid, &log).unwrap();
        }
        let per_shard = router.stats();
        let agg = ShardRouter::aggregate_stats(&per_shard);
        assert_eq!(agg.specs, 1, "specs are broadcast, not summed");
        assert_eq!(agg.runs, 4);
        assert_eq!(agg.steps, 8);
    }

    #[test]
    fn quota_table_enforces_session_cap_and_sheds() {
        let table = TenantQuotaTable::new(TenantQuotas {
            max_sessions: 2,
            max_in_flight: 1,
            max_queue: 0,
            ..TenantQuotas::default()
        });
        assert!(table.open_session("t1"));
        assert!(table.open_session("t1"));
        assert!(!table.open_session("t1"), "third session over cap");
        assert!(table.open_session("t2"), "caps are per tenant");
        table.close_session("t1");
        assert!(table.open_session("t1"));
        assert_eq!(table.session_count("t1"), 2);

        // One permit in flight, zero queue: the second admit sheds.
        let p1 = table.admit("t1");
        assert!(p1.is_some());
        assert!(table.admit("t1").is_none(), "queue full: shed");
        drop(p1);
        assert!(table.admit("t1").is_some());
    }

    #[test]
    fn quota_table_is_bounded_against_tenant_churn() {
        let table = TenantQuotaTable::new(TenantQuotas {
            max_tenants: 4,
            ..TenantQuotas::default()
        });
        // Oversized names are refused outright.
        let huge = "t".repeat(MAX_TENANT_NAME_BYTES + 1);
        assert!(!table.open_session(&huge));
        assert!(table.admit(&huge).is_none());
        assert_eq!(table.tenant_count(), 0);

        // Churning tenants never grows the table past the cap: idle
        // entries are evicted to make room.
        for i in 0..100 {
            let name = format!("churn-{i}");
            assert!(table.open_session(&name), "churned tenant {i} refused");
            table.close_session(&name);
        }
        assert!(table.tenant_count() <= 4, "table grew without bound");

        // Busy tenants (open sessions) are never evicted; once the table
        // is full of them, new tenants are refused.
        for i in 0..4 {
            assert!(table.open_session(&format!("busy-{i}")));
        }
        assert!(!table.open_session("one-too-many"));
        assert_eq!(table.session_count("busy-0"), 1);
        // Releasing one makes room again.
        table.close_session("busy-0");
        assert!(table.open_session("newcomer"));
    }

    #[test]
    fn concurrent_registrations_agree_across_shards() {
        let router = Arc::new(ShardRouter::in_memory(4));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let router = Arc::clone(&router);
                std::thread::spawn(move || router.register_spec(&spec(&format!("conc-{t}"))))
            })
            .collect();
        let mut ids: Vec<SpecId> = threads
            .into_iter()
            .map(|h| h.join().unwrap().expect("registration succeeds"))
            .collect();
        ids.sort();
        ids.dedup();
        assert_eq!(
            ids.len(),
            8,
            "concurrent registrations assigned duplicate ids"
        );
        // Every shard resolves every name to the id the caller was told.
        for t in 0..8 {
            let name = format!("conc-{t}");
            let sid = router.spec_by_name(&name).unwrap();
            let ws = router.spec(sid).unwrap();
            assert_eq!(ws.name(), name);
        }
    }

    #[test]
    fn register_view_if_absent_is_idempotent() {
        let router = ShardRouter::in_memory(3);
        let s = spec("idem");
        let sid = router.register_spec(&s).unwrap();
        let admin = zoom_model::UserView::admin(&s);
        let first = router.register_view_if_absent(sid, &admin).unwrap();
        let second = router.register_view_if_absent(sid, &admin).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn durable_router_rejects_shard_count_changes() {
        let dir = std::env::temp_dir().join(format!("zoomd-shards-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let router = ShardRouter::open_durable(&dir, 3).unwrap();
            let sid = router.register_spec(&spec("pinned")).unwrap();
            router.load_log(sid, &log_of(&spec("pinned"))).unwrap();
        }
        let err = ShardRouter::open_durable(&dir, 1).unwrap_err();
        assert!(
            err.to_string().contains("created with 3 shard(s)"),
            "expected a shard-count mismatch error, got: {err}"
        );
        // The stored count still opens fine.
        let reopened = ShardRouter::open_durable(&dir, 3).unwrap();
        assert_eq!(reopened.run_count(), 1);
        drop(reopened);
        // A legacy directory (no manifest) with shard dirs beyond the
        // requested count is refused rather than silently dropping runs.
        std::fs::remove_file(dir.join(SHARD_MANIFEST)).unwrap();
        let err = ShardRouter::open_durable(&dir, 2).unwrap_err();
        assert!(
            err.to_string().contains("shard-2"),
            "expected the extra shard dir to be reported, got: {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_router_reopens_with_same_run_map() {
        let dir = std::env::temp_dir().join(format!("zoomd-wire-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = spec("durable");
        let log = log_of(&s);
        let (sid, vid, runs) = {
            let router = ShardRouter::open_durable(&dir, 3).unwrap();
            let sid = router.register_spec(&s).unwrap();
            let vid = router
                .register_view(sid, &zoom_model::UserView::admin(&s))
                .unwrap();
            let runs: Vec<RunId> = (0..5)
                .map(|_| router.load_log(sid, &log).unwrap())
                .collect();
            (sid, vid, runs)
        };
        let reopened = ShardRouter::open_durable(&dir, 3).unwrap();
        assert_eq!(reopened.run_count(), 5);
        for rid in runs {
            let deep = reopened.deep_provenance(rid, vid, DataId(3)).unwrap();
            assert_eq!(deep.tuples(), 3);
        }
        // Id sequences continue where they left off.
        let next = reopened.load_log(sid, &log).unwrap();
        assert_eq!(next, RunId(5));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantined_shard_refuses_writes_serves_reads_and_readmits() {
        let router = ShardRouter::in_memory(3);
        let s = spec("sup");
        let sid = router.register_spec(&s).unwrap();
        let vid = router
            .register_view(sid, &zoom_model::UserView::admin(&s))
            .unwrap();
        let log = log_of(&s);
        let loaded: Vec<RunId> = (0..6)
            .map(|_| router.load_log(sid, &log).unwrap())
            .collect();

        // Quarantine the shard the NEXT run would land on.
        let target = router.shard_of(RunId(router.run_count()));
        assert!(router.quarantine_shard(target));
        assert!(!router.quarantine_shard(target), "already quarantined");
        assert_eq!(router.shard_state(target), ShardState::Quarantined);

        // Writes to it answer the typed refusal; the dense allocator is
        // untouched, so the retry below assigns the same global id.
        let before = router.run_count();
        let err = router.load_log(sid, &log).unwrap_err();
        assert!(matches!(
            err,
            WarehouseError::ShardUnavailable { shard, retry_after_ms }
                if shard == target as u32 && retry_after_ms == DEFAULT_RETRY_AFTER_MS
        ));
        assert_eq!(router.run_count(), before, "refused load burned an id");

        // Broadcasts are refused while any shard is out of the pool.
        assert!(matches!(
            router.register_spec(&spec("other")).unwrap_err(),
            WarehouseError::ShardUnavailable { .. }
        ));

        // Reads keep serving from every shard, quarantined included.
        for rid in &loaded {
            let deep = router.deep_provenance(*rid, vid, DataId(3)).unwrap();
            assert_eq!(deep.tuples(), 3);
        }

        // Health overlays the supervisor state.
        let health = router.health();
        assert_eq!(health[target].state, ShardState::Quarantined);
        assert!(!health[target].writable);
        assert_eq!(health[target].quarantines, 1);

        // Memory shards repair trivially: no disk, nothing to fsck.
        let outcome = router.repair_shard(target).unwrap();
        assert_eq!(outcome.shard, target);
        assert!(outcome.fsck.is_none());
        assert_eq!(router.shard_state(target), ShardState::Healthy);
        assert_eq!(router.load_log(sid, &log).unwrap(), RunId(before));
        assert_eq!(router.health()[target].repairs, 1);
    }

    #[test]
    fn durable_shard_repairs_online_with_fsck_and_write_probe() {
        let dir = std::env::temp_dir().join(format!("zoomd-repair-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let faulty = Arc::new(crate::io::FaultFs::counting());
        let ios: Vec<Arc<dyn StorageIo>> = vec![
            Arc::new(RealFs),
            faulty.clone() as Arc<dyn StorageIo>,
            Arc::new(RealFs),
        ];
        let router =
            ShardRouter::open_durable_with(&dir, 3, DurableOptions::default(), &ios).unwrap();
        let s = spec("repair");
        let sid = router.register_spec(&s).unwrap();
        let vid = router
            .register_view(sid, &zoom_model::UserView::admin(&s))
            .unwrap();
        let log = log_of(&s);
        let loaded: Vec<RunId> = (0..6)
            .map(|_| router.load_log(sid, &log).unwrap())
            .collect();

        // Sicken shard 1's disk and quarantine it.
        faulty.arm_failures(u64::MAX, false);
        assert!(router.quarantine_shard(1));

        // Repair must FAIL while the disk still rejects writes: fsck and
        // journal replay are read-only, so only the write probe can tell.
        assert!(router.repair_shard(1).is_err());
        assert_eq!(router.shard_state(1), ShardState::Quarantined);

        // Heal the disk; the retried repair fscks, replays, probes, swaps.
        faulty.heal();
        let outcome = router.repair_shard(1).unwrap();
        let report = outcome.fsck.expect("durable repair carries an fsck report");
        assert_eq!(report.torn_bytes, 0);
        assert_eq!(router.shard_state(1), ShardState::Healthy);

        // The swapped-in shard answers byte-identically and takes writes.
        for rid in &loaded {
            let deep = router.deep_provenance(*rid, vid, DataId(3)).unwrap();
            assert_eq!(deep.tuples(), 3);
        }
        router.load_log(sid, &log).unwrap();
        let health = router.health();
        assert_eq!(health[1].repairs, 1);
        assert!(health[1].last_repair_nanos > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn supervise_once_tracks_breaker_state() {
        let dir = std::env::temp_dir().join(format!("zoomd-supervise-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let faulty = Arc::new(crate::io::FaultFs::counting());
        let ios: Vec<Arc<dyn StorageIo>> = vec![faulty.clone() as Arc<dyn StorageIo>];
        let mut options = DurableOptions::default();
        options.retry.max_attempts = 1;
        let router = ShardRouter::open_durable_with(&dir, 1, options, &ios).unwrap();
        let s = spec("breaker");
        let sid = router.register_spec(&s).unwrap();
        let log = log_of(&s);
        router.load_log(sid, &log).unwrap();
        assert_eq!(router.supervise_once(), vec![ShardState::Healthy]);

        // Enough sticky failures to trip the breaker flag the shard
        // Degraded — still in the write path (the breaker stays the
        // authority on admission) but visible to the supervisor.
        faulty.arm_failures(u64::MAX, false);
        for _ in 0..DurableOptions::default().breaker_threshold {
            let _ = router.load_log(sid, &log);
        }
        assert_eq!(router.supervise_once(), vec![ShardState::Degraded]);
        faulty.heal();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
