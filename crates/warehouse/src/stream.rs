//! Streaming ingestion: reconstructing a run *while it executes*.
//!
//! The paper treats a run as a finished event log, but its motivating
//! scenario — a biologist watching a workflow execute and asking "where did
//! this data item come from?" mid-run — needs provenance that is queryable
//! while steps are still appending. A [`RunIngestor`] accepts
//! [`LogEvent`]s one at a time, validates them against the specification
//! and the stream's own history (monotone timestamps, unique producers,
//! write-before-read), and commits steps into a growing *prefix run*
//! (`WorkflowRun::append_step`) the moment they — and every step producing
//! their inputs — have finished.
//!
//! The accept/apply split mirrors the durable write path: [`RunIngestor::accept`]
//! is read-only validation that either rejects the event with a typed
//! [`StreamError`] or yields a [`StreamCommit`]; the caller may then journal
//! the event, after which [`RunIngestor::apply`] is infallible. An event is
//! therefore never journaled unless it will apply, and never applied
//! half-way.
//!
//! Commit order is the key invariant: a step enters the committed prefix
//! only after all steps that produced its inputs, so every append adds a
//! node whose in-neighbors already exist — exactly the pure-extension
//! contract `LabelIndex::append_node` needs to extend the interval index
//! without a rebuild.

use crate::fxhash::{FxHashMap, FxHashSet};
use std::collections::BTreeMap;
use zoom_model::ids::{DataId, StepId, Timestamp};
use zoom_model::{LogEvent, StepAppend, UserInputMeta, WorkflowRun, WorkflowSpec};

/// Why an event (or a seal) was rejected. Rejection leaves the ingestor and
/// the prefix run exactly as they were — a bad log cannot corrupt a stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamError {
    /// `StepStarted` named a module label the specification does not have.
    UnknownModule(String),
    /// `StepStarted` reused a step id already started in this stream.
    DuplicateStep(StepId),
    /// An event referenced a step that was never started.
    UnknownStep(StepId),
    /// An event referenced a step that already finished.
    StepAlreadyFinished(StepId),
    /// The event's timestamp went backwards.
    NonMonotonicTime {
        /// The stream clock (largest timestamp seen so far).
        last: Timestamp,
        /// The offending event's timestamp.
        got: Timestamp,
    },
    /// Two different steps wrote the same data object.
    DataProducedTwice {
        /// The object.
        data: DataId,
        /// The step that wrote it first.
        first: StepId,
        /// The conflicting writer.
        second: StepId,
    },
    /// A step wrote a data object that an earlier `Read` already classified
    /// as a user input (read before any writer existed). Admitting the
    /// write would silently re-parent the object's provenance.
    WriteAfterRead {
        /// The object.
        data: DataId,
        /// The step that read it as a user input.
        step: StepId,
    },
    /// A step finished without reading anything, so it would be unreachable
    /// from the run's input node.
    NoInputs(StepId),
    /// A run edge the event stream implies has no specification edge.
    SpecMismatch(String),
    /// `Finalized` named a data object no step has written.
    UnwrittenFinal(DataId),
    /// Seal was requested while steps were still open or uncommitted.
    UnfinishedSteps(usize),
    /// Seal was requested but no data object was ever `Finalized`.
    NoFinalOutputs,
    /// The stream was already sealed (or the operation requires a live
    /// stream on this run).
    SealedStream,
    /// The operation requires all streams to be sealed first (e.g. a
    /// checkpoint cannot snapshot in-flight ingestor state).
    ActiveStreams(usize),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::UnknownModule(m) => write!(f, "unknown module `{m}` in stream"),
            StreamError::DuplicateStep(s) => write!(f, "step {s} already started"),
            StreamError::UnknownStep(s) => write!(f, "step {s} was never started"),
            StreamError::StepAlreadyFinished(s) => write!(f, "step {s} already finished"),
            StreamError::NonMonotonicTime { last, got } => {
                write!(f, "event time {:?} precedes stream clock {:?}", got, last)
            }
            StreamError::DataProducedTwice {
                data,
                first,
                second,
            } => write!(f, "{data} written by both {first} and {second}"),
            StreamError::WriteAfterRead { data, step } => {
                write!(
                    f,
                    "{data} was read as a user input by {step} before being written"
                )
            }
            StreamError::NoInputs(s) => write!(f, "step {s} finished without reading any data"),
            StreamError::SpecMismatch(m) => write!(f, "spec mismatch: {m}"),
            StreamError::UnwrittenFinal(d) => write!(f, "finalized object {d} was never written"),
            StreamError::UnfinishedSteps(n) => {
                write!(f, "cannot seal: {n} step(s) still open or uncommitted")
            }
            StreamError::NoFinalOutputs => write!(f, "cannot seal: no finalized outputs"),
            StreamError::SealedStream => write!(f, "stream already sealed"),
            StreamError::ActiveStreams(n) => write!(f, "{n} stream(s) still active"),
        }
    }
}

impl std::error::Error for StreamError {}

/// A step that has started but not yet finished.
#[derive(Clone, Debug)]
struct PendingStep {
    module: zoom_graph::NodeId,
    reads: Vec<DataId>,
    params: BTreeMap<String, String>,
}

/// A finished step waiting for its producers to commit.
#[derive(Clone, Debug)]
struct FinishedStep {
    pending: PendingStep,
    waiting: usize,
}

/// What a validated event will do when applied. Produced by
/// [`RunIngestor::accept`], consumed by [`RunIngestor::apply`].
#[derive(Clone, Debug)]
pub struct StreamCommit {
    event: LogEvent,
    commits: Vec<StepAppend>,
}

impl StreamCommit {
    /// The steps this event commits into the prefix (producers first).
    pub fn steps(&self) -> impl Iterator<Item = StepId> + '_ {
        self.commits.iter().map(|s| s.id)
    }

    /// The validated event.
    pub fn event(&self) -> &LogEvent {
        &self.event
    }
}

/// What applying one event did to the committed prefix.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PushOutcome {
    /// The event was recorded but committed no new step (e.g. a `Read` of
    /// an open step, or a `StepFinished` still waiting on a producer).
    Buffered,
    /// These steps (producers first) joined the committed prefix and are
    /// now visible to every query.
    Committed(Vec<StepId>),
}

/// The final-output groups a seal will append. Produced by
/// [`RunIngestor::seal_check`], consumed by [`RunIngestor::apply_seal`].
#[derive(Clone, Debug)]
pub struct SealCommit {
    finals: Vec<(StepId, Vec<DataId>)>,
}

/// Incremental event-log-to-run reconstruction for one stream.
///
/// All bookkeeping lives here; the prefix [`WorkflowRun`] itself is owned by
/// the warehouse row and mutated only through [`RunIngestor::apply`] /
/// [`RunIngestor::apply_seal`].
#[derive(Clone, Debug, Default)]
pub struct RunIngestor {
    /// Largest timestamp accepted so far (events may tie, never regress).
    clock: Timestamp,
    /// Producer of each written data object.
    writer: FxHashMap<DataId, StepId>,
    /// Recorded `UserInput` metadata (first event wins).
    user_meta: FxHashMap<DataId, UserInputMeta>,
    /// Data classified as user input by a `Read` that found no writer,
    /// mapped to the step that first read it.
    user_read: FxHashMap<DataId, StepId>,
    /// Started, not yet finished.
    open: FxHashMap<StepId, PendingStep>,
    /// Finished, waiting on `waiting` uncommitted producers.
    finished: FxHashMap<StepId, FinishedStep>,
    /// Producer -> finished steps waiting on it.
    dependents: FxHashMap<StepId, Vec<StepId>>,
    /// Steps already appended to the prefix run.
    committed: FxHashSet<StepId>,
    /// Module of every started step (survives commit, for spec checks).
    module_of: FxHashMap<StepId, zoom_graph::NodeId>,
    /// `Finalized` objects, in arrival order, deduplicated.
    finals: Vec<DataId>,
    /// Events accepted (for stats).
    events: u64,
    sealed: bool,
}

impl RunIngestor {
    /// A fresh ingestor for an empty prefix run.
    pub fn new() -> Self {
        RunIngestor::default()
    }

    /// Number of events accepted so far.
    pub fn event_count(&self) -> u64 {
        self.events
    }

    /// Steps started but not yet committed (open + finished-waiting).
    pub fn uncommitted_steps(&self) -> usize {
        self.open.len() + self.finished.len()
    }

    /// Steps already in the committed prefix.
    pub fn committed_steps(&self) -> usize {
        self.committed.len()
    }

    /// Whether the stream has sealed.
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// Validates `event` against the specification and the stream history.
    /// Read-only: on success the returned [`StreamCommit`] must be passed to
    /// [`RunIngestor::apply`] (possibly after journaling the event) to take
    /// effect; on failure nothing changed.
    pub fn accept(
        &self,
        spec: &WorkflowSpec,
        event: &LogEvent,
    ) -> Result<StreamCommit, StreamError> {
        if self.sealed {
            return Err(StreamError::SealedStream);
        }
        let t = event.time();
        if t < self.clock {
            return Err(StreamError::NonMonotonicTime {
                last: self.clock,
                got: t,
            });
        }
        let mut commits = Vec::new();
        match event {
            LogEvent::UserInput { .. } => {}
            LogEvent::StepStarted { step, module, .. } => {
                if self.module_of.contains_key(step) {
                    return Err(StreamError::DuplicateStep(*step));
                }
                spec.node_by_label(module)
                    .filter(|&n| spec.is_module(n))
                    .ok_or_else(|| StreamError::UnknownModule(module.clone()))?;
            }
            LogEvent::Param { step, .. } | LogEvent::Read { step, .. } => {
                self.require_open(*step)?;
            }
            LogEvent::Wrote { step, data, .. } => {
                self.require_open(*step)?;
                if let Some(&first) = self.writer.get(data) {
                    if first != *step {
                        return Err(StreamError::DataProducedTwice {
                            data: *data,
                            first,
                            second: *step,
                        });
                    }
                } else if let Some(&reader) = self.user_read.get(data) {
                    return Err(StreamError::WriteAfterRead {
                        data: *data,
                        step: reader,
                    });
                }
            }
            LogEvent::StepFinished { step, .. } => {
                let pending = self.open.get(step).ok_or_else(|| {
                    if self.module_of.contains_key(step) {
                        StreamError::StepAlreadyFinished(*step)
                    } else {
                        StreamError::UnknownStep(*step)
                    }
                })?;
                if pending.reads.is_empty() {
                    return Err(StreamError::NoInputs(*step));
                }
                commits = self.simulate_cascade(spec, *step, pending)?;
            }
            LogEvent::Finalized { data, .. } => {
                let Some(writer) = self.writer.get(data) else {
                    return Err(StreamError::UnwrittenFinal(*data));
                };
                // The writer's module must feed the spec's output, just as
                // the batch path rejects an `output_edge` from a
                // non-terminal module.
                let module = *self.module_of.get(writer).expect("writer was started");
                if !spec.graph().has_edge(module, spec.output()) {
                    return Err(StreamError::SpecMismatch(format!(
                        "finalized {data:?} is produced by a module with no edge to Output"
                    )));
                }
            }
        }
        Ok(StreamCommit {
            event: event.clone(),
            commits,
        })
    }

    /// Applies a validated event: updates the stream bookkeeping and appends
    /// any newly committed steps to `run`. Infallible by construction —
    /// every failure mode was rejected by [`RunIngestor::accept`].
    pub fn apply(
        &mut self,
        spec: &WorkflowSpec,
        run: &mut WorkflowRun,
        commit: StreamCommit,
    ) -> PushOutcome {
        let StreamCommit { event, commits } = commit;
        self.clock = event.time();
        self.events += 1;
        match event {
            LogEvent::UserInput { data, user, time } => {
                self.user_meta
                    .entry(data)
                    .or_insert(UserInputMeta { user, time });
            }
            LogEvent::StepStarted { step, module, .. } => {
                let m = spec
                    .node_by_label(&module)
                    .expect("accept resolved the module");
                self.module_of.insert(step, m);
                self.open.insert(
                    step,
                    PendingStep {
                        module: m,
                        reads: Vec::new(),
                        params: BTreeMap::new(),
                    },
                );
            }
            LogEvent::Param {
                step, key, value, ..
            } => {
                let p = self.open.get_mut(&step).expect("accept required open");
                p.params.insert(key, value);
            }
            LogEvent::Read { step, data, .. } => {
                let p = self.open.get_mut(&step).expect("accept required open");
                if !p.reads.contains(&data) {
                    p.reads.push(data);
                }
                if !self.writer.contains_key(&data) {
                    self.user_read.entry(data).or_insert(step);
                }
            }
            LogEvent::Wrote { step, data, .. } => {
                self.writer.insert(data, step);
            }
            LogEvent::StepFinished { step, .. } => {
                let pending = self.open.remove(&step).expect("accept required open");
                let waiting = self.register_finished(step, pending);
                if waiting > 0 {
                    debug_assert!(commits.is_empty());
                    return PushOutcome::Buffered;
                }
                let ids: Vec<StepId> = commits.iter().map(|s| s.id).collect();
                for sa in &commits {
                    run.append_step(spec, sa)
                        .expect("accept validated the append");
                    self.finished.remove(&sa.id);
                    self.committed.insert(sa.id);
                    for dep in self.dependents.remove(&sa.id).unwrap_or_default() {
                        let f = self
                            .finished
                            .get_mut(&dep)
                            .expect("dependents are finished steps");
                        f.waiting -= 1;
                    }
                }
                return PushOutcome::Committed(ids);
            }
            LogEvent::Finalized { data, .. } => {
                if !self.finals.contains(&data) {
                    self.finals.push(data);
                }
            }
        }
        PushOutcome::Buffered
    }

    /// Validates a seal request: every started step must have committed and
    /// at least one object must be finalized. Read-only, like `accept`.
    pub fn seal_check(&self) -> Result<SealCommit, StreamError> {
        if self.sealed {
            return Err(StreamError::SealedStream);
        }
        let unfinished = self.uncommitted_steps();
        if unfinished > 0 {
            return Err(StreamError::UnfinishedSteps(unfinished));
        }
        if self.finals.is_empty() {
            return Err(StreamError::NoFinalOutputs);
        }
        let mut by_producer: BTreeMap<StepId, Vec<DataId>> = BTreeMap::new();
        for &d in &self.finals {
            let p = *self.writer.get(&d).expect("accept required a writer");
            by_producer.entry(p).or_default().push(d);
        }
        Ok(SealCommit {
            finals: by_producer.into_iter().collect(),
        })
    }

    /// Applies a validated seal: connects the final outputs to the run's
    /// output node, turning the prefix into a complete run.
    pub fn apply_seal(&mut self, spec: &WorkflowSpec, run: &mut WorkflowRun, commit: SealCommit) {
        run.add_final_outputs(spec, &commit.finals)
            .expect("seal_check validated the finals");
        self.sealed = true;
    }

    fn require_open(&self, step: StepId) -> Result<(), StreamError> {
        if self.open.contains_key(&step) {
            Ok(())
        } else if self.module_of.contains_key(&step) {
            Err(StreamError::StepAlreadyFinished(step))
        } else {
            Err(StreamError::UnknownStep(step))
        }
    }

    /// Read-only cascade simulation for a `StepFinished { step }` event:
    /// if every producer of `step`'s reads has committed, `step` commits,
    /// which may unblock finished dependents, transitively. Returns the
    /// committing steps' appends in producers-first order (empty when the
    /// step must wait).
    fn simulate_cascade(
        &self,
        spec: &WorkflowSpec,
        step: StepId,
        pending: &PendingStep,
    ) -> Result<Vec<StepAppend>, StreamError> {
        if self.producers_waiting(pending) > 0 {
            return Ok(Vec::new());
        }
        let mut appends = vec![self.build_append(spec, step, pending)?];
        let mut newly: FxHashSet<StepId> = FxHashSet::default();
        newly.insert(step);
        let mut waiting_now: FxHashMap<StepId, usize> = FxHashMap::default();
        let mut i = 0;
        while i < appends.len() {
            let c = appends[i].id;
            i += 1;
            for dep in self.dependents.get(&c).map(Vec::as_slice).unwrap_or(&[]) {
                if newly.contains(dep) {
                    continue;
                }
                let f = &self.finished[dep];
                let w = *waiting_now.get(dep).unwrap_or(&f.waiting);
                debug_assert!(w > 0);
                if w == 1 {
                    newly.insert(*dep);
                    appends.push(self.build_append(spec, *dep, &f.pending)?);
                } else {
                    waiting_now.insert(*dep, w - 1);
                }
            }
        }
        Ok(appends)
    }

    /// How many distinct uncommitted producers `pending`'s reads depend on.
    fn producers_waiting(&self, pending: &PendingStep) -> usize {
        let mut producers: FxHashSet<StepId> = FxHashSet::default();
        for d in &pending.reads {
            if let Some(&p) = self.writer.get(d) {
                if !self.committed.contains(&p) {
                    producers.insert(p);
                }
            }
        }
        producers.len()
    }

    /// Moves a just-finished step into the waiting set, registering it with
    /// every uncommitted producer. Returns the waiting count (0 = commits
    /// now; the caller handles the cascade).
    fn register_finished(&mut self, step: StepId, pending: PendingStep) -> usize {
        let mut producers: FxHashSet<StepId> = FxHashSet::default();
        for d in &pending.reads {
            if let Some(&p) = self.writer.get(d) {
                if !self.committed.contains(&p) {
                    producers.insert(p);
                }
            }
        }
        let waiting = producers.len();
        for p in &producers {
            self.dependents.entry(*p).or_default().push(step);
        }
        self.finished
            .insert(step, FinishedStep { pending, waiting });
        waiting
    }

    /// Builds the [`StepAppend`] for a committing step, checking the
    /// specification edges the run edges will need.
    fn build_append(
        &self,
        spec: &WorkflowSpec,
        step: StepId,
        pending: &PendingStep,
    ) -> Result<StepAppend, StreamError> {
        let mut by_producer: BTreeMap<Option<StepId>, Vec<DataId>> = BTreeMap::new();
        for &d in &pending.reads {
            by_producer
                .entry(self.writer.get(&d).copied())
                .or_default()
                .push(d);
        }
        let mut inputs = Vec::with_capacity(by_producer.len());
        let mut user_meta = Vec::new();
        for (producer, ds) in by_producer {
            let spec_src = match producer {
                None => {
                    for &d in &ds {
                        let meta = self.user_meta.get(&d).cloned().unwrap_or(UserInputMeta {
                            user: "user".to_string(),
                            time: self.clock,
                        });
                        user_meta.push((d, meta));
                    }
                    spec.input()
                }
                Some(p) => *self.module_of.get(&p).expect("writers were started"),
            };
            if !spec.graph().has_edge(spec_src, pending.module) {
                return Err(StreamError::SpecMismatch(format!(
                    "run edge into {step} has no specification edge {} -> {}",
                    spec.label(spec_src),
                    spec.label(pending.module)
                )));
            }
            inputs.push((producer, ds));
        }
        Ok(StepAppend {
            id: step,
            module: pending.module,
            inputs,
            params: pending.params.clone(),
            user_meta,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoom_model::spec::SpecBuilder;
    use zoom_model::EventLog;

    /// input -> A -> B -> output
    fn spec() -> WorkflowSpec {
        let mut b = SpecBuilder::new("s");
        b.analysis("A");
        b.analysis("B");
        b.from_input("A").edge("A", "B").to_output("B");
        b.build().unwrap()
    }

    struct Harness {
        spec: WorkflowSpec,
        run: WorkflowRun,
        ing: RunIngestor,
        t: u64,
    }

    impl Harness {
        fn new() -> Self {
            let spec = spec();
            let run = WorkflowRun::empty_prefix(&spec);
            Harness {
                spec,
                run,
                ing: RunIngestor::new(),
                t: 0,
            }
        }

        fn tick(&mut self) -> Timestamp {
            self.t += 1;
            Timestamp(self.t)
        }

        fn push(&mut self, ev: LogEvent) -> Result<PushOutcome, StreamError> {
            let c = self.ing.accept(&self.spec, &ev)?;
            Ok(self.ing.apply(&self.spec, &mut self.run, c))
        }

        fn started(&mut self, s: u32, m: &str) -> Result<PushOutcome, StreamError> {
            let time = self.tick();
            self.push(LogEvent::StepStarted {
                step: StepId(s),
                module: m.into(),
                time,
            })
        }

        fn read(&mut self, s: u32, d: u64) -> Result<PushOutcome, StreamError> {
            let time = self.tick();
            self.push(LogEvent::Read {
                step: StepId(s),
                data: DataId(d),
                time,
            })
        }

        fn wrote(&mut self, s: u32, d: u64) -> Result<PushOutcome, StreamError> {
            let time = self.tick();
            self.push(LogEvent::Wrote {
                step: StepId(s),
                data: DataId(d),
                time,
            })
        }

        fn finished(&mut self, s: u32) -> Result<PushOutcome, StreamError> {
            let time = self.tick();
            self.push(LogEvent::StepFinished {
                step: StepId(s),
                time,
            })
        }

        fn finalized(&mut self, d: u64) -> Result<PushOutcome, StreamError> {
            let time = self.tick();
            self.push(LogEvent::Finalized {
                data: DataId(d),
                time,
            })
        }

        fn seal(&mut self) -> Result<(), StreamError> {
            let c = self.ing.seal_check()?;
            self.ing.apply_seal(&self.spec, &mut self.run, c);
            Ok(())
        }
    }

    #[test]
    fn happy_path_streams_to_complete_run() {
        let mut h = Harness::new();
        let time = h.tick();
        h.push(LogEvent::UserInput {
            data: DataId(1),
            user: "joe".into(),
            time,
        })
        .unwrap();
        h.started(1, "A").unwrap();
        h.read(1, 1).unwrap();
        h.wrote(1, 2).unwrap();
        assert_eq!(
            h.finished(1).unwrap(),
            PushOutcome::Committed(vec![StepId(1)])
        );
        assert!(h.run.is_prefix());
        assert_eq!(h.run.step_count(), 1);
        h.started(2, "B").unwrap();
        h.read(2, 2).unwrap();
        h.wrote(2, 3).unwrap();
        assert_eq!(
            h.finished(2).unwrap(),
            PushOutcome::Committed(vec![StepId(2)])
        );
        h.finalized(3).unwrap();
        h.seal().unwrap();
        assert!(!h.run.is_prefix());
        h.run.validate(&h.spec).unwrap();
        assert_eq!(h.run.final_outputs(), vec![DataId(3)]);
        assert_eq!(
            h.run.user_input_meta(DataId(1)).map(|m| m.user.as_str()),
            Some("joe")
        );
    }

    #[test]
    fn consumer_finishing_first_commits_with_producer() {
        // B finishes before A (its producer): B buffers, then A's finish
        // commits both, producer first.
        let mut h = Harness::new();
        h.started(1, "A").unwrap();
        h.read(1, 1).unwrap();
        h.wrote(1, 2).unwrap();
        h.started(2, "B").unwrap();
        h.read(2, 2).unwrap();
        h.wrote(2, 3).unwrap();
        assert_eq!(h.finished(2).unwrap(), PushOutcome::Buffered);
        assert_eq!(h.ing.uncommitted_steps(), 2);
        assert_eq!(
            h.finished(1).unwrap(),
            PushOutcome::Committed(vec![StepId(1), StepId(2)])
        );
        assert_eq!(h.ing.committed_steps(), 2);
        assert_eq!(h.run.inputs_of(StepId(2)).unwrap(), vec![DataId(2)]);
    }

    #[test]
    fn rejects_unknown_module() {
        let mut h = Harness::new();
        assert_eq!(
            h.started(1, "ZZZ").unwrap_err(),
            StreamError::UnknownModule("ZZZ".into())
        );
    }

    #[test]
    fn rejects_duplicate_step() {
        let mut h = Harness::new();
        h.started(1, "A").unwrap();
        assert_eq!(
            h.started(1, "A").unwrap_err(),
            StreamError::DuplicateStep(StepId(1))
        );
        // Still duplicate after it finished and committed.
        h.read(1, 1).unwrap();
        h.finished(1).unwrap();
        assert_eq!(
            h.started(1, "A").unwrap_err(),
            StreamError::DuplicateStep(StepId(1))
        );
    }

    #[test]
    fn rejects_events_for_unknown_or_finished_steps() {
        let mut h = Harness::new();
        assert_eq!(
            h.read(9, 1).unwrap_err(),
            StreamError::UnknownStep(StepId(9))
        );
        assert_eq!(
            h.finished(9).unwrap_err(),
            StreamError::UnknownStep(StepId(9))
        );
        h.started(1, "A").unwrap();
        h.read(1, 1).unwrap();
        h.finished(1).unwrap();
        assert_eq!(
            h.read(1, 2).unwrap_err(),
            StreamError::StepAlreadyFinished(StepId(1))
        );
        assert_eq!(
            h.finished(1).unwrap_err(),
            StreamError::StepAlreadyFinished(StepId(1))
        );
    }

    #[test]
    fn rejects_time_regression() {
        let mut h = Harness::new();
        h.started(1, "A").unwrap();
        let err = h
            .push(LogEvent::Read {
                step: StepId(1),
                data: DataId(1),
                time: Timestamp(0),
            })
            .unwrap_err();
        assert!(matches!(err, StreamError::NonMonotonicTime { .. }));
        // Equal timestamps are allowed.
        h.push(LogEvent::Read {
            step: StepId(1),
            data: DataId(1),
            time: Timestamp(h.t),
        })
        .unwrap();
    }

    #[test]
    fn rejects_double_write() {
        let mut h = Harness::new();
        h.started(1, "A").unwrap();
        h.started(2, "A").unwrap();
        h.wrote(1, 7).unwrap();
        assert_eq!(
            h.wrote(2, 7).unwrap_err(),
            StreamError::DataProducedTwice {
                data: DataId(7),
                first: StepId(1),
                second: StepId(2),
            }
        );
        // Re-write by the same step is idempotent.
        h.wrote(1, 7).unwrap();
    }

    #[test]
    fn rejects_write_after_user_classified_read() {
        let mut h = Harness::new();
        h.started(1, "A").unwrap();
        h.read(1, 5).unwrap(); // no writer: 5 is a user input now
        h.started(2, "A").unwrap();
        assert_eq!(
            h.wrote(2, 5).unwrap_err(),
            StreamError::WriteAfterRead {
                data: DataId(5),
                step: StepId(1),
            }
        );
    }

    #[test]
    fn rejects_step_without_reads() {
        let mut h = Harness::new();
        h.started(1, "A").unwrap();
        assert_eq!(h.finished(1).unwrap_err(), StreamError::NoInputs(StepId(1)));
    }

    #[test]
    fn rejects_spec_violating_edge() {
        // B -> A is not a specification edge (spec is input->A->B->output).
        let mut h = Harness::new();
        h.started(1, "B").unwrap();
        h.read(1, 1).unwrap();
        let err = h.finished(1).unwrap_err();
        assert!(matches!(err, StreamError::SpecMismatch(_)), "{err:?}");
        // The rejection left the step open, not corrupted.
        assert_eq!(h.ing.uncommitted_steps(), 1);
        assert_eq!(h.run.step_count(), 0);
    }

    #[test]
    fn rejects_unwritten_final_and_premature_seal() {
        let mut h = Harness::new();
        assert_eq!(
            h.finalized(9).unwrap_err(),
            StreamError::UnwrittenFinal(DataId(9))
        );
        h.started(1, "A").unwrap();
        h.read(1, 1).unwrap();
        h.wrote(1, 2).unwrap();
        assert_eq!(h.seal().unwrap_err(), StreamError::UnfinishedSteps(1));
        h.finished(1).unwrap();
        assert_eq!(h.seal().unwrap_err(), StreamError::NoFinalOutputs);
        // Data 2 comes from module A, which does not feed Output.
        let err = h.finalized(2).unwrap_err();
        assert!(matches!(err, StreamError::SpecMismatch(_)), "{err:?}");
        h.started(2, "B").unwrap();
        h.read(2, 2).unwrap();
        h.wrote(2, 3).unwrap();
        h.finished(2).unwrap();
        h.finalized(3).unwrap();
        h.seal().unwrap();
        assert_eq!(h.seal().unwrap_err(), StreamError::SealedStream);
        // No events after seal.
        assert_eq!(h.started(3, "B").unwrap_err(), StreamError::SealedStream);
    }

    #[test]
    fn streamed_run_equals_batch_reconstruction() {
        // Stream a from_run log event-by-event; the sealed run must match
        // the batch to_run reconstruction exactly.
        let spec = spec();
        let (a, b) = (spec.module("A").unwrap(), spec.module("B").unwrap());
        let mut rb = zoom_model::RunBuilder::new(&spec);
        rb.user("joe");
        let s1 = rb.step(a);
        let s2 = rb.step(b);
        rb.param(s1, "k", "v")
            .input_edge(s1, [1, 2])
            .data_edge(s1, s2, [3])
            .output_edge(s2, [4]);
        let run = rb.build().unwrap();
        let log = EventLog::from_run(&run, &spec);

        let batch = log.to_run(&spec).unwrap();
        let mut streamed = WorkflowRun::empty_prefix(&spec);
        let mut ing = RunIngestor::new();
        for ev in &log.events {
            let c = ing.accept(&spec, ev).unwrap();
            ing.apply(&spec, &mut streamed, c);
        }
        let sc = ing.seal_check().unwrap();
        ing.apply_seal(&spec, &mut streamed, sc);

        streamed.validate(&spec).unwrap();
        assert_eq!(streamed.step_count(), batch.step_count());
        assert_eq!(streamed.all_data(), batch.all_data());
        assert_eq!(streamed.user_inputs(), batch.user_inputs());
        assert_eq!(streamed.final_outputs(), batch.final_outputs());
        for (sid, m) in batch.steps() {
            assert_eq!(streamed.module_of(sid).unwrap(), m);
            assert_eq!(
                streamed.inputs_of(sid).unwrap(),
                batch.inputs_of(sid).unwrap()
            );
            assert_eq!(
                streamed.outputs_of(sid).unwrap(),
                batch.outputs_of(sid).unwrap()
            );
        }
        assert_eq!(streamed.params_of(s1)["k"], "v");
        assert_eq!(
            streamed.user_input_meta(DataId(1)).map(|m| m.user.clone()),
            batch.user_input_meta(DataId(1)).map(|m| m.user.clone())
        );
    }
}
