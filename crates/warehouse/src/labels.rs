//! Tree-cover reachability labels over a run DAG.
//!
//! The bitset [`ProvenanceIndex`](crate::ProvenanceIndex) stores two full
//! closure rows per node — `O(n²/64)` words — which caps the warehouse far
//! below the 100k–1M-step target. This module trades that for the labeling
//! scheme of the paper's follow-up line (Bao & Davidson, *Labeling Workflow
//! Views with Fine-Grained Dependencies*): every node carries a small set
//! of *post-order intervals* over a spanning forest of the run graph, such
//! that
//!
//! ```text
//! reaches(u, v)  ⇔  post(v) ∈ label(u)
//! ```
//!
//! exactly. A node's tree-descendants form one contiguous interval for
//! free; non-tree edges contribute the (already compact) labels of their
//! targets, and adjacent/overlapping intervals merge on union, so the
//! common workflow shapes — chains, fan-outs, series-parallel lattices —
//! keep one or two intervals per node and total memory `O(n · avg_labels)`.
//! Membership is a binary search; enumerating a closure walks the
//! intervals through the `node_of_post` permutation in `O(answer)`,
//! pruning every subtree whose interval proves non-membership without
//! ever touching it.
//!
//! [`LabelIndex::append_node`] extends the index *incrementally*: an
//! appended step becomes a fresh singleton root in both forests (no
//! renumbering, ever), its labels are unions of its neighbors' labels,
//! and only the nodes that actually gain reachability — its ancestors and
//! descendants — are touched: `O(affected)` instead of a full rebuild.
//! [`LabelIndex::update_to`] wraps that with a cheap staleness check,
//! falling back to a rebuild when the new graph is not a pure extension
//! or when repeated appends have fragmented the labels.

use crate::index::IndexBuildError;
use crate::resilience::{Deadline, Interrupt};
use zoom_graph::algo::topo::topological_sort;
use zoom_graph::{spanning_forest_postorder, Digraph, Direction, IntervalSet, NodeId, PostOrder};
use zoom_model::{ModelError, WorkflowRun};

/// Labels above this many intervals per node (on average, with slack)
/// trigger a rebuild in [`LabelIndex::update_to`]: fresh builds of
/// workflow-shaped DAGs sit near 1–2 intervals/node, so crossing this
/// line means incremental appends have fragmented the index enough that
/// re-deriving the spanning forest pays for itself.
pub const FRAGMENTATION_FACTOR: usize = 8;
const FRAGMENTATION_SLACK: usize = 1024;

/// How [`LabelIndex::update_to`] reconciled the index with a graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateOutcome {
    /// The graph was unchanged; nothing to do.
    Fresh,
    /// The graph was a pure extension: this many nodes were appended
    /// incrementally in `O(affected)`.
    Appended(usize),
    /// The staleness check failed (non-extension change, or fragmented
    /// labels) and the index was rebuilt from scratch.
    Rebuilt,
}

/// One direction's labels: a spanning-forest post-order plus, per node,
/// the canonical interval set covering exactly its closure.
#[derive(Clone, Debug)]
struct DirLabels {
    /// `post[v]` — post-order number of node `v`.
    post: Vec<u32>,
    /// `node_of_post[p]` — inverse permutation of `post`.
    node_of_post: Vec<u32>,
    /// `labels[v]` — exactly `{post(x) : v reaches x}` (including `v`).
    labels: Vec<IntervalSet>,
}

impl DirLabels {
    /// Builds labels for `dir` in one pass over `order` (a topological
    /// order of the graph): each node's label is its tree-cover interval
    /// unioned with the labels of its already-processed dir-successors.
    fn build<N, E>(
        g: &Digraph<N, E>,
        order: &[NodeId],
        dir: Direction,
        deadline: &mut Deadline,
    ) -> Result<Self, Interrupt> {
        let po: PostOrder = spanning_forest_postorder(g, dir);
        let n = g.node_count();
        let mut labels = vec![IntervalSet::new(); n];
        // Descendant labels need successors done first (reverse topo);
        // ancestor labels need predecessors done first (forward topo).
        let order_iter: Box<dyn Iterator<Item = &NodeId>> = match dir {
            Direction::Forward => Box::new(order.iter().rev()),
            Direction::Backward => Box::new(order.iter()),
        };
        for &v in order_iter {
            deadline.tick()?;
            let (lo, hi) = po.interval(v.index());
            let mut set = IntervalSet::of(lo, hi);
            match dir {
                Direction::Forward => {
                    for s in g.successors(v) {
                        set.union_with(&labels[s.index()]);
                    }
                }
                Direction::Backward => {
                    for p in g.predecessors(v) {
                        set.union_with(&labels[p.index()]);
                    }
                }
            }
            labels[v.index()] = set;
        }
        Ok(DirLabels {
            post: po.post,
            node_of_post: po.node_of_post,
            labels,
        })
    }

    /// Appends a node as a singleton root with the given in-closure
    /// sources (`from`, the nodes whose closures the new node inherits),
    /// returning the new node's label. Propagation to the rest of the
    /// graph is the caller's job ([`LabelIndex::append_node`]).
    fn push_singleton(&mut self, from: &[usize]) -> IntervalSet {
        let p = self.node_of_post.len() as u32;
        let v = self.labels.len() as u32;
        self.post.push(p);
        self.node_of_post.push(v);
        let mut set = IntervalSet::of(p, p);
        for &s in from {
            set.union_with(&self.labels[s]);
        }
        self.labels.push(set.clone());
        set
    }

    fn reaches(&self, u: usize, v: usize) -> bool {
        self.labels[u].contains(self.post[v])
    }

    /// Nodes covered by `set`, in post-order. Whole non-member subtrees
    /// fall between intervals and are skipped without being visited.
    fn members<'a>(&'a self, set: &'a IntervalSet) -> impl Iterator<Item = usize> + 'a {
        set.points()
            .map(move |p| self.node_of_post[p as usize] as usize)
    }

    fn closure(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.members(&self.labels[v])
    }

    fn interval_count(&self) -> u64 {
        self.labels.iter().map(|l| l.len() as u64).sum()
    }

    fn heap_bytes(&self) -> usize {
        let fixed = (self.post.capacity() + self.node_of_post.capacity())
            * std::mem::size_of::<u32>()
            + self.labels.capacity() * std::mem::size_of::<IntervalSet>();
        fixed
            + self
                .labels
                .iter()
                .map(IntervalSet::heap_bytes)
                .sum::<usize>()
    }
}

/// Interval reachability labels for one run DAG, both directions.
///
/// `anc` answers deep provenance (who does this node depend on?), `desc`
/// answers forward provenance (who depends on it?). Both include the node
/// itself, mirroring the bitset index's row convention.
#[derive(Clone, Debug)]
pub struct LabelIndex {
    anc: DirLabels,
    desc: DirLabels,
    nodes: usize,
    edges: usize,
}

impl LabelIndex {
    /// Builds both directions for `run`'s graph.
    ///
    /// Returns [`ModelError::RunHasCycle`] if the run graph is cyclic
    /// (possible only for hand-loaded or corrupted stores — validated
    /// runs never are).
    pub fn build(run: &WorkflowRun) -> Result<Self, ModelError> {
        Self::build_deadline(run, &mut Deadline::unlimited()).map_err(|e| match e {
            IndexBuildError::Cycle => ModelError::RunHasCycle,
            IndexBuildError::Interrupted(_) => unreachable!("unlimited deadline never interrupts"),
        })
    }

    /// [`LabelIndex::build`] under an execution budget: both label passes
    /// poll `deadline` per node, exactly like the bitset index's build.
    pub fn build_deadline(
        run: &WorkflowRun,
        deadline: &mut Deadline,
    ) -> Result<Self, IndexBuildError> {
        Self::build_graph(run.graph(), deadline)
    }

    /// Graph-level constructor (the run-level forms delegate here; tests
    /// and benchmarks use it on raw DAGs).
    pub fn build_graph<N, E>(
        g: &Digraph<N, E>,
        deadline: &mut Deadline,
    ) -> Result<Self, IndexBuildError> {
        let order = topological_sort(g).ok_or(IndexBuildError::Cycle)?;
        let desc = DirLabels::build(g, &order, Direction::Forward, deadline)?;
        let anc = DirLabels::build(g, &order, Direction::Backward, deadline)?;
        Ok(LabelIndex {
            anc,
            desc,
            nodes: g.node_count(),
            edges: g.edge_count(),
        })
    }

    /// Whether `u` reaches `v` along run-graph edges (reflexively):
    /// one binary search over `u`'s descendant label.
    pub fn reaches(&self, u: NodeId, v: NodeId) -> bool {
        self.desc.reaches(u.index(), v.index())
    }

    /// The backward closure of `n` — itself plus every node it
    /// transitively depends on — enumerated in `O(answer)`.
    pub fn ancestors_of(&self, n: NodeId) -> impl Iterator<Item = usize> + '_ {
        self.anc.closure(n.index())
    }

    /// The forward closure of `n` — itself plus every node derived from
    /// it — enumerated in `O(answer)`.
    pub fn descendants_of(&self, n: NodeId) -> impl Iterator<Item = usize> + '_ {
        self.desc.closure(n.index())
    }

    /// The descendant label of `n` (post-order point set of its forward
    /// closure). Union several with [`IntervalSet::union_with`], then
    /// enumerate once via [`LabelIndex::descendants_within`] — the
    /// dependents query path.
    pub fn desc_label(&self, n: NodeId) -> &IntervalSet {
        &self.desc.labels[n.index()]
    }

    /// Nodes covered by a (union of) descendant label(s).
    pub fn descendants_within<'a>(
        &'a self,
        set: &'a IntervalSet,
    ) -> impl Iterator<Item = usize> + 'a {
        self.desc.members(set)
    }

    /// Number of indexed run-graph nodes.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Number of indexed run-graph edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Total intervals across both directions — the scheme's native size
    /// measure (`O(n · avg_labels)` memory).
    pub fn interval_count(&self) -> u64 {
        self.anc.interval_count() + self.desc.interval_count()
    }

    /// Resident bytes: permutations, label vectors, and interval heap.
    pub fn memory_bytes(&self) -> usize {
        self.anc.heap_bytes() + self.desc.heap_bytes() + std::mem::size_of::<Self>()
    }

    /// Power-of-two histogram of per-node label sizes (both directions):
    /// bucket `i` counts labels with `len` in `[2^(i-1), 2^i)` — bucket 0
    /// is empty labels, the last bucket absorbs the tail.
    pub fn label_count_histogram(&self) -> [u64; 16] {
        let mut hist = [0u64; 16];
        for l in self.anc.labels.iter().chain(self.desc.labels.iter()) {
            let bucket = (usize::BITS - l.len().leading_zeros()) as usize;
            hist[bucket.min(15)] += 1;
        }
        hist
    }

    /// Appends one node with edges `preds → v` and `v → succs`, updating
    /// labels in `O(|ancestors| + |descendants|)` interval-merge work.
    ///
    /// The new node is a *singleton root* in both spanning forests with a
    /// fresh maximal post number, so no existing interval is renumbered:
    /// its ancestor label is the union of its predecessors' (plus
    /// itself), its descendant label the union of its successors' (plus
    /// itself), and exactly the nodes that gained reachability — members
    /// of those two labels — absorb the opposite label. The result is
    /// *exact*, not approximate; repeated appends can only cost extra
    /// intervals (fragmentation), never wrong answers.
    ///
    /// Panics if any endpoint index is out of range or would create an
    /// obvious cycle (`preds`/`succs` containing the new node itself).
    pub fn append_node(&mut self, preds: &[usize], succs: &[usize]) -> usize {
        let v = self.nodes;
        assert!(
            preds.iter().chain(succs.iter()).all(|&x| x < v),
            "append_node endpoints must be existing nodes"
        );
        let anc_label = self.anc.push_singleton(preds);
        let desc_label = self.desc.push_singleton(succs);

        // Every proper ancestor now also reaches everything v reaches;
        // every proper descendant is now also reached from everything
        // that reaches v. (A node cannot be both — that would close a
        // cycle through v.)
        for a in self.anc.members(&anc_label).collect::<Vec<_>>() {
            if a != v {
                self.desc.labels[a].union_with(&desc_label);
            }
        }
        for d in self.desc.members(&desc_label).collect::<Vec<_>>() {
            if d != v {
                self.anc.labels[d].union_with(&anc_label);
            }
        }
        self.nodes += 1;
        self.edges += preds.len() + succs.len();
        v
    }

    /// Reconciles the index with `g`: a no-op if unchanged, incremental
    /// [`append_node`](Self::append_node) calls if `g` is a pure
    /// extension (new nodes appended after all old ones, every new edge
    /// incident to a new node, new-new edges respecting index order), a
    /// full rebuild otherwise — or when accumulated appends have
    /// fragmented labels past [`FRAGMENTATION_FACTOR`].
    pub fn update_to<N, E>(
        &mut self,
        g: &Digraph<N, E>,
        deadline: &mut Deadline,
    ) -> Result<UpdateOutcome, IndexBuildError> {
        let (n_old, e_old) = (self.nodes, self.edges);
        let (n_new, e_new) = (g.node_count(), g.edge_count());
        if n_new == n_old && e_new == e_old {
            return Ok(UpdateOutcome::Fresh);
        }
        if self.extension_plan(g, n_old, e_old).is_some() {
            let mut appended = 0;
            for v in n_old..n_new {
                deadline.tick()?;
                let vid = NodeId::from_index(v);
                let preds: Vec<usize> = g.predecessors(vid).map(NodeId::index).collect();
                // New→new edges are applied once, as the *target's* preds
                // (extension_plan guarantees the target comes later).
                let succs: Vec<usize> = g
                    .successors(vid)
                    .map(NodeId::index)
                    .filter(|&t| t < n_old)
                    .collect();
                self.append_node(&preds, &succs);
                appended += 1;
            }
            debug_assert_eq!((self.nodes, self.edges), (n_new, e_new));
            let budget =
                FRAGMENTATION_FACTOR as u64 * 2 * n_new as u64 + FRAGMENTATION_SLACK as u64;
            if self.interval_count() <= budget {
                return Ok(UpdateOutcome::Appended(appended));
            }
        }
        *self = Self::build_graph(g, deadline)?;
        Ok(UpdateOutcome::Rebuilt)
    }

    /// `Some(())` iff `g` extends the indexed graph append-only: node and
    /// edge counts grew, every new edge touches a new node, each new
    /// node's in-neighbors precede it, and its out-neighbors are either
    /// old nodes or later new nodes. Any old→old insertion (which could
    /// invalidate intervals) fails the check.
    fn extension_plan<N, E>(&self, g: &Digraph<N, E>, n_old: usize, e_old: usize) -> Option<()> {
        let (n_new, e_new) = (g.node_count(), g.edge_count());
        if n_new < n_old || e_new < e_old || (n_new == n_old && e_new != e_old) {
            return None;
        }
        let mut incident = 0usize;
        for v in n_old..n_new {
            let vid = NodeId::from_index(v);
            for p in g.predecessors(vid) {
                if p.index() >= v {
                    return None; // new in-edge from a later node: not appendable in order
                }
                incident += 1;
            }
            for s in g.successors(vid) {
                let t = s.index();
                if t >= n_old {
                    if t <= v {
                        return None; // self-loop or back edge among new nodes
                    }
                    // Counted once, as the target's in-edge.
                } else {
                    incident += 1;
                }
            }
        }
        // Any remaining new edge must be old→old: intervals invalid.
        (e_old + incident == e_new).then_some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoom_graph::reachable_set;

    fn dag(n: usize, edges: &[(usize, usize)]) -> Digraph<(), ()> {
        let mut g = Digraph::new();
        let ids: Vec<NodeId> = (0..n).map(|_| g.add_node(())).collect();
        for &(a, b) in edges {
            g.add_edge(ids[a], ids[b], ());
        }
        g
    }

    fn assert_matches_bfs(idx: &LabelIndex, g: &Digraph<(), ()>) {
        for u in g.node_ids() {
            let fwd = reachable_set(g, u, Direction::Forward);
            let bwd = reachable_set(g, u, Direction::Backward);
            for v in g.node_ids() {
                assert_eq!(
                    idx.reaches(u, v),
                    fwd.contains(v.index()),
                    "reaches({u:?},{v:?}) diverges from BFS"
                );
            }
            let mut descs: Vec<usize> = idx.descendants_of(u).collect();
            descs.sort_unstable();
            assert_eq!(descs, fwd.iter().collect::<Vec<_>>());
            let mut ancs: Vec<usize> = idx.ancestors_of(u).collect();
            ancs.sort_unstable();
            assert_eq!(ancs, bwd.iter().collect::<Vec<_>>());
        }
    }

    #[test]
    fn diamond_with_shortcut_is_exact() {
        // 0→1→3, 0→2→3, plus shortcut 0→3 and a stray 1→4.
        let g = dag(5, &[(0, 1), (1, 3), (0, 2), (2, 3), (0, 3), (1, 4)]);
        let idx = LabelIndex::build_graph(&g, &mut Deadline::unlimited()).expect("acyclic");
        assert_matches_bfs(&idx, &g);
        assert_eq!(idx.node_count(), 5);
        assert_eq!(idx.edge_count(), 6);
        assert!(idx.interval_count() >= 10); // every node has itself
    }

    #[test]
    fn chain_labels_stay_one_interval() {
        let n = 200;
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = dag(n, &edges);
        let idx = LabelIndex::build_graph(&g, &mut Deadline::unlimited()).expect("acyclic");
        // A chain is a single tree path in both directions: exactly one
        // interval per node per direction.
        assert_eq!(idx.interval_count(), 2 * n as u64);
        assert!(idx.reaches(NodeId::from_index(0), NodeId::from_index(n - 1)));
        assert!(!idx.reaches(NodeId::from_index(n - 1), NodeId::from_index(0)));
        assert_eq!(idx.descendants_of(NodeId::from_index(0)).count(), n);
    }

    #[test]
    fn cycle_is_rejected() {
        let g = dag(2, &[(0, 1), (1, 0)]);
        assert!(matches!(
            LabelIndex::build_graph(&g, &mut Deadline::unlimited()),
            Err(IndexBuildError::Cycle)
        ));
    }

    #[test]
    fn single_node_graph() {
        let g = dag(1, &[]);
        let idx = LabelIndex::build_graph(&g, &mut Deadline::unlimited()).expect("acyclic");
        let n0 = NodeId::from_index(0);
        assert!(idx.reaches(n0, n0));
        assert_eq!(idx.ancestors_of(n0).collect::<Vec<_>>(), vec![0]);
        assert_eq!(idx.descendants_of(n0).collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn append_matches_scratch_build() {
        // Grow 0→1→2 with node 3 (preds {1}, succs {2}) — a mid-insertion
        // by reachability, an append by construction order.
        let mut g = dag(3, &[(0, 1), (1, 2)]);
        let mut idx = LabelIndex::build_graph(&g, &mut Deadline::unlimited()).expect("acyclic");
        let n3 = g.add_node(());
        g.add_edge(NodeId::from_index(1), n3, ());
        g.add_edge(n3, NodeId::from_index(2), ());
        let v = idx.append_node(&[1], &[2]);
        assert_eq!(v, 3);
        assert_matches_bfs(&idx, &g);
        assert_eq!(idx.edge_count(), g.edge_count());
    }

    #[test]
    fn update_to_classifies_changes() {
        let mut g = dag(3, &[(0, 1), (1, 2)]);
        let mut idx = LabelIndex::build_graph(&g, &mut Deadline::unlimited()).expect("acyclic");
        let mut dl = Deadline::unlimited();

        assert_eq!(
            idx.update_to(&g, &mut dl).expect("ok"),
            UpdateOutcome::Fresh
        );

        // Pure extension: two appended sink steps.
        let n3 = g.add_node(());
        g.add_edge(NodeId::from_index(2), n3, ());
        let n4 = g.add_node(());
        g.add_edge(n3, n4, ());
        g.add_edge(NodeId::from_index(0), n4, ());
        assert_eq!(
            idx.update_to(&g, &mut dl).expect("ok"),
            UpdateOutcome::Appended(2)
        );
        assert_matches_bfs(&idx, &g);

        // An old→old edge insertion invalidates intervals: rebuild.
        g.add_edge(NodeId::from_index(0), NodeId::from_index(2), ());
        assert_eq!(
            idx.update_to(&g, &mut dl).expect("ok"),
            UpdateOutcome::Rebuilt
        );
        assert_matches_bfs(&idx, &g);
    }

    #[test]
    fn append_is_cheaper_than_rebuild() {
        // Appending a sink to an n-chain is O(ancestors) constant-time
        // interval pushes (the fast append path of `union_with`), never a
        // forest rebuild. The singleton-root scheme pays in
        // fragmentation: each proper ancestor's descendant label gains
        // one extra interval (its old posts are far from the fresh max),
        // except the root whose label was already contiguous to the end.
        let n = 500;
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = dag(n, &edges);
        let mut idx = LabelIndex::build_graph(&g, &mut Deadline::unlimited()).expect("acyclic");
        assert_eq!(idx.interval_count(), 2 * n as u64);
        idx.append_node(&[n - 1], &[]);
        assert_eq!(idx.interval_count(), 2 * (n as u64 + 1) + (n as u64 - 1));
        assert!(idx.reaches(NodeId::from_index(0), NodeId::from_index(n)));
    }

    #[test]
    fn build_respects_deadline() {
        let n = 600; // > CHECK_STRIDE so the strided poll fires
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = dag(n, &edges);
        let mut dl = Deadline::at(std::time::Instant::now());
        assert!(matches!(
            LabelIndex::build_graph(&g, &mut dl),
            Err(IndexBuildError::Interrupted(Interrupt::DeadlineExceeded))
        ));
    }
}
