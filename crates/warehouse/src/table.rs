//! A minimal typed table with a primary-key index and optional secondary
//! indexes — the warehouse's storage primitive, standing in for the paper's
//! Oracle tables.
//!
//! Rows live in an append-only arena (data, like workflow provenance, is
//! never updated in place); the primary key maps to the row slot, and each
//! secondary index maps an extracted key to the matching row slots.

use crate::fxhash::FxHashMap;
use std::hash::Hash;

/// An append-only table of `Row`s with primary key `K`.
#[derive(Clone, Debug)]
pub struct Table<K, Row> {
    rows: Vec<Row>,
    pk: FxHashMap<K, usize>,
}

impl<K: Eq + Hash + Clone, Row> Default for Table<K, Row> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone, Row> Table<K, Row> {
    /// An empty table.
    pub fn new() -> Self {
        Table {
            rows: Vec::new(),
            pk: FxHashMap::default(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts a row under `key`. Returns the row slot, or `Err` with the
    /// rejected row if the key already exists.
    pub fn insert(&mut self, key: K, row: Row) -> Result<usize, Row> {
        if self.pk.contains_key(&key) {
            return Err(row);
        }
        let slot = self.rows.len();
        self.rows.push(row);
        self.pk.insert(key, slot);
        Ok(slot)
    }

    /// Looks a row up by primary key.
    pub fn get(&self, key: &K) -> Option<&Row> {
        self.pk.get(key).map(|&slot| &self.rows[slot])
    }

    /// Mutable lookup by primary key.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut Row> {
        self.pk.get(key).map(|&slot| &mut self.rows[slot])
    }

    /// Whether `key` exists.
    pub fn contains(&self, key: &K) -> bool {
        self.pk.contains_key(key)
    }

    /// Removes the row under `key` **iff** it occupies the last slot (the
    /// most recent insert) — the only removal the append-only arena can
    /// perform without invalidating other slots. Supports rolling back a
    /// mutation whose journal append failed. Returns `None` if `key` is
    /// absent or not the most recent insert.
    pub fn remove_last(&mut self, key: &K) -> Option<Row> {
        let &slot = self.pk.get(key)?;
        if slot + 1 != self.rows.len() {
            return None;
        }
        self.pk.remove(key);
        self.rows.pop()
    }

    /// The row at a slot returned by [`Table::insert`].
    pub fn row(&self, slot: usize) -> &Row {
        &self.rows[slot]
    }

    /// Full scan over the rows in insertion order.
    pub fn scan(&self) -> impl ExactSizeIterator<Item = &Row> {
        self.rows.iter()
    }

    /// Full scan over `(key-slot, row)`; primarily for index rebuilds.
    pub fn entries(&self) -> impl Iterator<Item = (&K, &Row)> {
        // pk iteration order is unspecified; sort-free because callers that
        // need order use `scan`.
        self.pk.iter().map(move |(k, &slot)| (k, &self.rows[slot]))
    }
}

/// A secondary index over a table: extracted key → row slots (in insertion
/// order).
#[derive(Clone, Debug)]
pub struct SecondaryIndex<IK> {
    map: FxHashMap<IK, Vec<usize>>,
}

impl<IK: Eq + Hash> Default for SecondaryIndex<IK> {
    fn default() -> Self {
        SecondaryIndex {
            map: FxHashMap::default(),
        }
    }
}

impl<IK: Eq + Hash> SecondaryIndex<IK> {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `slot` under `key` (call at insert time).
    pub fn add(&mut self, key: IK, slot: usize) {
        self.map.entry(key).or_default().push(slot);
    }

    /// The row slots under `key`.
    pub fn lookup(&self, key: &IK) -> &[usize] {
        self.map.get(key).map_or(&[], Vec::as_slice)
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_scan() {
        let mut t: Table<u32, String> = Table::new();
        assert!(t.is_empty());
        let s0 = t.insert(10, "a".into()).unwrap();
        let s1 = t.insert(20, "b".into()).unwrap();
        assert_eq!((s0, s1), (0, 1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&10), Some(&"a".to_string()));
        assert_eq!(t.get(&99), None);
        assert!(t.contains(&20));
        assert_eq!(t.scan().collect::<Vec<_>>(), vec!["a", "b"]);
        assert_eq!(t.row(1), "b");
    }

    #[test]
    fn duplicate_key_rejected_with_row_back() {
        let mut t: Table<u32, String> = Table::new();
        t.insert(1, "x".into()).unwrap();
        let back = t.insert(1, "y".into()).unwrap_err();
        assert_eq!(back, "y");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_last_only_pops_the_newest_row() {
        let mut t: Table<u32, String> = Table::new();
        t.insert(1, "a".into()).unwrap();
        t.insert(2, "b".into()).unwrap();
        assert_eq!(t.remove_last(&1), None); // not the last slot
        assert_eq!(t.remove_last(&9), None); // absent
        assert_eq!(t.remove_last(&2), Some("b".to_string()));
        assert_eq!(t.len(), 1);
        assert!(!t.contains(&2));
        // The slot is reusable after the pop.
        t.insert(3, "c".into()).unwrap();
        assert_eq!(t.get(&3), Some(&"c".to_string()));
    }

    #[test]
    fn get_mut_updates() {
        let mut t: Table<u32, i64> = Table::new();
        t.insert(1, 5).unwrap();
        *t.get_mut(&1).unwrap() += 1;
        assert_eq!(t.get(&1), Some(&6));
    }

    #[test]
    fn secondary_index() {
        let mut t: Table<u32, (u8, &'static str)> = Table::new();
        let mut by_tag: SecondaryIndex<u8> = SecondaryIndex::new();
        for (k, tag, v) in [(1u32, 7u8, "a"), (2, 7, "b"), (3, 9, "c")] {
            let slot = t.insert(k, (tag, v)).unwrap();
            by_tag.add(tag, slot);
        }
        let slots = by_tag.lookup(&7);
        let vals: Vec<&str> = slots.iter().map(|&s| t.row(s).1).collect();
        assert_eq!(vals, vec!["a", "b"]);
        assert!(by_tag.lookup(&0).is_empty());
        assert_eq!(by_tag.key_count(), 2);
    }

    #[test]
    fn entries_cover_all() {
        let mut t: Table<u32, u32> = Table::new();
        for i in 0..5 {
            t.insert(i, i * 10).unwrap();
        }
        let mut pairs: Vec<(u32, u32)> = t.entries().map(|(k, v)| (*k, *v)).collect();
        pairs.sort();
        assert_eq!(pairs, vec![(0, 0), (1, 10), (2, 20), (3, 30), (4, 40)]);
    }
}
