//! Per-tenant visibility policies compiled into **privacy views**
//! (DESIGN.md §16).
//!
//! *Provenance Views for Module Privacy* (Davidson et al.) reduces hiding
//! a module's behaviour to querying through a user view coarse enough to
//! conceal it: data that never crosses a composite boundary is invisible,
//! so a hidden module absorbed into a multi-module composite exposes only
//! the composite's aggregate I/O. This module turns that observation into
//! an enforcement layer:
//!
//! * [`VisibilityPolicy`] — what a tenant must not see: module labels
//!   and/or whole workflow names.
//! * [`conceal`] — the policy compiler: runs the paper's
//!   `RelevUserViewBuilder` with **inverted relevance** (relevant = the
//!   modules that are *not* hidden), then repairs any hidden module left
//!   in a singleton composite by deterministically merging it with a
//!   neighbouring composite. The result is validated by
//!   [`UserView::validate`] at registration like any other view. A policy
//!   with no concealing view (a single-module workflow whose only module
//!   is hidden) is a typed [`WarehouseError::PolicyUnsatisfiable`], not a
//!   panic.
//! * [`partition_join`] — the coarsest-common-refinement *meet* of the
//!   requested view and the privacy view in the coarseness order, used
//!   when a restricted tenant asks for a view that neither refines nor is
//!   refined by its privacy view.
//! * [`PolicyTable`] — per-tenant policies plus the compiled caches:
//!   (tenant × spec) → compiled outcome and (tenant × requested view) →
//!   effective view. A table with no policies answers
//!   [`PolicyTable::is_empty`] from one relaxed atomic load, so
//!   unrestricted deployments pay a single branch per query.
//!
//! Enforcement is **view substitution before dispatch**: the daemon (and
//! the local `*_as` facade variants) rewrite a restricted tenant's query
//! to run against the effective view, and render denials byte-identically
//! to the corresponding not-found error so present-but-hidden is
//! indistinguishable from absent.

use crate::metrics::MetricsRegistry;
use crate::schema::{SpecId, ViewId};
use crate::store::{Result as WhResult, Warehouse, WarehouseError};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use zoom_graph::NodeId;
use zoom_model::{CompositeModule, UserView, WorkflowSpec};
use zoom_views::relev_user_view_builder;

/// What a tenant must not see. Module labels apply across every workflow
/// (a label names the same step class wherever it occurs); workflow names
/// hide the whole workflow — its runs, views, and name resolution.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VisibilityPolicy {
    /// Module labels whose behaviour must be concealed.
    pub hidden_modules: Vec<String>,
    /// Workflow (specification) names that must be invisible outright.
    pub hidden_workflows: Vec<String>,
}

impl VisibilityPolicy {
    /// `true` when the policy hides nothing (equivalent to no policy).
    pub fn is_empty(&self) -> bool {
        self.hidden_modules.is_empty() && self.hidden_workflows.is_empty()
    }

    /// `true` when the whole workflow named `name` is hidden.
    pub fn hides_workflow(&self, name: &str) -> bool {
        self.hidden_workflows.iter().any(|w| w == name)
    }

    /// The hidden module ids present in `spec`, sorted.
    pub fn hidden_in(&self, spec: &WorkflowSpec) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = spec
            .module_ids()
            .filter(|&m| self.hidden_modules.iter().any(|h| h == spec.label(m)))
            .collect();
        ids.sort();
        ids
    }
}

/// Builds a [`UserView`] from a bare partition: parts sorted by smallest
/// member, composites named `P1..Pk` in that order.
fn view_from_parts(
    spec: &WorkflowSpec,
    name: impl Into<String>,
    mut parts: Vec<Vec<NodeId>>,
) -> WhResult<UserView> {
    for p in &mut parts {
        p.sort();
        p.dedup();
    }
    parts.retain(|p| !p.is_empty());
    parts.sort_by_key(|p| p[0]);
    let composites = parts
        .into_iter()
        .enumerate()
        .map(|(k, p)| CompositeModule::new(format!("P{}", k + 1), p))
        .collect();
    UserView::new(name, spec, composites).map_err(WarehouseError::Model)
}

/// The privacy view for `hidden` in `spec`: `RelevUserViewBuilder` with
/// relevance inverted (relevant = every module *not* hidden), followed by
/// a repair pass that merges any hidden module left in a singleton
/// composite into the composite of its smallest-id predecessor module
/// (falling back to its smallest successor, then to the smallest other
/// module), so every hidden module ends up concealed inside a composite
/// of at least two modules.
///
/// The two boundary cases the satellite audit called out are total here:
/// an empty `hidden` set is rejected up front (it means "no policy", not
/// "black box"), and hiding *every* module inverts to an empty relevant
/// set, which the builder already maps to the single black-box composite.
/// The only unsatisfiable shape is a workflow with one module: every
/// partition of one module is a singleton composite, which exposes the
/// module's full I/O behaviour — that is
/// [`WarehouseError::PolicyUnsatisfiable`], never a panicking `unwrap`.
pub fn conceal(spec: &WorkflowSpec, hidden: &[NodeId]) -> WhResult<UserView> {
    let mut hidden: Vec<NodeId> = hidden.to_vec();
    hidden.sort();
    hidden.dedup();
    debug_assert!(
        !hidden.is_empty(),
        "conceal() is for restricted specs; exempt specs never reach it"
    );
    if spec.module_count() <= 1 {
        return Err(WarehouseError::PolicyUnsatisfiable {
            spec: spec.name().to_string(),
            reason: "the workflow's only module is hidden, and every view of a \
                     single-module workflow is a singleton composite that exposes \
                     the module's full I/O behaviour"
                .to_string(),
        });
    }
    let hidden_set: HashSet<NodeId> = hidden.iter().copied().collect();
    let relevant: Vec<NodeId> = spec
        .module_ids()
        .filter(|m| !hidden_set.contains(m))
        .collect();
    let built = relev_user_view_builder(spec, &relevant).map_err(WarehouseError::Model)?;

    let mut parts: Vec<Vec<NodeId>> = built
        .view
        .composites()
        .iter()
        .map(|c| c.members.clone())
        .collect();
    // Repair: the inverted-relevance builder may leave a hidden module as
    // its own (non-relevant) composite when no relevant neighbour absorbs
    // it and no other hidden module shares its context. A singleton
    // composite exposes its module's exact I/O, so merge it — choosing
    // the neighbour deterministically keeps compilation reproducible
    // across shards and restarts.
    while let Some(i) = parts
        .iter()
        .position(|p| p.len() == 1 && hidden_set.contains(&p[0]))
    {
        let m = parts[i][0];
        let neighbour = spec
            .graph()
            .predecessors(m)
            .filter(|&n| spec.is_module(n))
            .min()
            .or_else(|| {
                spec.graph()
                    .successors(m)
                    .filter(|&n| spec.is_module(n))
                    .min()
            })
            .or_else(|| spec.module_ids().filter(|&n| n != m).min())
            .expect("module_count >= 2, so a merge partner exists");
        let j = parts
            .iter()
            .position(|p| p.contains(&neighbour))
            .expect("partition covers every module");
        debug_assert_ne!(i, j, "neighbour is a different module");
        let (keep, drop) = (i.min(j), i.max(j));
        let moved = parts.remove(drop);
        parts[keep].extend(moved);
    }

    let labels: Vec<&str> = hidden.iter().map(|&m| spec.label(m)).collect();
    view_from_parts(spec, format!("UPriv({})", labels.join(",")), parts)
}

/// The join of two partitions in the coarseness order: the finest
/// partition coarser than both `a` and `b` (transitive closure of "same
/// composite in either view"). Querying through the join reveals only
/// data visible in *both* views, so it is always at least as concealing
/// as the privacy view it folds in.
pub fn partition_join(
    spec: &WorkflowSpec,
    a: &UserView,
    b: &UserView,
    name: impl Into<String>,
) -> WhResult<UserView> {
    let n = spec.graph().node_count();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let union = |parent: &mut [usize], x: usize, y: usize| {
        let (rx, ry) = (find(parent, x), find(parent, y));
        if rx != ry {
            let (lo, hi) = (rx.min(ry), rx.max(ry));
            parent[hi] = lo;
        }
    };
    for view in [a, b] {
        for c in view.composites() {
            let first = c.members[0].index();
            for &m in &c.members[1..] {
                union(&mut parent, first, m.index());
            }
        }
    }
    let mut by_root: HashMap<usize, Vec<NodeId>> = HashMap::new();
    for m in spec.module_ids() {
        let root = find(&mut parent, m.index());
        by_root.entry(root).or_default().push(m);
    }
    view_from_parts(spec, name, by_root.into_values().collect())
}

/// `true` when `a` and `b` induce the same partition of the same spec's
/// modules (names are ignored — only visibility semantics matter).
pub fn partitions_equal(a: &UserView, b: &UserView) -> bool {
    a.spec_name() == b.spec_name() && a.refines(b) && b.refines(a)
}

/// Where enforcement counters land. The local facade passes its
/// warehouse's [`MetricsRegistry`] directly; the sharded router passes a
/// shim that locks shard 0 per record (policy decisions never hold a
/// shard lock while recording, so the shim cannot deadlock).
pub trait PolicyMetricsSink {
    /// A query was rewritten to a coarser view.
    fn policy_substitution(&self);
    /// A request was denied outright.
    fn policy_denial(&self);
    /// A decision was served from the compiled cache.
    fn policy_cache_hit(&self);
    /// A privacy view was compiled.
    fn policy_compilation(&self);
}

impl PolicyMetricsSink for MetricsRegistry {
    fn policy_substitution(&self) {
        self.record_policy_substitution();
    }
    fn policy_denial(&self) {
        self.record_policy_denial();
    }
    fn policy_cache_hit(&self) {
        self.record_policy_cache_hit();
    }
    fn policy_compilation(&self) {
        self.record_policy_compilation();
    }
}

/// The registration surface the policy compiler needs, implemented by
/// both the sharded [`crate::wire::ShardRouter`] (interior mutability)
/// and a local `&mut Warehouse` adapter ([`MutRegistrar`]).
pub trait ViewRegistry {
    /// A clone of a registered specification.
    fn spec_of(&self, id: SpecId) -> WhResult<WorkflowSpec>;
    /// A clone of a registered view.
    fn view_of(&self, id: ViewId) -> WhResult<UserView>;
    /// An already-registered view id by name under `spec`, if any.
    fn find_view_id(&self, spec: SpecId, name: &str) -> Option<ViewId>;
    /// Registers `view`, or returns the id of an existing view with the
    /// same name under `spec` without registering.
    fn register_view_if_absent(&self, spec: SpecId, view: &UserView) -> WhResult<ViewId>;
    /// Every registered specification id.
    fn spec_ids(&self) -> Vec<SpecId>;
    /// Every registered view id under `spec`.
    fn view_ids_of(&self, spec: SpecId) -> Vec<ViewId>;
}

/// [`ViewRegistry`] over a locally-owned warehouse. The policy compiler's
/// trait takes `&self` (the daemon path registers through the router's
/// interior mutability), so the exclusive borrow is threaded through a
/// `RefCell` — sound because the facade never re-enters the registrar.
pub struct MutRegistrar<'a>(RefCell<&'a mut Warehouse>);

impl<'a> MutRegistrar<'a> {
    /// Wraps an exclusively-borrowed warehouse.
    pub fn new(wh: &'a mut Warehouse) -> Self {
        MutRegistrar(RefCell::new(wh))
    }
}

/// Read-only [`ViewRegistry`] over a shared warehouse borrow, for the
/// query-time (`&self`) paths of the local facade. The facade eagerly
/// compiles after every registration, so query-time decisions are cache
/// lookups or refinement shortcuts that never register; if a genuinely
/// cold decision does need to register a join view, the attempt fails
/// closed with [`WarehouseError::ViewNotFound`] (callers map internal
/// enforcement errors to the plain not-found rendering).
pub struct ReadRegistrar<'a>(&'a Warehouse);

impl<'a> ReadRegistrar<'a> {
    /// Wraps a shared warehouse borrow.
    pub fn new(wh: &'a Warehouse) -> Self {
        ReadRegistrar(wh)
    }
}

impl ViewRegistry for ReadRegistrar<'_> {
    fn spec_of(&self, id: SpecId) -> WhResult<WorkflowSpec> {
        self.0.spec(id).cloned()
    }
    fn view_of(&self, id: ViewId) -> WhResult<UserView> {
        self.0.view(id).cloned()
    }
    fn find_view_id(&self, spec: SpecId, name: &str) -> Option<ViewId> {
        self.0.find_view(spec, name)
    }
    fn register_view_if_absent(&self, spec: SpecId, view: &UserView) -> WhResult<ViewId> {
        match self.0.find_view(spec, view.name()) {
            Some(existing) => Ok(existing),
            None => Err(WarehouseError::ViewNotFound(ViewId(u32::MAX))),
        }
    }
    fn spec_ids(&self) -> Vec<SpecId> {
        self.0.spec_ids()
    }
    fn view_ids_of(&self, spec: SpecId) -> Vec<ViewId> {
        self.0.views_of_spec(spec).to_vec()
    }
}

impl ViewRegistry for MutRegistrar<'_> {
    fn spec_of(&self, id: SpecId) -> WhResult<WorkflowSpec> {
        self.0.borrow().spec(id).cloned()
    }
    fn view_of(&self, id: ViewId) -> WhResult<UserView> {
        self.0.borrow().view(id).cloned()
    }
    fn find_view_id(&self, spec: SpecId, name: &str) -> Option<ViewId> {
        self.0.borrow().find_view(spec, name)
    }
    fn register_view_if_absent(&self, spec: SpecId, view: &UserView) -> WhResult<ViewId> {
        let mut wh = self.0.borrow_mut();
        if let Some(existing) = wh.find_view(spec, view.name()) {
            return Ok(existing);
        }
        wh.register_view(spec, view.clone())
    }
    fn spec_ids(&self) -> Vec<SpecId> {
        self.0.borrow().spec_ids()
    }
    fn view_ids_of(&self, spec: SpecId) -> Vec<ViewId> {
        self.0.borrow().views_of_spec(spec).to_vec()
    }
}

/// The compiled outcome of one (tenant × spec) pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Compiled {
    /// The spec contains nothing this tenant's policy hides.
    Exempt,
    /// The workflow is hidden outright — or its policy is unsatisfiable,
    /// which must render identically to absence (surfacing "your policy
    /// cannot conceal this workflow" at query time would itself confirm
    /// the workflow exists).
    Denied,
    /// Queries run through the privacy view (or its meet with the
    /// requested view).
    Restricted {
        /// The registered privacy view.
        privacy: ViewId,
    },
}

/// What the enforcement point should do with one query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Execute unchanged.
    Pass,
    /// Refuse, rendered byte-identically to the not-found error the same
    /// request would produce if the target did not exist.
    Deny,
    /// Execute against this view instead of the requested one.
    Substitute(ViewId),
}

/// Per-tenant policies plus the compiled caches. All methods take
/// `&self`; interior locks are per-map `RwLock`s and the no-policy fast
/// path reads one atomic.
#[derive(Debug, Default)]
pub struct PolicyTable {
    policies: RwLock<HashMap<String, Arc<VisibilityPolicy>>>,
    /// Number of tenants with an installed policy — the query fast path.
    count: AtomicUsize,
    compiled: RwLock<HashMap<(String, SpecId), Compiled>>,
    /// (tenant × requested view) → effective view, for Restricted specs.
    effective: RwLock<HashMap<(String, ViewId), ViewId>>,
}

impl PolicyTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when no tenant has a policy — one relaxed atomic load, the
    /// entire per-query cost for unrestricted deployments.
    pub fn is_empty(&self) -> bool {
        self.count.load(Ordering::Relaxed) == 0
    }

    /// The installed policy for `tenant`, if any.
    pub fn get(&self, tenant: &str) -> Option<Arc<VisibilityPolicy>> {
        self.policies.read().get(tenant).cloned()
    }

    /// Tenants with an installed policy, sorted.
    pub fn tenants(&self) -> Vec<String> {
        let mut t: Vec<String> = self.policies.read().keys().cloned().collect();
        t.sort();
        t
    }

    /// Installs (or with `None`/an empty policy, clears) `tenant`'s
    /// policy, after strictly compiling it against every registered spec
    /// so an unsatisfiable policy fails *here*, at administration time,
    /// instead of silently denying at query time. Compiled caches for the
    /// tenant are purged either way.
    pub fn install<R: ViewRegistry>(
        &self,
        tenant: &str,
        policy: Option<VisibilityPolicy>,
        reg: &R,
        metrics: &dyn PolicyMetricsSink,
    ) -> WhResult<()> {
        let policy = policy.filter(|p| !p.is_empty());
        if let Some(p) = &policy {
            for spec_id in reg.spec_ids() {
                let spec = reg.spec_of(spec_id)?;
                if p.hides_workflow(spec.name()) {
                    continue;
                }
                let hidden = p.hidden_in(&spec);
                if !hidden.is_empty() {
                    // Surfaces PolicyUnsatisfiable without registering:
                    // registration happens lazily on the first decision.
                    conceal(&spec, &hidden)?;
                }
            }
        }
        self.purge_tenant(tenant);
        let mut policies = self.policies.write();
        match policy {
            Some(p) => {
                policies.insert(tenant.to_string(), Arc::new(p));
            }
            None => {
                policies.remove(tenant);
            }
        }
        self.count.store(policies.len(), Ordering::Relaxed);
        drop(policies);
        let _ = metrics; // counted per decision, not per install
        Ok(())
    }

    /// Drops `tenant`'s compiled cache entries.
    fn purge_tenant(&self, tenant: &str) {
        self.compiled.write().retain(|(t, _), _| t != tenant);
        self.effective.write().retain(|(t, _), _| t != tenant);
    }

    /// The compiled outcome for (tenant × spec), compiling and
    /// registering the privacy view on first use. Unsatisfiable policies
    /// compile to [`Compiled::Denied`] — at query time the tenant must
    /// see plain absence.
    fn compiled_for<R: ViewRegistry>(
        &self,
        tenant: &str,
        policy: &VisibilityPolicy,
        spec_id: SpecId,
        reg: &R,
        metrics: &dyn PolicyMetricsSink,
    ) -> WhResult<Compiled> {
        if let Some(c) = self
            .compiled
            .read()
            .get(&(tenant.to_string(), spec_id))
            .copied()
        {
            metrics.policy_cache_hit();
            return Ok(c);
        }
        let spec = reg.spec_of(spec_id)?;
        let outcome = if policy.hides_workflow(spec.name()) {
            Compiled::Denied
        } else {
            let hidden = policy.hidden_in(&spec);
            if hidden.is_empty() {
                Compiled::Exempt
            } else {
                match conceal(&spec, &hidden) {
                    Ok(view) => {
                        metrics.policy_compilation();
                        let id = register_named(reg, spec_id, view)?;
                        Compiled::Restricted { privacy: id }
                    }
                    Err(WarehouseError::PolicyUnsatisfiable { .. }) => Compiled::Denied,
                    Err(e) => return Err(e),
                }
            }
        };
        self.compiled
            .write()
            .insert((tenant.to_string(), spec_id), outcome);
        Ok(outcome)
    }

    /// Whether `tenant` may address `spec_id` at all. `true` means
    /// denied: the caller renders the same not-found error bytes a
    /// genuinely absent target would produce.
    pub fn spec_denied<R: ViewRegistry>(
        &self,
        tenant: &str,
        spec_id: SpecId,
        reg: &R,
        metrics: &dyn PolicyMetricsSink,
    ) -> WhResult<bool> {
        if self.is_empty() {
            return Ok(false);
        }
        let Some(policy) = self.get(tenant) else {
            return Ok(false);
        };
        let denied = matches!(
            self.compiled_for(tenant, &policy, spec_id, reg, metrics)?,
            Compiled::Denied
        );
        if denied {
            metrics.policy_denial();
        }
        Ok(denied)
    }

    /// `true` when `tenant`'s policy conceals modules inside `spec_id`
    /// (compiled state `Restricted`). The enforcement point must then
    /// render hidden-data answers ([`WarehouseError::DataNotVisible`])
    /// as plain absence — a present-but-concealed datum would otherwise
    /// be distinguishable from one that never existed, an existence
    /// oracle on data internal to the concealed composites.
    pub fn spec_restricted<R: ViewRegistry>(
        &self,
        tenant: &str,
        spec_id: SpecId,
        reg: &R,
        metrics: &dyn PolicyMetricsSink,
    ) -> WhResult<bool> {
        if self.is_empty() {
            return Ok(false);
        }
        let Some(policy) = self.get(tenant) else {
            return Ok(false);
        };
        Ok(matches!(
            self.compiled_for(tenant, &policy, spec_id, reg, metrics)?,
            Compiled::Restricted { .. }
        ))
    }

    /// The enforcement decision for one view-addressed query by `tenant`
    /// against `spec_id` through `requested`.
    ///
    /// A `requested` id that does not resolve, or that belongs to another
    /// spec, passes through unchanged so the natural error path renders —
    /// enforcement must not invent new error shapes an attacker could
    /// fingerprint.
    pub fn view_decision<R: ViewRegistry>(
        &self,
        tenant: &str,
        spec_id: SpecId,
        requested: ViewId,
        reg: &R,
        metrics: &dyn PolicyMetricsSink,
    ) -> WhResult<Decision> {
        if self.is_empty() {
            return Ok(Decision::Pass);
        }
        let Some(policy) = self.get(tenant) else {
            return Ok(Decision::Pass);
        };
        match self.compiled_for(tenant, &policy, spec_id, reg, metrics)? {
            Compiled::Exempt => Ok(Decision::Pass),
            Compiled::Denied => {
                metrics.policy_denial();
                Ok(Decision::Deny)
            }
            Compiled::Restricted { privacy } => {
                if let Some(&eff) = self.effective.read().get(&(tenant.to_string(), requested)) {
                    metrics.policy_cache_hit();
                    return Ok(if eff == requested {
                        Decision::Pass
                    } else {
                        metrics.policy_substitution();
                        Decision::Substitute(eff)
                    });
                }
                let spec = reg.spec_of(spec_id)?;
                let Ok(req_view) = reg.view_of(requested) else {
                    return Ok(Decision::Pass);
                };
                if req_view.spec_name() != spec.name() {
                    return Ok(Decision::Pass);
                }
                let priv_view = reg.view_of(privacy)?;
                let eff = if priv_view.refines(&req_view) {
                    // The request is already at least as coarse as the
                    // privacy view (e.g. UBlackBox): nothing to enforce.
                    requested
                } else if req_view.refines(&priv_view) {
                    // The request is strictly finer (e.g. UAdmin): the
                    // privacy view *is* the meet.
                    privacy
                } else {
                    let name = format!("{}⊓{}", req_view.name(), priv_view.name());
                    let joined = partition_join(&spec, &req_view, &priv_view, name)?;
                    register_named(reg, spec_id, joined)?
                };
                self.effective
                    .write()
                    .insert((tenant.to_string(), requested), eff);
                if eff == requested {
                    Ok(Decision::Pass)
                } else {
                    metrics.policy_substitution();
                    Ok(Decision::Substitute(eff))
                }
            }
        }
    }

    /// Eagerly compiles every installed policy against every registered
    /// spec and view — the local facade calls this after each
    /// registration so query-time decisions are pure cache lookups.
    /// Unsatisfiable combinations compile to denial (matching the lazy
    /// path); errors from the registry itself propagate.
    pub fn compile_all<R: ViewRegistry>(
        &self,
        reg: &R,
        metrics: &dyn PolicyMetricsSink,
    ) -> WhResult<()> {
        if self.is_empty() {
            return Ok(());
        }
        for tenant in self.tenants() {
            let Some(policy) = self.get(&tenant) else {
                continue;
            };
            for spec_id in reg.spec_ids() {
                let compiled = self.compiled_for(&tenant, &policy, spec_id, reg, metrics)?;
                if matches!(compiled, Compiled::Restricted { .. }) {
                    for view_id in reg.view_ids_of(spec_id) {
                        self.view_decision(&tenant, spec_id, view_id, reg, metrics)?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Registers `view` under a collision-safe name: if a different partition
/// already owns the name (a tenant maliciously pre-registering `UPriv(…)`
/// must not capture the privacy view), deterministic `#2`, `#3`, …
/// suffixes are tried until a free name — or an equal partition, which is
/// reused — is found.
fn register_named<R: ViewRegistry>(reg: &R, spec_id: SpecId, view: UserView) -> WhResult<ViewId> {
    let base = view.name().to_string();
    let spec = reg.spec_of(spec_id)?;
    let mut name = base.clone();
    let mut k = 2;
    loop {
        match reg.find_view_id(spec_id, &name) {
            Some(existing) => {
                let existing_view = reg.view_of(existing)?;
                if partitions_equal(&existing_view, &view) {
                    return Ok(existing);
                }
            }
            None => {
                let renamed = UserView::new(name.clone(), &spec, view.composites().to_vec())
                    .map_err(WarehouseError::Model)?;
                let id = reg.register_view_if_absent(spec_id, &renamed)?;
                // A racing registration of the same name with a different
                // partition loses here and retries under the next suffix.
                let won = reg.view_of(id)?;
                if partitions_equal(&won, &renamed) {
                    return Ok(id);
                }
            }
        }
        name = format!("{base}#{k}");
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoom_model::SpecBuilder;

    fn chain(labels: &[&str]) -> WorkflowSpec {
        let mut b = SpecBuilder::new("chain");
        for l in labels {
            b.analysis(*l);
        }
        b.from_input(labels[0]);
        for w in labels.windows(2) {
            b.edge(w[0], w[1]);
        }
        b.to_output(labels[labels.len() - 1]);
        b.build().expect("valid chain spec")
    }

    #[test]
    fn conceal_absorbs_hidden_module_into_neighbour() {
        let s = chain(&["A", "H", "B"]);
        let h = s.module("H").expect("module");
        let v = conceal(&s, &[h]).expect("satisfiable");
        v.validate(&s).expect("valid partition");
        let c = v.composite_of(h);
        assert!(
            v.members(c).len() >= 2,
            "hidden module must not be a singleton composite: {v:?}"
        );
    }

    #[test]
    fn conceal_all_modules_is_black_box() {
        let s = chain(&["A", "B", "C"]);
        let all: Vec<NodeId> = s.module_ids().collect();
        let v = conceal(&s, &all).expect("black box conceals everything");
        assert_eq!(v.size(), 1);
    }

    #[test]
    fn conceal_single_module_spec_is_unsatisfiable() {
        let s = chain(&["Only"]);
        let m = s.module("Only").expect("module");
        match conceal(&s, &[m]) {
            Err(WarehouseError::PolicyUnsatisfiable { spec, .. }) => assert_eq!(spec, "chain"),
            other => panic!("expected PolicyUnsatisfiable, got {other:?}"),
        }
    }

    #[test]
    fn join_is_coarser_than_both() {
        let s = chain(&["A", "B", "C", "D"]);
        let m = |l: &str| s.module(l).expect("module");
        let v1 = view_from_parts(
            &s,
            "V1",
            vec![vec![m("A"), m("B")], vec![m("C")], vec![m("D")]],
        )
        .expect("valid");
        let v2 = view_from_parts(
            &s,
            "V2",
            vec![vec![m("A")], vec![m("B"), m("C")], vec![m("D")]],
        )
        .expect("valid");
        let j = partition_join(&s, &v1, &v2, "J").expect("joins");
        assert!(v1.refines(&j));
        assert!(v2.refines(&j));
        assert_eq!(j.size(), 2); // {A,B,C} ∪ {D}
    }

    #[test]
    fn decision_table_fast_path_and_substitution() {
        let mut wh = Warehouse::new();
        let s = chain(&["A", "H", "B"]);
        let h = s.module("H").expect("module");
        let sid = wh.register_spec(s.clone()).expect("registers");
        let admin = wh
            .register_view(sid, UserView::admin(&s))
            .expect("registers");
        let metrics = MetricsRegistry::new();
        let table = PolicyTable::new();
        assert!(table.is_empty());

        {
            let reg = MutRegistrar::new(&mut wh);
            table
                .install(
                    "restricted",
                    Some(VisibilityPolicy {
                        hidden_modules: vec!["H".into()],
                        hidden_workflows: vec![],
                    }),
                    &reg,
                    &metrics,
                )
                .expect("satisfiable");
            assert!(!table.is_empty());
            // Unrestricted tenant: pass.
            assert_eq!(
                table
                    .view_decision("other", sid, admin, &reg, &metrics)
                    .expect("decides"),
                Decision::Pass
            );
            // Restricted tenant through UAdmin: substituted to the
            // privacy view (UAdmin refines everything).
            let d = table
                .view_decision("restricted", sid, admin, &reg, &metrics)
                .expect("decides");
            let Decision::Substitute(pv) = d else {
                panic!("expected substitution, got {d:?}");
            };
            let priv_view = reg.view_of(pv).expect("registered");
            assert!(priv_view.members(priv_view.composite_of(h)).len() >= 2);
            // Cached second decision.
            assert_eq!(
                table
                    .view_decision("restricted", sid, admin, &reg, &metrics)
                    .expect("decides"),
                Decision::Substitute(pv)
            );
        }
        let snap = metrics.snapshot_into(
            Default::default(),
            Default::default(),
            Default::default(),
            Default::default(),
        );
        assert!(snap.privacy.substitutions >= 2);
        assert!(snap.privacy.cache_hits >= 1);
        assert_eq!(snap.privacy.compilations, 1);
    }

    #[test]
    fn hidden_workflow_denies_and_unsatisfiable_denies_lazily() {
        let mut wh = Warehouse::new();
        let s = chain(&["A", "B"]);
        let sid = wh.register_spec(s).expect("registers");
        let metrics = MetricsRegistry::new();
        let table = PolicyTable::new();
        let reg = MutRegistrar::new(&mut wh);
        table
            .install(
                "t",
                Some(VisibilityPolicy {
                    hidden_modules: vec![],
                    hidden_workflows: vec!["chain".into()],
                }),
                &reg,
                &metrics,
            )
            .expect("installs");
        assert!(table
            .spec_denied("t", sid, &reg, &metrics)
            .expect("decides"));
        assert!(!table
            .spec_denied("other", sid, &reg, &metrics)
            .expect("decides"));
    }

    #[test]
    fn install_rejects_unsatisfiable_policy_up_front() {
        let mut wh = Warehouse::new();
        let s = chain(&["Only"]);
        wh.register_spec(s).expect("registers");
        let metrics = MetricsRegistry::new();
        let table = PolicyTable::new();
        let reg = MutRegistrar::new(&mut wh);
        let err = table
            .install(
                "t",
                Some(VisibilityPolicy {
                    hidden_modules: vec!["Only".into()],
                    hidden_workflows: vec![],
                }),
                &reg,
                &metrics,
            )
            .expect_err("unsatisfiable");
        assert!(matches!(err, WarehouseError::PolicyUnsatisfiable { .. }));
        assert!(table.is_empty(), "failed install must not leave a policy");
    }

    #[test]
    fn name_squatting_cannot_capture_the_privacy_view() {
        let mut wh = Warehouse::new();
        let s = chain(&["A", "H", "B"]);
        let sid = wh.register_spec(s.clone()).expect("registers");
        // An attacker pre-registers a fully-revealing view under the
        // name the compiler would pick.
        let squat = UserView::new(
            "UPriv(H)",
            &s,
            s.module_ids()
                .map(|m| CompositeModule::new(s.label(m).to_string(), vec![m]))
                .collect(),
        )
        .expect("valid squat");
        wh.register_view(sid, squat).expect("registers");
        let admin = wh
            .register_view(sid, UserView::admin(&s))
            .expect("registers");
        let metrics = MetricsRegistry::new();
        let table = PolicyTable::new();
        let reg = MutRegistrar::new(&mut wh);
        table
            .install(
                "t",
                Some(VisibilityPolicy {
                    hidden_modules: vec!["H".into()],
                    hidden_workflows: vec![],
                }),
                &reg,
                &metrics,
            )
            .expect("installs");
        let d = table
            .view_decision("t", sid, admin, &reg, &metrics)
            .expect("decides");
        let Decision::Substitute(pv) = d else {
            panic!("expected substitution, got {d:?}");
        };
        let v = reg.view_of(pv).expect("registered");
        assert_eq!(v.name(), "UPriv(H)#2", "squatted name must be skipped");
        let h = s.module("H").expect("module");
        assert!(
            v.members(v.composite_of(h)).len() >= 2,
            "the squatted singleton view must not be reused"
        );
    }
}
