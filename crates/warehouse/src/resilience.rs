//! Resilience primitives for the warehouse: deadlines with cooperative
//! cancellation, admission control for the query facade, retry with
//! exponential backoff for transient storage faults, and the write
//! circuit breaker behind the durable store's degraded read-only mode.
//!
//! The paper's deployment story (Section V-B) is an *interactive* console
//! — a scientist switching views in ≈13 ms — and the ROADMAP's north star
//! is serving that workload multi-user. That makes tail latency, overload
//! and flaky disks first-class failure modes, not exceptional ones. This
//! module holds the mechanisms; `query`, `index`, `store` and `durable`
//! thread them through the stack.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How many traversal nodes a query visits between two deadline checks.
/// Checking `Instant::now()` per node would dominate small queries;
/// every 64 nodes bounds the overshoot to a few microseconds of work
/// while keeping the common (undeadlined) path to one atomic load.
pub const CHECK_STRIDE: u32 = 64;

// ---------------------------------------------------------------------------
// Deadlines + cooperative cancellation
// ---------------------------------------------------------------------------

/// A shared flag that cancels every in-flight query holding a clone.
///
/// Cancellation is cooperative: traversals poll the flag every
/// [`CHECK_STRIDE`] nodes and unwind with [`Interrupt::Cancelled`].
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag; every traversal polling this token unwinds at its
    /// next stride check.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the token has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Why a traversal stopped early.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Interrupt {
    /// The monotonic cutoff passed mid-traversal.
    DeadlineExceeded,
    /// The [`CancelToken`] was raised mid-traversal.
    Cancelled,
}

impl fmt::Display for Interrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interrupt::DeadlineExceeded => write!(f, "query deadline exceeded"),
            Interrupt::Cancelled => write!(f, "query cancelled"),
        }
    }
}

/// A per-query execution budget: an optional monotonic cutoff plus an
/// optional cancellation token, checked cooperatively inside traversals.
///
/// `Deadline::unlimited()` is free to check (two branch-predicted `None`
/// tests), so undeadlined queries pay nothing.
#[derive(Clone, Debug, Default)]
pub struct Deadline {
    cutoff: Option<Instant>,
    token: Option<CancelToken>,
    stride: u32,
}

impl Deadline {
    /// No cutoff, no token: `check` always succeeds.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A cutoff `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Deadline {
            cutoff: Some(Instant::now() + budget),
            token: None,
            stride: 0,
        }
    }

    /// A cutoff at an absolute monotonic instant.
    pub fn at(cutoff: Instant) -> Self {
        Deadline {
            cutoff: Some(cutoff),
            token: None,
            stride: 0,
        }
    }

    /// Attaches a cancellation token; `check` fails once it is raised.
    pub fn with_token(mut self, token: CancelToken) -> Self {
        self.token = Some(token);
        self
    }

    /// Whether this deadline can ever interrupt a traversal.
    pub fn is_unlimited(&self) -> bool {
        self.cutoff.is_none() && self.token.is_none()
    }

    /// The full check: token first (cheap atomic load), then the clock.
    pub fn check(&self) -> Result<(), Interrupt> {
        if let Some(token) = &self.token {
            if token.is_cancelled() {
                return Err(Interrupt::Cancelled);
            }
        }
        if let Some(cutoff) = self.cutoff {
            if Instant::now() >= cutoff {
                return Err(Interrupt::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// The strided check traversals call per visited node: a counter
    /// increment on the fast path, the full [`Deadline::check`] every
    /// [`CHECK_STRIDE`] calls. `&mut self` keeps the counter thread-local
    /// to the traversal that owns the deadline clone.
    pub fn tick(&mut self) -> Result<(), Interrupt> {
        if self.is_unlimited() {
            return Ok(());
        }
        self.stride += 1;
        if self.stride < CHECK_STRIDE {
            return Ok(());
        }
        self.stride = 0;
        self.check()
    }
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct AdmissionState {
    in_flight: usize,
    waiting: usize,
}

/// A counting semaphore bounding concurrent facade queries, with a
/// bounded wait queue and load shedding past it.
///
/// Built on `std::sync::{Mutex, Condvar}` (the vendored `parking_lot`
/// stub carries no condvar). The lock is held only to adjust two
/// counters, never across query execution.
#[derive(Debug)]
pub struct AdmissionControl {
    state: Mutex<AdmissionState>,
    available: Condvar,
    max_in_flight: usize,
    max_queue: usize,
}

impl AdmissionControl {
    /// At most `max_in_flight` concurrent holders; up to `max_queue`
    /// further callers block waiting for a slot; beyond that, shed.
    pub fn new(max_in_flight: usize, max_queue: usize) -> Self {
        AdmissionControl {
            state: Mutex::new(AdmissionState::default()),
            available: Condvar::new(),
            max_in_flight: max_in_flight.max(1),
            max_queue,
        }
    }

    /// Acquires a slot, blocking in the bounded queue if necessary.
    /// Returns `None` when the queue is also full (load shed).
    pub fn admit(self: &Arc<Self>) -> Option<AdmissionPermit> {
        let mut state = self.state.lock().expect("admission lock poisoned");
        if state.in_flight < self.max_in_flight {
            state.in_flight += 1;
            return Some(AdmissionPermit {
                control: Arc::clone(self),
            });
        }
        if state.waiting >= self.max_queue {
            return None;
        }
        state.waiting += 1;
        while state.in_flight >= self.max_in_flight {
            state = self.available.wait(state).expect("admission lock poisoned");
        }
        state.waiting -= 1;
        state.in_flight += 1;
        Some(AdmissionPermit {
            control: Arc::clone(self),
        })
    }

    fn release(&self) {
        let mut state = self.state.lock().expect("admission lock poisoned");
        state.in_flight -= 1;
        drop(state);
        self.available.notify_one();
    }

    /// Current holders plus queued waiters — zero means the control is
    /// idle (no permit outstanding, nobody blocked), which is what makes
    /// an owning table entry safe to evict.
    pub fn load(&self) -> usize {
        let state = self.state.lock().expect("admission lock poisoned");
        state.in_flight + state.waiting
    }

    /// The configured concurrency bound.
    pub fn max_in_flight(&self) -> usize {
        self.max_in_flight
    }

    /// The configured queue depth.
    pub fn max_queue(&self) -> usize {
        self.max_queue
    }
}

/// An RAII admission slot; dropping it wakes one queued waiter.
#[derive(Debug)]
pub struct AdmissionPermit {
    control: Arc<AdmissionControl>,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        self.control.release();
    }
}

// ---------------------------------------------------------------------------
// Retry with exponential backoff + jitter
// ---------------------------------------------------------------------------

/// Classifies a storage error: transient faults (interrupted syscalls,
/// saturated queues, timeouts) are worth retrying; everything else —
/// including `FaultFs`'s crash-style injected faults — is permanent and
/// surfaces immediately.
pub fn is_transient(err: &std::io::Error) -> bool {
    matches!(
        err.kind(),
        std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut
    )
}

/// Process-wide jitter state: a counter mixed through a multiply-xorshift
/// so concurrent retriers decorrelate without any RNG dependency.
static JITTER_SEED: AtomicU64 = AtomicU64::new(0x9e37_79b9_7f4a_7c15);

fn jitter_below(bound_nanos: u64) -> u64 {
    if bound_nanos == 0 {
        return 0;
    }
    let raw = JITTER_SEED.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
    let mut x = raw;
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x % bound_nanos
}

/// Exponential backoff policy for transient storage faults.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retry).
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles each further retry.
    pub base_delay: Duration,
    /// Cap on the (pre-jitter) backoff delay.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries; useful to disable backoff in tests.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        }
    }

    /// The backoff before retry number `retry` (1-based), with up to 50%
    /// multiplicative jitter subtracted so synchronized retriers spread.
    fn delay_for(&self, retry: u32) -> Duration {
        let exp = self.base_delay.saturating_mul(1u32 << (retry - 1).min(20));
        let capped = exp.min(self.max_delay);
        let nanos = capped.as_nanos() as u64;
        Duration::from_nanos(nanos - jitter_below(nanos / 2 + 1).min(nanos))
    }

    /// Runs `op`, retrying transient `io::Error`s (per [`is_transient`])
    /// with exponential backoff. `on_retry` is invoked once per retry —
    /// the metrics hook. Permanent errors and exhaustion surface the last
    /// error unchanged.
    pub fn run<T>(
        &self,
        mut on_retry: impl FnMut(),
        mut op: impl FnMut() -> std::io::Result<T>,
    ) -> std::io::Result<T> {
        let attempts = self.max_attempts.max(1);
        let mut attempt = 1;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if is_transient(&e) && attempt < attempts => {
                    on_retry();
                    std::thread::sleep(self.delay_for(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Write circuit breaker
// ---------------------------------------------------------------------------

/// Breaker states. `Open` is the degraded read-only mode: mutations fail
/// fast with `Degraded` while queries keep serving from memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum BreakerState {
    /// Healthy: writes flow to storage.
    Closed,
    /// Tripped: writes are rejected without touching storage.
    Open,
    /// A probe (the next checkpoint) is in flight.
    HalfOpen,
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BreakerState::Closed => write!(f, "closed"),
            BreakerState::Open => write!(f, "open"),
            BreakerState::HalfOpen => write!(f, "half-open"),
        }
    }
}

/// Counts consecutive permanent journal-append failures and trips into
/// [`BreakerState::Open`] after `threshold` of them. The durable store's
/// next `checkpoint` acts as the half-open probe: a successful checkpoint
/// rewrites the snapshot from memory, so disk provably matches memory
/// again and the breaker closes.
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    consecutive: u32,
    state: BreakerState,
    trips: u64,
    recoveries: u64,
}

impl CircuitBreaker {
    /// Trips after `threshold` consecutive permanent failures.
    pub fn new(threshold: u32) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            consecutive: 0,
            state: BreakerState::Closed,
            trips: 0,
            recoveries: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether mutations should be rejected without touching storage.
    pub fn is_open(&self) -> bool {
        matches!(self.state, BreakerState::Open | BreakerState::HalfOpen)
    }

    /// Consecutive permanent failures seen since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive
    }

    /// Times the breaker tripped Closed→Open.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Times a probe closed the breaker again.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Records a permanent write failure; returns `true` if this one
    /// tripped the breaker.
    pub fn record_failure(&mut self) -> bool {
        self.consecutive += 1;
        match self.state {
            BreakerState::Closed if self.consecutive >= self.threshold => {
                self.state = BreakerState::Open;
                self.trips += 1;
                true
            }
            // A failed probe re-opens.
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open;
                false
            }
            _ => false,
        }
    }

    /// Records a successful write (or probe); returns `true` if this
    /// closed an open breaker.
    pub fn record_success(&mut self) -> bool {
        self.consecutive = 0;
        if self.is_open() {
            self.state = BreakerState::Closed;
            self.recoveries += 1;
            true
        } else {
            false
        }
    }

    /// Marks the probe in flight (called as a checkpoint begins while
    /// open).
    pub fn begin_probe(&mut self) {
        if self.state == BreakerState::Open {
            self.state = BreakerState::HalfOpen;
        }
    }
}

// ---------------------------------------------------------------------------
// Health surface
// ---------------------------------------------------------------------------

/// Lifecycle state of one supervised shard (DESIGN.md §17).
///
/// The supervisor drives each shard around the cycle
/// `Healthy → Degraded → Quarantined → Rebuilding → Healthy`: the write
/// breaker tripping marks the shard `Degraded`; quarantine takes it out of
/// the write path entirely (mutations answer a typed `Unavailable` instead
/// of a breaker rejection) while reads keep serving from memory; rebuild
/// re-opens a fresh store from disk and atomically swaps it back in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ShardState {
    /// Writes flow normally.
    Healthy,
    /// The write breaker is open: mutations fail fast, reads serve.
    Degraded,
    /// Out of the write path awaiting repair; reads serve from memory.
    Quarantined,
    /// An online repair is re-opening the shard from disk; the old
    /// in-memory image keeps answering reads until the atomic swap.
    Rebuilding,
}

impl ShardState {
    /// Whether the write path may reach the shard at all. `Degraded`
    /// still admits writes so the breaker (and its probe) stays the
    /// authority; quarantine and rebuild refuse before touching the store.
    pub fn accepts_writes(&self) -> bool {
        matches!(self, ShardState::Healthy | ShardState::Degraded)
    }
}

impl fmt::Display for ShardState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardState::Healthy => write!(f, "healthy"),
            ShardState::Degraded => write!(f, "degraded"),
            ShardState::Quarantined => write!(f, "quarantined"),
            ShardState::Rebuilding => write!(f, "rebuilding"),
        }
    }
}

/// A point-in-time health summary of a store, the payload behind
/// `Zoom::health()` and `zoomctl health --json`.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HealthReport {
    /// `true` when the store can accept mutations.
    pub writable: bool,
    /// Breaker state; in-memory stores are always `Closed`.
    pub breaker: BreakerState,
    /// Consecutive permanent append failures since the last success.
    pub consecutive_failures: u32,
    /// Breaker trips over the store's lifetime.
    pub breaker_trips: u64,
    /// Breaker recoveries over the store's lifetime.
    pub breaker_recoveries: u64,
    /// Transient IO retries performed.
    pub io_retries: u64,
    /// Mutations rejected while degraded.
    pub degraded_writes_rejected: u64,
    /// Whether the store is durably backed at all.
    pub durable: bool,
    /// Supervisor lifecycle state; stores outside a supervised router
    /// report `Healthy` (or `Degraded` when the breaker is open).
    pub state: ShardState,
    /// Durability epoch (0 for in-memory stores).
    pub epoch: u64,
    /// Times the supervisor quarantined this shard.
    pub quarantines: u64,
    /// Online repairs completed (fsck + reopen + swap).
    pub repairs: u64,
    /// Duration of the most recent completed repair, nanoseconds
    /// (0 when never repaired).
    pub last_repair_nanos: u64,
}

impl HealthReport {
    /// A healthy in-memory store: always writable, never durable.
    pub fn in_memory() -> Self {
        HealthReport {
            writable: true,
            breaker: BreakerState::Closed,
            consecutive_failures: 0,
            breaker_trips: 0,
            breaker_recoveries: 0,
            io_retries: 0,
            degraded_writes_rejected: 0,
            durable: false,
            state: ShardState::Healthy,
            epoch: 0,
            quarantines: 0,
            repairs: 0,
            last_repair_nanos: 0,
        }
    }

    /// Renders the report as a JSON object (the workspace carries no JSON
    /// dependency by design; keys documented in DESIGN.md §12/§17).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"status\":\"{}\",\"writable\":{},\"durable\":{},",
                "\"breaker\":\"{}\",\"consecutive_failures\":{},",
                "\"breaker_trips\":{},\"breaker_recoveries\":{},",
                "\"io_retries\":{},\"degraded_writes_rejected\":{},",
                "\"state\":\"{}\",\"epoch\":{},\"quarantines\":{},",
                "\"repairs\":{},\"last_repair_nanos\":{}}}"
            ),
            if self.writable { "ok" } else { "degraded" },
            self.writable,
            self.durable,
            self.breaker,
            self.consecutive_failures,
            self.breaker_trips,
            self.breaker_recoveries,
            self.io_retries,
            self.degraded_writes_rejected,
            self.state,
            self.epoch,
            self.quarantines,
            self.repairs,
            self.last_repair_nanos,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_deadline_never_fires() {
        let mut d = Deadline::unlimited();
        for _ in 0..10_000 {
            assert_eq!(d.tick(), Ok(()));
        }
    }

    #[test]
    fn expired_deadline_fires_within_one_stride() {
        let mut d = Deadline::at(Instant::now());
        let mut ticks = 0u32;
        let err = loop {
            ticks += 1;
            if let Err(e) = d.tick() {
                break e;
            }
            assert!(ticks <= CHECK_STRIDE, "deadline never fired");
        };
        assert_eq!(err, Interrupt::DeadlineExceeded);
    }

    #[test]
    fn cancel_token_wins_over_clock() {
        let token = CancelToken::new();
        let d = Deadline::at(Instant::now()).with_token(token.clone());
        token.cancel();
        assert_eq!(d.check(), Err(Interrupt::Cancelled));
    }

    #[test]
    fn admission_sheds_past_queue_depth() {
        let ctl = Arc::new(AdmissionControl::new(1, 0));
        let held = ctl.admit().expect("first caller admitted");
        assert!(ctl.admit().is_none(), "no queue: second caller shed");
        drop(held);
        assert!(ctl.admit().is_some(), "slot free again after release");
    }

    #[test]
    fn admission_queue_unblocks_on_release() {
        let ctl = Arc::new(AdmissionControl::new(1, 4));
        let held = ctl.admit().expect("admitted");
        let ctl2 = Arc::clone(&ctl);
        let waiter = std::thread::spawn(move || ctl2.admit().is_some());
        // Give the waiter time to queue, then release.
        std::thread::sleep(Duration::from_millis(20));
        drop(held);
        assert!(waiter.join().expect("waiter thread"));
    }

    #[test]
    fn retry_absorbs_transient_faults() {
        let mut failures = 2;
        let mut retries = 0;
        let policy = RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_micros(10),
            max_delay: Duration::from_micros(100),
        };
        let out = policy.run(
            || retries += 1,
            || {
                if failures > 0 {
                    failures -= 1;
                    Err(std::io::Error::new(
                        std::io::ErrorKind::Interrupted,
                        "transient",
                    ))
                } else {
                    Ok(7)
                }
            },
        );
        assert_eq!(out.unwrap(), 7);
        assert_eq!(retries, 2);
    }

    #[test]
    fn retry_surfaces_permanent_faults_immediately() {
        let mut calls = 0;
        let out: std::io::Result<()> = RetryPolicy::default().run(
            || panic!("permanent errors must not retry"),
            || {
                calls += 1;
                Err(std::io::Error::other("permanent"))
            },
        );
        assert!(out.is_err());
        assert_eq!(calls, 1);
    }

    #[test]
    fn retry_exhaustion_surfaces_last_error() {
        let mut retries = 0;
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_micros(1),
            max_delay: Duration::from_micros(10),
        };
        let out: std::io::Result<()> = policy.run(
            || retries += 1,
            || {
                Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "still down",
                ))
            },
        );
        assert_eq!(out.unwrap_err().kind(), std::io::ErrorKind::TimedOut);
        assert_eq!(retries, 2, "max_attempts=3 means 2 retries");
    }

    #[test]
    fn breaker_trips_and_recovers() {
        let mut b = CircuitBreaker::new(3);
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        assert!(b.record_failure(), "third failure trips");
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.is_open());
        b.begin_probe();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.record_success(), "probe success closes");
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!((b.trips(), b.recoveries()), (1, 1));
    }

    #[test]
    fn failed_probe_reopens_without_double_counting() {
        let mut b = CircuitBreaker::new(1);
        assert!(b.record_failure());
        b.begin_probe();
        assert!(!b.record_failure(), "probe failure is not a fresh trip");
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn health_report_json_shape() {
        let json = HealthReport::in_memory().to_json();
        assert!(json.contains("\"status\":\"ok\""), "{json}");
        assert!(json.contains("\"breaker\":\"closed\""), "{json}");
    }
}
