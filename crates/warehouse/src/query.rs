//! Provenance queries over materialized view-runs.
//!
//! Two semantics coexist, both taken from the paper:
//!
//! * **Immediate provenance** of a visible object is the producing
//!   (possibly virtual) execution together with its *full input set* —
//!   "the immediate provenance of d413 seen by Joe would be S13 and its
//!   input, {d308,…,d408}" (Section II).
//! * **Deep provenance** follows the prototype's implementation: "first
//!   compute UAdmin and then remove information hidden within composite
//!   steps of the given user view" (Section V-B). The answer is the
//!   base-level recursive closure (the `CONNECT BY` analog on the raw run),
//!   projected to the data visible at the view level, with steps replaced
//!   by their composite executions. This projection is what makes the
//!   paper's Figure 10 monotone — coarser views always return *fewer*
//!   tuples — whereas naively recursing over full composite input sets
//!   could drag in side-branch inputs that never fed the queried object.
//!
//! Each query comes in three forms sharing one projection kernel:
//! a plain form computing the base closure with a per-query BFS, an
//! `*_indexed` form reading the closure from a prebuilt
//! [`ProvenanceIndex`] row (what the warehouse facade uses), and a
//! `*_bfs` reference form — the original whole-graph-scan implementation
//! kept verbatim as the oracle for the property tests.

use crate::index::ProvenanceIndex;
use crate::labels::LabelIndex;
use crate::resilience::{Deadline, Interrupt};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;
use zoom_graph::{BitSet, IntervalSet, NodeId};
use zoom_model::{DataId, StepId, ViewRun, WorkflowRun};

/// A structural inconsistency detected while answering a query — the
/// [`ViewRun`] does not belong to the run being queried (or was
/// hand-loaded corrupt). Formerly these aborted the process via
/// `expect`; a serving system must refuse the query instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryError {
    /// The producer node of `data` in the view-run is neither the input
    /// endpoint nor an execution node.
    ProducerNotAnExec {
        /// The queried data object.
        data: DataId,
    },
    /// A step in the run's closure has no execution in the view-run —
    /// the view-run was materialized from a different run.
    StepWithoutExec {
        /// The orphaned step.
        step: StepId,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::ProducerNotAnExec { data } => write!(
                f,
                "producer of data object {} is neither the input endpoint nor an execution",
                data.0
            ),
            QueryError::StepWithoutExec { step } => write!(
                f,
                "step {} has no execution in the view-run (view-run built from a different run?)",
                step.0
            ),
        }
    }
}

impl std::error::Error for QueryError {}

/// Why a deadline-aware deep query did not produce an answer: either the
/// view-run is structurally inconsistent ([`QueryError`]) or the traversal
/// was interrupted by its [`Deadline`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryFailure {
    /// A structural inconsistency (the non-resilient failure mode).
    Corrupt(QueryError),
    /// The deadline passed or the query was cancelled mid-traversal.
    Interrupted(Interrupt),
}

impl From<QueryError> for QueryFailure {
    fn from(e: QueryError) -> Self {
        QueryFailure::Corrupt(e)
    }
}

impl From<Interrupt> for QueryFailure {
    fn from(i: Interrupt) -> Self {
        QueryFailure::Interrupted(i)
    }
}

impl fmt::Display for QueryFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryFailure::Corrupt(e) => e.fmt(f),
            QueryFailure::Interrupted(i) => i.fmt(f),
        }
    }
}

impl std::error::Error for QueryFailure {}

/// Unwraps a [`QueryFailure`] from a traversal run under
/// [`Deadline::unlimited`], where interruption is impossible.
fn corrupt_only(f: QueryFailure) -> QueryError {
    match f {
        QueryFailure::Corrupt(e) => e,
        QueryFailure::Interrupted(_) => unreachable!("unlimited deadline never interrupts"),
    }
}

/// One row of a provenance answer: a visible data object and its producer.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProvenanceRow {
    /// The data object.
    pub data: DataId,
    /// Its producer: the (possibly virtual) execution id, or `None` for
    /// user-input data.
    pub producer: Option<StepId>,
}

/// The answer to a deep-provenance query at some view level.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProvenanceResult {
    /// The queried data object.
    pub target: DataId,
    /// One row per data object in the provenance (sorted by data id) —
    /// the result-size metric of the paper's Figures 10 and 11.
    pub rows: Vec<ProvenanceRow>,
    /// The distinct (possibly virtual) executions involved, sorted.
    pub execs: Vec<StepId>,
}

impl ProvenanceResult {
    /// Number of tuples in the answer (the Figure 10/11 y-axis).
    pub fn tuples(&self) -> usize {
        self.rows.len()
    }

    /// Number of distinct data items in the answer.
    pub fn data_items(&self) -> usize {
        self.rows.len()
    }

    /// Number of executions in the answer.
    pub fn exec_count(&self) -> usize {
        self.execs.len()
    }

    /// The distinct data ids, sorted.
    pub fn data_ids(&self) -> Vec<DataId> {
        self.rows.iter().map(|r| r.data).collect()
    }
}

/// The immediate provenance of a data object (Section II).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ImmediateProvenance {
    /// Produced by a (possibly virtual) execution; the answer is that
    /// execution and its full input set.
    Produced {
        /// The producing execution id.
        exec: StepId,
        /// The execution's input data, sorted.
        inputs: Vec<DataId>,
    },
    /// Input by the user; the answer is whatever metadata was recorded
    /// (resolved by the warehouse layer, which owns the run metadata).
    UserInput,
}

/// Computes the immediate provenance of `d` at this view level.
/// `Ok(None)` means `d` is not visible (it was passed strictly inside a
/// composite execution); an error means the view-run is structurally
/// inconsistent.
pub fn immediate_provenance(
    vr: &ViewRun,
    d: DataId,
) -> Result<Option<ImmediateProvenance>, QueryError> {
    let Some(producer) = vr.producer_node(d) else {
        return Ok(None);
    };
    if producer == vr.input() {
        return Ok(Some(ImmediateProvenance::UserInput));
    }
    let idx = match vr.graph().node(producer) {
        zoom_model::ViewRunNode::Exec(i) => *i,
        _ => return Err(QueryError::ProducerNotAnExec { data: d }),
    };
    Ok(Some(ImmediateProvenance::Produced {
        exec: vr.execs()[idx as usize].id,
        inputs: vr.inputs_of(idx),
    }))
}

/// Projects a base backward closure (given as the visited-node set,
/// including the producer of `d` itself) to the view level: visible closure
/// data with their view-level producers, plus the composite executions the
/// closure touches. Iterates *only* the closure members, never the whole
/// graph, so warm indexed queries cost `O(answer)`, not `O(run)`.
/// Checks `deadline` every [`crate::resilience::CHECK_STRIDE`] members.
fn project_deep(
    run: &WorkflowRun,
    vr: &ViewRun,
    closure: &BitSet,
    d: DataId,
    deadline: &mut Deadline,
) -> Result<ProvenanceResult, QueryFailure> {
    project_deep_members(run, vr, closure.iter(), d, deadline)
}

/// [`project_deep`] over any closure-member enumeration — the bitset rows
/// iterate their set bits, the label index walks its intervals through the
/// post-order permutation. Member order is irrelevant: rows and execs are
/// sorted and deduplicated before returning.
fn project_deep_members(
    run: &WorkflowRun,
    vr: &ViewRun,
    members: impl IntoIterator<Item = usize>,
    d: DataId,
    deadline: &mut Deadline,
) -> Result<ProvenanceResult, QueryFailure> {
    let g = run.graph();
    let exec_id_of_run_node = |node: NodeId| -> Result<Option<StepId>, QueryError> {
        let Some((sid, _)) = run.step_at(node) else {
            return Ok(None);
        };
        match vr.exec_of_step(sid) {
            Some(e) => Ok(Some(e.id)),
            None => Err(QueryError::StepWithoutExec { step: sid }),
        }
    };
    let mut rows: Vec<ProvenanceRow> = Vec::new();
    let mut execs: Vec<StepId> = Vec::new();
    rows.push(ProvenanceRow {
        data: d,
        producer: match run.producer_node(d) {
            Some(n) => exec_id_of_run_node(n)?,
            None => None,
        },
    });
    for i in members {
        deadline.tick()?;
        let n = NodeId::from_index(i);
        if let Some(e) = exec_id_of_run_node(n)? {
            execs.push(e);
        }
        for edge in g.in_edges(n) {
            let src = g.source(edge);
            let src_id = exec_id_of_run_node(src)?;
            for &x in g.edge(edge) {
                if vr.is_visible(x) {
                    rows.push(ProvenanceRow {
                        data: x,
                        producer: src_id,
                    });
                }
            }
        }
    }
    rows.sort();
    rows.dedup();
    execs.sort();
    execs.dedup();
    Ok(ProvenanceResult {
        target: d,
        rows,
        execs,
    })
}

/// Computes the deep provenance of `d` at this view level: the base-level
/// recursive closure over `run`, projected to the view — hidden data
/// dropped, steps replaced by their composite executions. `Ok(None)` means
/// `d` is not visible at this view level (or absent from the run); an
/// error means the view-run does not match the run.
///
/// The closure is computed with a per-query backward BFS; use
/// [`deep_provenance_indexed`] with a [`ProvenanceIndex`] to amortize it
/// across queries and view switches.
pub fn deep_provenance(
    run: &WorkflowRun,
    vr: &ViewRun,
    d: DataId,
) -> Result<Option<ProvenanceResult>, QueryError> {
    deep_provenance_deadline(run, vr, d, &mut Deadline::unlimited()).map_err(corrupt_only)
}

/// [`deep_provenance`] under an execution budget: the backward BFS and the
/// view projection both poll `deadline` every
/// [`crate::resilience::CHECK_STRIDE`] visited nodes, unwinding with
/// [`QueryFailure::Interrupted`] instead of running unbounded on an
/// adversarial run.
pub fn deep_provenance_deadline(
    run: &WorkflowRun,
    vr: &ViewRun,
    d: DataId,
    deadline: &mut Deadline,
) -> Result<Option<ProvenanceResult>, QueryFailure> {
    // d itself must be visible at this view level and present in the run.
    let (Some(_), Some(start)) = (vr.producer_node(d), run.producer_node(d)) else {
        return Ok(None);
    };
    let g = run.graph();

    // Base closure: backward BFS over the *raw* run graph (UAdmin level).
    let mut visited = BitSet::new(g.node_count());
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    visited.insert(start.index());
    queue.push_back(start);
    while let Some(n) = queue.pop_front() {
        deadline.tick()?;
        for p in g.predecessors(n) {
            if visited.insert(p.index()) {
                queue.push_back(p);
            }
        }
    }
    project_deep(run, vr, &visited, d, deadline).map(Some)
}

/// [`deep_provenance`] answered from a prebuilt per-run index: the base
/// closure is one precomputed bitset row, so the query reduces to the view
/// projection. The index must have been built from this same `run`.
pub fn deep_provenance_indexed(
    run: &WorkflowRun,
    vr: &ViewRun,
    index: &ProvenanceIndex,
    d: DataId,
) -> Result<Option<ProvenanceResult>, QueryError> {
    deep_provenance_indexed_deadline(run, vr, index, d, &mut Deadline::unlimited())
        .map_err(corrupt_only)
}

/// [`deep_provenance_indexed`] under an execution budget; the projection
/// loop polls `deadline` per closure member.
pub fn deep_provenance_indexed_deadline(
    run: &WorkflowRun,
    vr: &ViewRun,
    index: &ProvenanceIndex,
    d: DataId,
    deadline: &mut Deadline,
) -> Result<Option<ProvenanceResult>, QueryFailure> {
    let (Some(_), Some(start)) = (vr.producer_node(d), run.producer_node(d)) else {
        return Ok(None);
    };
    project_deep(run, vr, index.ancestors(start), d, deadline).map(Some)
}

/// [`deep_provenance`] answered from a prebuilt [`LabelIndex`]: the base
/// closure is enumerated straight out of the producer's ancestor label —
/// every subtree whose post-order interval proves non-membership is
/// skipped without being visited — so the query is `O(answer)` with
/// `O(n · avg_labels)` index memory instead of the bitset's `O(n²/64)`.
pub fn deep_provenance_labeled(
    run: &WorkflowRun,
    vr: &ViewRun,
    labels: &LabelIndex,
    d: DataId,
) -> Result<Option<ProvenanceResult>, QueryError> {
    deep_provenance_labeled_deadline(run, vr, labels, d, &mut Deadline::unlimited())
        .map_err(corrupt_only)
}

/// [`deep_provenance_labeled`] under an execution budget; the projection
/// loop polls `deadline` per closure member.
pub fn deep_provenance_labeled_deadline(
    run: &WorkflowRun,
    vr: &ViewRun,
    labels: &LabelIndex,
    d: DataId,
    deadline: &mut Deadline,
) -> Result<Option<ProvenanceResult>, QueryFailure> {
    let (Some(_), Some(start)) = (vr.producer_node(d), run.producer_node(d)) else {
        return Ok(None);
    };
    project_deep_members(run, vr, labels.ancestors_of(start), d, deadline).map(Some)
}

/// Reference implementation of [`deep_provenance`] — the original
/// whole-graph-scan projection, kept as the oracle the property tests
/// compare the indexed path against.
pub fn deep_provenance_bfs(
    run: &WorkflowRun,
    vr: &ViewRun,
    d: DataId,
) -> Result<Option<ProvenanceResult>, QueryError> {
    let (Some(_), Some(start)) = (vr.producer_node(d), run.producer_node(d)) else {
        return Ok(None);
    };
    let g = run.graph();

    let mut visited = BitSet::new(g.node_count());
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    visited.insert(start.index());
    queue.push_back(start);
    while let Some(n) = queue.pop_front() {
        for p in g.predecessors(n) {
            if visited.insert(p.index()) {
                queue.push_back(p);
            }
        }
    }

    let exec_id_of_run_node = |node: NodeId| -> Result<Option<StepId>, QueryError> {
        let Some((sid, _)) = run.step_at(node) else {
            return Ok(None);
        };
        match vr.exec_of_step(sid) {
            Some(e) => Ok(Some(e.id)),
            None => Err(QueryError::StepWithoutExec { step: sid }),
        }
    };
    let mut rows: Vec<ProvenanceRow> = Vec::new();
    let mut execs: Vec<StepId> = Vec::new();
    rows.push(ProvenanceRow {
        data: d,
        producer: exec_id_of_run_node(start)?,
    });
    for n in g.node_ids() {
        if !visited.contains(n.index()) {
            continue;
        }
        if let Some(e) = exec_id_of_run_node(n)? {
            execs.push(e);
        }
        for edge in g.in_edges(n) {
            let src = g.source(edge);
            let src_id = exec_id_of_run_node(src)?;
            for &x in g.edge(edge) {
                if vr.is_visible(x) {
                    rows.push(ProvenanceRow {
                        data: x,
                        producer: src_id,
                    });
                }
            }
        }
    }
    rows.sort();
    rows.dedup();
    execs.sort();
    execs.dedup();
    Ok(Some(ProvenanceResult {
        target: d,
        rows,
        execs,
    }))
}

/// The canned forward query of Section IV ("Return the data objects which
/// have a given data object in their data provenance"): the base-level
/// forward closure of `d` over `run`, projected to view-visible data,
/// excluding `d` itself, sorted. Returns `None` if `d` is not visible.
pub fn dependents_of(run: &WorkflowRun, vr: &ViewRun, d: DataId) -> Option<Vec<DataId>> {
    match dependents_of_deadline(run, vr, d, &mut Deadline::unlimited()) {
        Ok(out) => out,
        Err(_) => unreachable!("unlimited deadline never interrupts"),
    }
}

/// [`dependents_of`] under an execution budget: the forward BFS and the
/// collection loop poll `deadline` per visited node.
pub fn dependents_of_deadline(
    run: &WorkflowRun,
    vr: &ViewRun,
    d: DataId,
    deadline: &mut Deadline,
) -> Result<Option<Vec<DataId>>, Interrupt> {
    let (Some(_), Some(start)) = (vr.producer_node(d), run.producer_node(d)) else {
        return Ok(None);
    };
    let g = run.graph();
    // d flows along out-edges of its producer that carry it; every node
    // reachable from a consumer of d depends on d (step-granularity
    // dependency: a step's outputs depend on all of its inputs).
    let mut visited = BitSet::new(g.node_count());
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    for e in g.out_edges(start) {
        if g.edge(e).contains(&d) {
            let t = g.target(e);
            if visited.insert(t.index()) {
                queue.push_back(t);
            }
        }
    }
    while let Some(n) = queue.pop_front() {
        deadline.tick()?;
        for s in g.successors(n) {
            if visited.insert(s.index()) {
                queue.push_back(s);
            }
        }
    }
    collect_dependents(run, vr, &visited, d, deadline).map(Some)
}

/// [`dependents_of`] answered from a prebuilt per-run index: the forward
/// closure is the union of the descendant rows of `d`'s consumers.
pub fn dependents_of_indexed(
    run: &WorkflowRun,
    vr: &ViewRun,
    index: &ProvenanceIndex,
    d: DataId,
) -> Option<Vec<DataId>> {
    match dependents_of_indexed_deadline(run, vr, index, d, &mut Deadline::unlimited()) {
        Ok(out) => out,
        Err(_) => unreachable!("unlimited deadline never interrupts"),
    }
}

/// [`dependents_of_indexed`] under an execution budget; the collection
/// loop polls `deadline` per closure member.
pub fn dependents_of_indexed_deadline(
    run: &WorkflowRun,
    vr: &ViewRun,
    index: &ProvenanceIndex,
    d: DataId,
    deadline: &mut Deadline,
) -> Result<Option<Vec<DataId>>, Interrupt> {
    let (Some(_), Some(start)) = (vr.producer_node(d), run.producer_node(d)) else {
        return Ok(None);
    };
    let g = run.graph();
    let mut visited = BitSet::new(g.node_count());
    for e in g.out_edges(start) {
        if g.edge(e).contains(&d) {
            visited.union_with(index.descendants(g.target(e)));
        }
    }
    collect_dependents(run, vr, &visited, d, deadline).map(Some)
}

/// [`dependents_of`] answered from a prebuilt [`LabelIndex`]: the forward
/// closure is the interval union of the descendant labels of `d`'s
/// consumers — deduplication is free, the union is already a canonical
/// point set — enumerated through the post-order permutation.
pub fn dependents_of_labeled(
    run: &WorkflowRun,
    vr: &ViewRun,
    labels: &LabelIndex,
    d: DataId,
) -> Option<Vec<DataId>> {
    match dependents_of_labeled_deadline(run, vr, labels, d, &mut Deadline::unlimited()) {
        Ok(out) => out,
        Err(_) => unreachable!("unlimited deadline never interrupts"),
    }
}

/// [`dependents_of_labeled`] under an execution budget; the collection
/// loop polls `deadline` per closure member.
pub fn dependents_of_labeled_deadline(
    run: &WorkflowRun,
    vr: &ViewRun,
    labels: &LabelIndex,
    d: DataId,
    deadline: &mut Deadline,
) -> Result<Option<Vec<DataId>>, Interrupt> {
    let (Some(_), Some(start)) = (vr.producer_node(d), run.producer_node(d)) else {
        return Ok(None);
    };
    let g = run.graph();
    let mut closure = IntervalSet::new();
    for e in g.out_edges(start) {
        if g.edge(e).contains(&d) {
            closure.union_with(labels.desc_label(g.target(e)));
        }
    }
    collect_dependents_members(run, vr, labels.descendants_within(&closure), d, deadline).map(Some)
}

/// Reference implementation of [`dependents_of`] — the original
/// whole-graph-scan collection, kept as the property-test oracle.
pub fn dependents_of_bfs(run: &WorkflowRun, vr: &ViewRun, d: DataId) -> Option<Vec<DataId>> {
    vr.producer_node(d)?;
    let start = run.producer_node(d)?;
    let g = run.graph();
    let mut visited = BitSet::new(g.node_count());
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    for e in g.out_edges(start) {
        if g.edge(e).contains(&d) {
            let t = g.target(e);
            if visited.insert(t.index()) {
                queue.push_back(t);
            }
        }
    }
    while let Some(n) = queue.pop_front() {
        for s in g.successors(n) {
            if visited.insert(s.index()) {
                queue.push_back(s);
            }
        }
    }
    let mut out: Vec<DataId> = Vec::new();
    for n in g.node_ids() {
        if !visited.contains(n.index()) || run.step_at(n).is_none() {
            continue;
        }
        for e in g.out_edges(n) {
            out.extend(g.edge(e).iter().copied().filter(|&x| vr.is_visible(x)));
        }
    }
    out.sort();
    out.dedup();
    out.retain(|&x| x != d);
    Some(out)
}

/// Collects the visible data produced by the steps in the forward closure,
/// iterating only the closure members (deadline polled per member).
fn collect_dependents(
    run: &WorkflowRun,
    vr: &ViewRun,
    visited: &BitSet,
    d: DataId,
    deadline: &mut Deadline,
) -> Result<Vec<DataId>, Interrupt> {
    collect_dependents_members(run, vr, visited.iter(), d, deadline)
}

/// [`collect_dependents`] over any closure-member enumeration (see
/// [`project_deep_members`] for why order does not matter).
fn collect_dependents_members(
    run: &WorkflowRun,
    vr: &ViewRun,
    members: impl IntoIterator<Item = usize>,
    d: DataId,
    deadline: &mut Deadline,
) -> Result<Vec<DataId>, Interrupt> {
    let g = run.graph();
    let mut out: Vec<DataId> = Vec::new();
    for i in members {
        deadline.tick()?;
        let n = NodeId::from_index(i);
        if run.step_at(n).is_none() {
            continue;
        }
        for e in g.out_edges(n) {
            out.extend(g.edge(e).iter().copied().filter(|&x| vr.is_visible(x)));
        }
    }
    out.sort();
    out.dedup();
    out.retain(|&x| x != d);
    Ok(out)
}

/// The data set passed between two (possibly virtual) executions — the
/// prototype's "clicking on an edge between two steps" interaction
/// (Section IV). `from`/`to` may also be the special `input`/`output`
/// endpoints when `None`. Returns an empty set when no edge connects them.
pub fn data_between(vr: &ViewRun, from: Option<StepId>, to: Option<StepId>) -> Option<Vec<DataId>> {
    let resolve = |id: Option<StepId>, is_from: bool| -> Option<NodeId> {
        match id {
            None => Some(if is_from { vr.input() } else { vr.output() }),
            Some(sid) => Some(vr.node_of_exec(vr.exec_index_by_id(sid)?)),
        }
    };
    let a = resolve(from, true)?;
    let b = resolve(to, false)?;
    let mut out: Vec<DataId> = Vec::new();
    let g = vr.graph();
    for e in g.out_edges(a) {
        if g.target(e) == b {
            out.extend(g.edge(e).iter().copied());
        }
    }
    out.sort();
    out.dedup();
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoom_model::{RunBuilder, SpecBuilder, UserView, WorkflowRun, WorkflowSpec};

    /// input -> A -> B -> C -> output, A also feeds C directly.
    fn setup() -> (WorkflowSpec, WorkflowRun) {
        let mut b = SpecBuilder::new("q");
        b.analysis("A");
        b.analysis("B");
        b.analysis("C");
        b.from_input("A")
            .edge("A", "B")
            .edge("B", "C")
            .edge("A", "C")
            .to_output("C");
        let s = b.build().unwrap();
        let (a, bb, c) = (
            s.module("A").unwrap(),
            s.module("B").unwrap(),
            s.module("C").unwrap(),
        );
        let mut rb = RunBuilder::new(&s);
        let s1 = rb.step(a);
        let s2 = rb.step(bb);
        let s3 = rb.step(c);
        rb.input_edge(s1, [1])
            .data_edge(s1, s2, [2])
            .data_edge(s2, s3, [3])
            .data_edge(s1, s3, [4])
            .output_edge(s3, [5]);
        let r = rb.build().unwrap();
        (s, r)
    }

    #[test]
    fn deep_provenance_at_admin_level() {
        let (s, r) = setup();
        let vr = ViewRun::new(&r, &UserView::admin(&s));
        let res = deep_provenance(&r, &vr, DataId(5)).unwrap().unwrap();
        assert_eq!(res.target, DataId(5));
        // All data d1..d5, all three steps.
        assert_eq!(res.data_ids(), (1..=5).map(DataId).collect::<Vec<_>>());
        assert_eq!(res.execs, vec![StepId(1), StepId(2), StepId(3)]);
        assert_eq!(res.tuples(), 5);
        // Producers recorded per row.
        assert_eq!(
            res.rows[0],
            ProvenanceRow {
                data: DataId(1),
                producer: None
            }
        );
        assert_eq!(
            res.rows[4],
            ProvenanceRow {
                data: DataId(5),
                producer: Some(StepId(3))
            }
        );
    }

    #[test]
    fn deep_provenance_of_intermediate() {
        let (s, r) = setup();
        let vr = ViewRun::new(&r, &UserView::admin(&s));
        let res = deep_provenance(&r, &vr, DataId(3)).unwrap().unwrap();
        assert_eq!(res.data_ids(), vec![DataId(1), DataId(2), DataId(3)]);
        assert_eq!(res.execs, vec![StepId(1), StepId(2)]);
    }

    #[test]
    fn blackbox_hides_and_shrinks() {
        let (s, r) = setup();
        let vr = ViewRun::new(&r, &UserView::black_box(&s));
        // Intermediates are invisible.
        assert!(deep_provenance(&r, &vr, DataId(3)).unwrap().is_none());
        let res = deep_provenance(&r, &vr, DataId(5)).unwrap().unwrap();
        assert_eq!(res.data_ids(), vec![DataId(1), DataId(5)]);
        assert_eq!(res.execs.len(), 1);
    }

    #[test]
    fn immediate_provenance_variants() {
        let (s, r) = setup();
        let vr = ViewRun::new(&r, &UserView::admin(&s));
        match immediate_provenance(&vr, DataId(5)).unwrap().unwrap() {
            ImmediateProvenance::Produced { exec, inputs } => {
                assert_eq!(exec, StepId(3));
                assert_eq!(inputs, vec![DataId(3), DataId(4)]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            immediate_provenance(&vr, DataId(1)).unwrap().unwrap(),
            ImmediateProvenance::UserInput
        );
        assert!(immediate_provenance(&vr, DataId(99)).unwrap().is_none());
    }

    #[test]
    fn forward_dependents() {
        let (s, r) = setup();
        let vr = ViewRun::new(&r, &UserView::admin(&s));
        // Everything downstream of d2: d3 (from S2) and d5 (from S3).
        assert_eq!(
            dependents_of(&r, &vr, DataId(2)).unwrap(),
            vec![DataId(3), DataId(5)]
        );
        // d4 feeds only S3.
        assert_eq!(dependents_of(&r, &vr, DataId(4)).unwrap(), vec![DataId(5)]);
        // The final output has no dependents.
        assert_eq!(dependents_of(&r, &vr, DataId(5)).unwrap(), vec![]);
        // d1 feeds everything.
        assert_eq!(
            dependents_of(&r, &vr, DataId(1)).unwrap(),
            vec![DataId(2), DataId(3), DataId(4), DataId(5)]
        );
    }

    #[test]
    fn data_between_execs() {
        let (s, r) = setup();
        let vr = ViewRun::new(&r, &UserView::admin(&s));
        // S1 -> S3 carries d4; S1 -> S2 carries d2.
        assert_eq!(
            data_between(&vr, Some(StepId(1)), Some(StepId(3))).unwrap(),
            vec![DataId(4)]
        );
        assert_eq!(
            data_between(&vr, Some(StepId(1)), Some(StepId(2))).unwrap(),
            vec![DataId(2)]
        );
        // input -> S1 carries d1; S3 -> output carries d5.
        assert_eq!(
            data_between(&vr, None, Some(StepId(1))).unwrap(),
            vec![DataId(1)]
        );
        assert_eq!(
            data_between(&vr, Some(StepId(3)), None).unwrap(),
            vec![DataId(5)]
        );
        // No edge S2 -> S1.
        assert_eq!(
            data_between(&vr, Some(StepId(2)), Some(StepId(1))).unwrap(),
            vec![]
        );
        // Unknown exec id.
        assert!(data_between(&vr, Some(StepId(42)), None).is_none());
    }

    /// Satellite 2: a view-run materialized from a *different* run — the
    /// realistic hand-loaded corruption — yields a typed error from every
    /// deep form instead of aborting the process.
    #[test]
    fn mismatched_view_run_errors_instead_of_panicking() {
        let (_, r) = setup();
        // A one-step spec/run whose admin view knows only StepId(1).
        let mut b = SpecBuilder::new("tiny");
        b.analysis("X");
        b.from_input("X").to_output("X");
        let tiny = b.build().unwrap();
        let mut rb = RunBuilder::new(&tiny);
        let s1 = rb.step(tiny.module("X").unwrap());
        rb.input_edge(s1, [1]).output_edge(s1, [5]);
        let tiny_run = rb.build().unwrap();
        let vr = ViewRun::new(&tiny_run, &UserView::admin(&tiny));

        // Querying the 3-step run through the 1-step view-run reaches
        // steps 2 and 3, which have no execution in `vr`.
        let err = deep_provenance(&r, &vr, DataId(5)).unwrap_err();
        assert!(matches!(err, QueryError::StepWithoutExec { .. }));
        let err = deep_provenance_bfs(&r, &vr, DataId(5)).unwrap_err();
        assert!(matches!(err, QueryError::StepWithoutExec { .. }));
        let index = crate::index::ProvenanceIndex::build(&r).unwrap();
        let err = deep_provenance_indexed(&r, &vr, &index, DataId(5)).unwrap_err();
        assert!(matches!(err, QueryError::StepWithoutExec { .. }));
        assert!(err.to_string().contains("no execution in the view-run"));
    }

    #[test]
    fn expired_deadline_interrupts_deep_query() {
        use crate::resilience::{CancelToken, Deadline, Interrupt};
        let (s, r) = setup();
        let vr = ViewRun::new(&r, &UserView::admin(&s));
        // An already-expired cutoff: the traversal must unwind with
        // DeadlineExceeded, deterministically (no timing dependence).
        let mut dead = Deadline::at(std::time::Instant::now());
        let mut interrupted = false;
        // The 3-step run is smaller than one stride, so loop until a tick
        // lands on the stride boundary.
        for _ in 0..crate::resilience::CHECK_STRIDE {
            match deep_provenance_deadline(&r, &vr, DataId(5), &mut dead) {
                Err(QueryFailure::Interrupted(Interrupt::DeadlineExceeded)) => {
                    interrupted = true;
                    break;
                }
                Ok(Some(_)) => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(interrupted, "expired deadline never fired within a stride");

        // A raised cancel token fires on the very first check.
        let token = CancelToken::new();
        token.cancel();
        let mut cancelled = Deadline::unlimited().with_token(token);
        let mut saw_cancel = false;
        for _ in 0..crate::resilience::CHECK_STRIDE {
            if let Err(QueryFailure::Interrupted(Interrupt::Cancelled)) =
                deep_provenance_deadline(&r, &vr, DataId(5), &mut cancelled)
            {
                saw_cancel = true;
                break;
            }
        }
        assert!(saw_cancel);

        // Unlimited deadlines leave every form's answer unchanged.
        assert_eq!(
            deep_provenance_deadline(&r, &vr, DataId(5), &mut Deadline::unlimited())
                .unwrap()
                .unwrap(),
            deep_provenance(&r, &vr, DataId(5)).unwrap().unwrap()
        );
        assert_eq!(
            dependents_of_deadline(&r, &vr, DataId(2), &mut Deadline::unlimited()).unwrap(),
            dependents_of(&r, &vr, DataId(2))
        );
    }

    #[test]
    fn deep_provenance_of_user_input_is_trivial() {
        let (s, r) = setup();
        let vr = ViewRun::new(&r, &UserView::admin(&s));
        let res = deep_provenance(&r, &vr, DataId(1)).unwrap().unwrap();
        assert_eq!(res.tuples(), 1);
        assert!(res.execs.is_empty());
        assert_eq!(res.rows[0].producer, None);
    }
}
