//! Warehouse identifiers and row types.
//!
//! The ZOOM prototype stores workflow definitions, user-view definitions,
//! and run information as tables in an Oracle warehouse (Section IV,
//! Figure 8). This embedded warehouse keeps the same logical schema:
//! a spec table, a view table keyed to specs, and a run table keyed to
//! specs, with materialized composite executions as the query-acceleration
//! structure.

use serde::{Deserialize, Serialize};
use std::fmt;
use zoom_model::{UserView, WorkflowRun, WorkflowSpec};

/// Identifier of a registered workflow specification.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SpecId(pub u32);

/// Identifier of a registered user view.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ViewId(pub u32);

/// Identifier of a loaded workflow run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RunId(pub u32);

impl fmt::Display for SpecId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec#{}", self.0)
    }
}

impl fmt::Debug for SpecId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec#{}", self.0)
    }
}

impl fmt::Display for ViewId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "view#{}", self.0)
    }
}

impl fmt::Debug for ViewId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "view#{}", self.0)
    }
}

impl fmt::Display for RunId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "run#{}", self.0)
    }
}

impl fmt::Debug for RunId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "run#{}", self.0)
    }
}

/// A row of the specification table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpecRow {
    /// The registered specification.
    pub spec: WorkflowSpec,
}

/// A row of the user-view table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ViewRow {
    /// The specification this view partitions.
    pub spec: SpecId,
    /// The view definition.
    pub view: UserView,
}

/// A row of the run table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunRow {
    /// The executed specification.
    pub spec: SpecId,
    /// The validated run (graph + producer index).
    pub run: WorkflowRun,
}

/// Aggregate sizes of the warehouse, for monitoring and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarehouseStats {
    /// Registered specifications.
    pub specs: usize,
    /// Registered views.
    pub views: usize,
    /// Loaded runs.
    pub runs: usize,
    /// Total steps across runs.
    pub steps: usize,
    /// Total distinct data objects across runs.
    pub data_objects: usize,
    /// Materialized view-runs currently cached.
    pub cached_view_runs: usize,
    /// Base-closure provenance indexes currently cached.
    pub cached_indexes: usize,
    /// Provenance-index cache hits since startup.
    pub index_hits: u64,
    /// Provenance-index cache misses (= index builds) since startup.
    pub index_misses: u64,
    /// Total nanoseconds spent building provenance indexes.
    pub index_build_nanos: u64,
    /// View-run cache hits since startup.
    pub view_run_hits: u64,
    /// View-run cache misses (= materializations inserted) since startup.
    pub view_run_misses: u64,
    /// View-run cache entries evicted by the capacity bound.
    pub view_run_evictions: u64,
    /// Records in the current journal tail (durable stores only; 0 for
    /// in-memory warehouses).
    pub journal_records: u64,
    /// Payload bytes in the current journal tail, excluding the magic
    /// header (durable stores only).
    pub journal_bytes: u64,
    /// Compactions (checkpoints) performed since open (durable stores
    /// only).
    pub compactions: u64,
    /// Current durability epoch — the generation number of the live
    /// snapshot/journal pair (durable stores only).
    pub epoch: u64,
    /// Whether the store is in degraded read-only mode: the write circuit
    /// breaker tripped, mutations fail fast, queries keep serving from
    /// memory (durable stores only; always `false` in-memory).
    pub degraded: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_display() {
        assert_eq!(SpecId(1).to_string(), "spec#1");
        assert_eq!(ViewId(2).to_string(), "view#2");
        assert_eq!(RunId(3).to_string(), "run#3");
    }
}
