#![warn(missing_docs)]

//! # zoom-warehouse
//!
//! The embedded provenance warehouse of the ZOOM*UserViews reproduction —
//! the stand-in for the paper's Oracle 10g deployment (Section IV,
//! Figure 8). It stores workflow specifications, user views, and runs;
//! materializes composite executions per `(run, view)` pair; and answers
//! immediate, deep, and forward provenance queries with respect to a user
//! view. Switching views over one run reuses cached materializations, the
//! embedded analog of the paper's temp-table strategy that made view
//! switches ≈13 ms.
//!
//! * [`table`] — typed append-only tables with primary/secondary indexes;
//! * [`schema`] — warehouse ids and row types;
//! * [`query`] — recursive provenance queries over view-runs (the
//!   `CONNECT BY` analog);
//! * [`cache`] — the materialized view-run cache;
//! * [`index`] — the per-run base-closure provenance index (the
//!   base-provenance temp-table analog) and its run-keyed cache;
//! * [`labels`] — tree-cover interval reachability labels, the
//!   `O(n · avg_labels)`-memory default index above the node-count
//!   threshold, with incremental append;
//! * [`metrics`] — the lock-free observability layer: per-query-class
//!   latency histograms, cache/journal/compaction counters, and the
//!   slow-query log, snapshotted as [`MetricsSnapshot`];
//! * [`store`] — the [`Warehouse`] facade;
//! * [`stream`] — streaming ingestion: event-at-a-time run reconstruction
//!   with a committed, queryable prefix mid-run;
//! * [`trace`] — deterministic capture/replay of facade traffic (logical
//!   clocks + result digests) for regression diffing and load generation;
//! * [`privacy`] — per-tenant visibility policies compiled into privacy
//!   views (the inverted-relevance `RelevUserViewBuilder` run), the
//!   partition-join meet, and the [`PolicyTable`] the enforcement points
//!   consult — one atomic load for tenants with no policy;
//! * [`persist`] — binary snapshot save/load;
//! * [`journal`] — an append-only, checksummed journal for incremental
//!   durability (crash-tolerant replay, compaction into snapshots);
//! * [`durable`] — the unified crash-safe store: snapshot + journal tail
//!   behind an atomically-swung manifest, with auto-compaction and `fsck`;
//! * [`io`] — the [`StorageIo`] abstraction ([`RealFs`] in production,
//!   [`FaultFs`] for crash-recovery fault injection);
//! * [`resilience`] — deadlines + cooperative cancellation, admission
//!   control, transient-IO retry with backoff, and the write circuit
//!   breaker behind the durable store's degraded read-only mode;
//! * [`wire`] — the `zoomd` wire layer: capped checksummed frames over
//!   the codec, request/response messages, the run-sharding router, and
//!   the per-tenant quota table;
//! * [`codec`] — the bincode-style serde format behind persistence;
//! * [`fxhash`] — fast hashing for the integer-keyed indexes.

pub mod cache;
pub mod chaos;
pub mod codec;
pub mod durable;
pub mod fxhash;
pub mod index;
pub mod io;
pub mod journal;
pub mod labels;
pub mod metrics;
pub mod persist;
pub mod privacy;
pub mod query;
pub mod resilience;
pub mod schema;
pub mod store;
pub mod stream;
pub mod table;
pub mod trace;
pub mod wire;

pub use cache::ViewRunCache;
pub use chaos::{ChaosDriver, FaultAction, FaultEvent, FaultSchedule, SplitMix64};
pub use durable::{fsck, DurableError, DurableOptions, DurableWarehouse, FsckReport};
pub use index::{IndexBuildError, ProvenanceIndex, ProvenanceIndexCache, RunKeyedCache};
pub use io::{FaultFs, RealFs, StorageIo};
pub use journal::{JournalError, JournaledWarehouse};
pub use labels::{LabelIndex, UpdateOutcome, FRAGMENTATION_FACTOR};
pub use metrics::{
    CacheMetrics, HistogramSnapshot, IndexMetrics, LatencyHistogram, MetricsRegistry,
    MetricsSnapshot, PrivacyMetrics, QueryKind, ReplayMetrics, ResilienceMetrics, SlowQuery,
    StreamMetrics, ViewClass,
};
pub use privacy::{
    conceal, partition_join, partitions_equal, Decision, MutRegistrar, PolicyMetricsSink,
    PolicyTable, ReadRegistrar, ViewRegistry, VisibilityPolicy,
};
pub use query::{
    data_between, deep_provenance, deep_provenance_bfs, deep_provenance_deadline,
    deep_provenance_indexed, deep_provenance_indexed_deadline, deep_provenance_labeled,
    deep_provenance_labeled_deadline, dependents_of, dependents_of_bfs, dependents_of_deadline,
    dependents_of_indexed, dependents_of_indexed_deadline, dependents_of_labeled,
    dependents_of_labeled_deadline, immediate_provenance, ImmediateProvenance, ProvenanceResult,
    ProvenanceRow, QueryError, QueryFailure,
};
pub use resilience::{
    AdmissionControl, AdmissionPermit, BreakerState, CancelToken, CircuitBreaker, Deadline,
    HealthReport, Interrupt, RetryPolicy, ShardState,
};
pub use schema::{RunId, SpecId, ViewId, WarehouseStats};
pub use store::{
    ImmediateAnswer, IndexBackend, Result, Warehouse, WarehouseError, DEFAULT_LABELS_THRESHOLD,
};
pub use stream::{PushOutcome, RunIngestor, SealCommit, StreamCommit, StreamError};
pub use trace::{
    ReplayOptions, ReplayReport, TraceError, TraceHeader, TraceOp, TraceRecorder, TraceReplayer,
    TraceTarget,
};
pub use wire::{
    BatchItem, RepairOutcome, Request, Response, ShardBacking, ShardPolicySink, ShardRouter,
    TenantQuotaTable, TenantQuotas, WireError, DEFAULT_RETRY_AFTER_MS, MAX_FRAME_BYTES,
};
