//! Deterministic capture/replay of warehouse traffic.
//!
//! A [`TraceRecorder`] logs every facade operation — registrations, batch
//! loads, streaming events, provenance queries — together with a **logical
//! clock** and a digest of the operation's result, into a length-prefixed,
//! checksummed binary artifact (the same frame format as the journal). A
//! [`TraceReplayer`] re-executes the artifact against any build — an
//! in-memory [`Warehouse`], a [`DurableWarehouse`] over a fault-injecting
//! filesystem, next year's refactor — and diffs the result digests
//! operation by operation.
//!
//! Determinism rules: nothing in a trace derives from wall-clock time,
//! thread scheduling, or hash-map iteration order. The clock is a counter
//! (the header's `tick_nanos` maps it to *virtual* nanoseconds for paced
//! replay and throughput scoring); digests are computed over canonically
//! ordered renderings (provenance rows and execs are sorted by the query
//! layer, dependents are re-sorted here). That is what makes a recorded
//! trace a regression oracle: the same trace replayed twice — or against
//! two builds — must produce byte-identical digests, so any divergence is
//! a real behavior change, not replay noise.

use crate::codec::{self, CodecError};
use crate::durable::DurableWarehouse;
use crate::journal::crc32;
use crate::metrics::MetricsRegistry;
use crate::schema::{RunId, SpecId, ViewId};
use crate::store::{ImmediateAnswer, Warehouse};
use crate::stream::PushOutcome;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Instant;
use zoom_model::{DataId, EventLog, LogEvent, UserView, WorkflowSpec};

/// Trace artifact magic: `ZOOMTR` + version 1.
pub const MAGIC: &[u8; 8] = b"ZOOMTR\x00\x01";

/// Default virtual duration of one clock tick: 1 ms.
pub const DEFAULT_TICK_NANOS: u64 = 1_000_000;

/// Errors from trace encoding/decoding.
#[derive(Debug)]
pub enum TraceError {
    /// The artifact does not start with the trace magic.
    BadHeader,
    /// A frame failed its CRC or was truncated. Traces are immutable
    /// artifacts, not write-ahead logs: a torn tail is corruption, not
    /// recovery input.
    Corrupt {
        /// Zero-based index of the bad frame (the header is frame 0).
        frame: u64,
    },
    /// A frame payload failed to decode.
    Codec(CodecError),
    /// A frame payload exceeded [`crate::wire::MAX_FRAME_BYTES`] — on
    /// write, the payload was refused instead of silently truncating its
    /// length to `u32` (which would emit a trace that passes per-frame
    /// CRC but decodes garbage); on read, the declared length was
    /// rejected before allocating.
    FrameTooLarge {
        /// The offending payload (or declared) length in bytes.
        len: u64,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadHeader => write!(f, "not a trace artifact (bad magic)"),
            TraceError::Corrupt { frame } => write!(f, "trace frame {frame} corrupt or truncated"),
            TraceError::Codec(e) => write!(f, "trace codec error: {e}"),
            TraceError::FrameTooLarge { len } => write!(
                f,
                "trace frame of {len} bytes exceeds cap of {} bytes",
                crate::wire::MAX_FRAME_BYTES
            ),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<CodecError> for TraceError {
    fn from(e: CodecError) -> Self {
        TraceError::Codec(e)
    }
}

/// The header frame of a trace artifact.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceHeader {
    /// Virtual nanoseconds per clock tick (for paced replay and
    /// throughput scoring).
    pub tick_nanos: u64,
}

/// One recordable facade operation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum TraceOp {
    /// `register_spec`.
    RegisterSpec(WorkflowSpec),
    /// `register_view`.
    RegisterView(SpecId, UserView),
    /// Batch `load_log`.
    LoadLog(SpecId, EventLog),
    /// `begin_stream`.
    BeginStream(SpecId),
    /// `stream_push` of one event.
    PushEvent(RunId, LogEvent),
    /// `stream_seal`.
    SealStream(RunId),
    /// Deep provenance query.
    DeepProvenance(RunId, ViewId, DataId),
    /// Immediate provenance query.
    ImmediateProvenance(RunId, ViewId, DataId),
    /// Forward (dependents) query.
    DependentsOf(RunId, ViewId, DataId),
}

impl TraceOp {
    /// Short operation name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            TraceOp::RegisterSpec(_) => "register_spec",
            TraceOp::RegisterView(..) => "register_view",
            TraceOp::LoadLog(..) => "load_log",
            TraceOp::BeginStream(_) => "begin_stream",
            TraceOp::PushEvent(..) => "push_event",
            TraceOp::SealStream(_) => "seal_stream",
            TraceOp::DeepProvenance(..) => "deep_provenance",
            TraceOp::ImmediateProvenance(..) => "immediate_provenance",
            TraceOp::DependentsOf(..) => "dependents_of",
        }
    }
}

/// One recorded operation: when (logical clock), what, and the digest of
/// what it returned.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Logical clock at which the operation ran (monotone, 1-based).
    pub clock: u64,
    /// The operation.
    pub op: TraceOp,
    /// FNV-1a digest of the canonical result rendering.
    pub digest: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte string — small, stable, dependency-free.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a digest of a canonical result rendering — the digest every
/// [`TraceTarget`] records per operation. Public so out-of-process
/// targets (the `zoomd` client) can reproduce digests bit-for-bit from
/// wire-returned results.
pub fn digest_str(s: &str) -> u64 {
    fnv1a(s.as_bytes())
}

/// Canonical rendering of an error result: `err:` + display.
pub fn render_err(msg: &str) -> String {
    format!("err:{msg}")
}

/// Canonical rendering of an id-returning mutation result.
pub fn render_id(id: impl fmt::Display) -> String {
    id.to_string()
}

/// Canonical rendering of a seal result.
pub fn render_sealed() -> String {
    "sealed".to_string()
}

/// Canonical rendering of a deep-provenance result.
pub fn render_deep(p: &crate::query::ProvenanceResult) -> String {
    let rows: Vec<String> = p
        .rows
        .iter()
        .map(|row| {
            format!(
                "{}<-{}",
                row.data.0,
                row.producer.map_or("u".to_string(), |s| s.0.to_string())
            )
        })
        .collect();
    let execs: Vec<String> = p.execs.iter().map(|s| s.0.to_string()).collect();
    format!("deep:{};{};{}", p.target.0, rows.join(","), execs.join(","))
}

/// Canonical rendering of a dependents result (re-sorted here).
pub fn render_deps(mut deps: Vec<DataId>) -> String {
    deps.sort();
    let ds: Vec<String> = deps.iter().map(|x| x.0.to_string()).collect();
    format!("deps:{}", ds.join(","))
}

fn render_result<T, E: fmt::Display>(res: Result<T, E>, ok: impl Fn(T) -> String) -> String {
    match res {
        Ok(v) => ok(v),
        Err(e) => format!("err:{e}"),
    }
}

/// Canonical rendering of a stream-push outcome.
pub fn render_push(outcome: PushOutcome) -> String {
    match outcome {
        PushOutcome::Buffered => "buffered".to_string(),
        PushOutcome::Committed(steps) => {
            let ids: Vec<String> = steps.iter().map(|s| s.0.to_string()).collect();
            format!("committed:{}", ids.join(","))
        }
    }
}

/// Canonical rendering of an immediate-provenance answer.
pub fn render_immediate(ans: ImmediateAnswer) -> String {
    match ans {
        ImmediateAnswer::Produced {
            exec,
            inputs,
            params,
        } => {
            let ins: Vec<String> = inputs.iter().map(|d| d.0.to_string()).collect();
            let ps: Vec<String> = params
                .iter()
                .map(|(s, k, v)| format!("{}={}:{}", s.0, k, v))
                .collect();
            format!(
                "produced:{};in={};p={}",
                exec.0,
                ins.join(","),
                ps.join(";")
            )
        }
        ImmediateAnswer::UserInput { meta } => match meta {
            Some(m) => format!("user:{}@{}", m.user, m.time.0),
            None => "user:?".to_string(),
        },
    }
}

/// The canonical digests for each query form, shared by every
/// [`TraceTarget`] so a trace recorded against one backing compares
/// against any other.
fn query_digest(w: &Warehouse, op: &TraceOp) -> u64 {
    match op {
        TraceOp::DeepProvenance(r, v, d) => {
            digest_str(&render_result(w.deep_provenance(*r, *v, *d), |p| {
                render_deep(&p)
            }))
        }
        TraceOp::ImmediateProvenance(r, v, d) => digest_str(&render_result(
            w.immediate_provenance(*r, *v, *d),
            render_immediate,
        )),
        TraceOp::DependentsOf(r, v, d) => {
            digest_str(&render_result(w.dependents_of(*r, *v, *d), render_deps))
        }
        // Non-query ops never route here from the impls in this file, but
        // a stable error digest beats a process abort if a future caller
        // (or a hostile byte stream reaching a refactored dispatch) does.
        other => digest_str(&render_err(&format!("not a query op: {}", other.name()))),
    }
}

/// Anything a trace can be recorded against or replayed into.
///
/// Implementations must be deterministic: the digest for an operation may
/// depend only on the operation and the state left by prior operations.
pub trait TraceTarget {
    /// Executes `op` and returns the digest of its canonical result.
    fn apply_trace_op(&mut self, op: &TraceOp) -> u64;

    /// The metrics registry replay counters should land in, if any.
    fn replay_metrics(&self) -> Option<&MetricsRegistry> {
        None
    }
}

impl TraceTarget for Warehouse {
    fn apply_trace_op(&mut self, op: &TraceOp) -> u64 {
        match op {
            TraceOp::RegisterSpec(spec) => {
                digest_str(&render_result(self.register_spec(spec.clone()), |id| {
                    id.to_string()
                }))
            }
            TraceOp::RegisterView(sid, view) => digest_str(&render_result(
                self.register_view(*sid, view.clone()),
                |id| id.to_string(),
            )),
            TraceOp::LoadLog(sid, log) => {
                digest_str(&render_result(self.load_log(*sid, log), |id| {
                    id.to_string()
                }))
            }
            TraceOp::BeginStream(sid) => {
                digest_str(&render_result(self.begin_stream(*sid), |id| id.to_string()))
            }
            TraceOp::PushEvent(run, ev) => {
                digest_str(&render_result(self.stream_push(*run, ev), render_push))
            }
            TraceOp::SealStream(run) => digest_str(&render_result(self.stream_seal(*run), |()| {
                "sealed".to_string()
            })),
            query => query_digest(self, query),
        }
    }

    fn replay_metrics(&self) -> Option<&MetricsRegistry> {
        Some(self.metrics_registry())
    }
}

impl TraceTarget for DurableWarehouse {
    fn apply_trace_op(&mut self, op: &TraceOp) -> u64 {
        match op {
            TraceOp::RegisterSpec(spec) => {
                digest_str(&render_result(self.register_spec(spec.clone()), |id| {
                    id.to_string()
                }))
            }
            TraceOp::RegisterView(sid, view) => digest_str(&render_result(
                self.register_view(*sid, view.clone()),
                |id| id.to_string(),
            )),
            TraceOp::LoadLog(sid, log) => {
                digest_str(&render_result(self.load_log(*sid, log), |id| {
                    id.to_string()
                }))
            }
            TraceOp::BeginStream(sid) => {
                digest_str(&render_result(self.begin_stream(*sid), |id| id.to_string()))
            }
            TraceOp::PushEvent(run, ev) => {
                digest_str(&render_result(self.stream_push(*run, ev), render_push))
            }
            TraceOp::SealStream(run) => digest_str(&render_result(self.stream_seal(*run), |()| {
                "sealed".to_string()
            })),
            query => query_digest(self.warehouse(), query),
        }
    }

    fn replay_metrics(&self) -> Option<&MetricsRegistry> {
        Some(self.warehouse().metrics_registry())
    }
}

fn push_frame(out: &mut Vec<u8>, payload: &[u8]) -> Result<(), TraceError> {
    // Never truncate the length to u32: a >4 GiB payload would otherwise
    // emit a frame whose CRC covers the full payload but whose length
    // prefix wraps, producing an artifact that decodes garbage.
    if payload.len() as u64 > crate::wire::MAX_FRAME_BYTES as u64 {
        return Err(TraceError::FrameTooLarge {
            len: payload.len() as u64,
        });
    }
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(())
}

/// Records facade operations into a trace artifact.
pub struct TraceRecorder {
    header: TraceHeader,
    clock: u64,
    records: Vec<TraceRecord>,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_TICK_NANOS)
    }
}

impl TraceRecorder {
    /// A recorder whose clock ticks are worth `tick_nanos` virtual
    /// nanoseconds each.
    pub fn new(tick_nanos: u64) -> Self {
        TraceRecorder {
            header: TraceHeader { tick_nanos },
            clock: 0,
            records: Vec::new(),
        }
    }

    /// Executes `op` against `target`, records it (with the next logical
    /// clock value and the result digest), and returns the digest.
    pub fn record<T: TraceTarget>(&mut self, target: &mut T, op: TraceOp) -> u64 {
        let digest = target.apply_trace_op(&op);
        self.clock += 1;
        self.records.push(TraceRecord {
            clock: self.clock,
            op,
            digest,
        });
        digest
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serializes the trace artifact: magic, header frame, one frame per
    /// record, each `[len][crc32][payload]`. Fails with
    /// [`TraceError::FrameTooLarge`] if any single record exceeds the
    /// frame cap — never silently truncates.
    pub fn to_bytes(&self) -> Result<Vec<u8>, TraceError> {
        let mut out = Vec::with_capacity(64 * (self.records.len() + 1));
        out.extend_from_slice(MAGIC);
        let header = codec::to_bytes(&self.header)?;
        push_frame(&mut out, &header)?;
        for rec in &self.records {
            let payload = codec::to_bytes(rec)?;
            push_frame(&mut out, &payload)?;
        }
        Ok(out)
    }
}

/// How a replay should run.
#[derive(Clone, Copy, Debug)]
pub struct ReplayOptions {
    /// Pacing: 0.0 (the default) replays as fast as possible; `s > 0`
    /// replays at `s`× recorded speed (1.0 = real time under the
    /// header's tick mapping).
    pub speed: f64,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions { speed: 0.0 }
    }
}

/// One digest divergence between a recording and a replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayMismatch {
    /// Zero-based operation index.
    pub index: usize,
    /// The operation's logical clock in the recording.
    pub clock: u64,
    /// The operation's name.
    pub op: &'static str,
    /// Digest in the recording.
    pub expected: u64,
    /// Digest produced by this replay.
    pub got: u64,
}

/// The outcome of one replay.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Operations replayed.
    pub ops: usize,
    /// Digest divergences, in operation order.
    pub mismatches: Vec<ReplayMismatch>,
    /// Chained FNV-1a digest over every per-op digest this replay
    /// produced — two replays agree end-to-end iff these bytes agree.
    pub digest: u64,
    /// Virtual duration of the recording (`max clock × tick_nanos`).
    pub recorded_nanos: u64,
    /// Wall-clock duration of this replay.
    pub elapsed_nanos: u64,
}

impl ReplayReport {
    /// Whether every digest matched the recording.
    pub fn is_clean(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// How many times faster than the recording this replay ran
    /// (virtual recorded time over wall time).
    pub fn speedup(&self) -> f64 {
        if self.elapsed_nanos == 0 {
            return f64::INFINITY;
        }
        self.recorded_nanos as f64 / self.elapsed_nanos as f64
    }
}

/// Replays a decoded trace artifact against any [`TraceTarget`].
pub struct TraceReplayer {
    header: TraceHeader,
    records: Vec<TraceRecord>,
}

impl TraceReplayer {
    /// Decodes a trace artifact, validating magic and every frame CRC.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TraceError> {
        let body = bytes.strip_prefix(MAGIC).ok_or(TraceError::BadHeader)?;
        let mut frames = Vec::new();
        let mut rest = body;
        let mut frame = 0u64;
        while !rest.is_empty() {
            if rest.len() < 8 {
                return Err(TraceError::Corrupt { frame });
            }
            let len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
            if len as u64 > crate::wire::MAX_FRAME_BYTES as u64 {
                // Reject a hostile declared length before touching that
                // many bytes (streaming readers would otherwise allocate).
                return Err(TraceError::FrameTooLarge { len: len as u64 });
            }
            if rest.len() < 8 + len {
                return Err(TraceError::Corrupt { frame });
            }
            let payload = &rest[8..8 + len];
            if crc32(payload) != crc {
                return Err(TraceError::Corrupt { frame });
            }
            frames.push(payload);
            rest = &rest[8 + len..];
            frame += 1;
        }
        let Some((header_payload, record_payloads)) = frames.split_first() else {
            return Err(TraceError::BadHeader);
        };
        let header: TraceHeader = codec::from_bytes(header_payload)?;
        let mut records = Vec::with_capacity(record_payloads.len());
        for p in record_payloads {
            records.push(codec::from_bytes::<TraceRecord>(p)?);
        }
        Ok(TraceReplayer { header, records })
    }

    /// The artifact's header.
    pub fn header(&self) -> TraceHeader {
        self.header
    }

    /// Number of recorded operations.
    pub fn ops(&self) -> usize {
        self.records.len()
    }

    /// The recorded operations.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Re-executes the trace against `target`, diffing each result digest
    /// against the recording. With `speed > 0` each operation waits for
    /// its recorded virtual time (scaled); otherwise the replay is a
    /// maximum-throughput load generator.
    pub fn replay<T: TraceTarget>(&self, target: &mut T, options: &ReplayOptions) -> ReplayReport {
        if let Some(m) = target.replay_metrics() {
            m.record_replay_session();
        }
        let started = Instant::now();
        let mut mismatches = Vec::new();
        let mut chain = FNV_OFFSET;
        for (i, rec) in self.records.iter().enumerate() {
            if options.speed > 0.0 {
                let due_nanos =
                    (rec.clock.saturating_mul(self.header.tick_nanos)) as f64 / options.speed;
                let due = std::time::Duration::from_nanos(due_nanos as u64);
                let elapsed = started.elapsed();
                if due > elapsed {
                    std::thread::sleep(due - elapsed);
                }
            }
            let got = target.apply_trace_op(&rec.op);
            for b in got.to_le_bytes() {
                chain ^= b as u64;
                chain = chain.wrapping_mul(FNV_PRIME);
            }
            let mismatch = got != rec.digest;
            if mismatch {
                mismatches.push(ReplayMismatch {
                    index: i,
                    clock: rec.clock,
                    op: rec.op.name(),
                    expected: rec.digest,
                    got,
                });
            }
            if let Some(m) = target.replay_metrics() {
                m.record_replay_op(mismatch);
            }
        }
        let recorded_nanos = self
            .records
            .last()
            .map_or(0, |r| r.clock.saturating_mul(self.header.tick_nanos));
        ReplayReport {
            ops: self.records.len(),
            mismatches,
            digest: chain,
            recorded_nanos,
            elapsed_nanos: started.elapsed().as_nanos() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoom_model::ids::{StepId, Timestamp};
    use zoom_model::{RunBuilder, SpecBuilder};

    fn spec() -> WorkflowSpec {
        let mut b = SpecBuilder::new("tr");
        b.analysis("A");
        b.analysis("B");
        b.from_input("A").edge("A", "B").to_output("B");
        b.build().unwrap()
    }

    fn demo_log(s: &WorkflowSpec) -> EventLog {
        let (a, bb) = (s.module("A").unwrap(), s.module("B").unwrap());
        let mut rb = RunBuilder::new(s);
        let s1 = rb.step(a);
        let s2 = rb.step(bb);
        rb.input_edge(s1, [1])
            .data_edge(s1, s2, [2])
            .output_edge(s2, [3]);
        EventLog::from_run(&rb.build().unwrap(), s)
    }

    fn record_demo() -> (TraceRecorder, Warehouse) {
        let s = spec();
        let log = demo_log(&s);
        let mut w = Warehouse::new();
        let mut rec = TraceRecorder::default();
        rec.record(&mut w, TraceOp::RegisterSpec(s.clone()));
        rec.record(
            &mut w,
            TraceOp::RegisterView(SpecId(0), zoom_model::UserView::admin(&s)),
        );
        // One batch run, one streamed run of the same log.
        rec.record(&mut w, TraceOp::LoadLog(SpecId(0), log.clone()));
        rec.record(&mut w, TraceOp::BeginStream(SpecId(0)));
        for ev in &log.events {
            if matches!(ev, LogEvent::Finalized { .. }) {
                rec.record(&mut w, TraceOp::PushEvent(RunId(1), ev.clone()));
            } else {
                rec.record(&mut w, TraceOp::PushEvent(RunId(1), ev.clone()));
                rec.record(
                    &mut w,
                    TraceOp::DeepProvenance(RunId(1), ViewId(0), DataId(2)),
                );
            }
        }
        rec.record(&mut w, TraceOp::SealStream(RunId(1)));
        for run in [0, 1] {
            rec.record(
                &mut w,
                TraceOp::DeepProvenance(RunId(run), ViewId(0), DataId(3)),
            );
            rec.record(
                &mut w,
                TraceOp::ImmediateProvenance(RunId(run), ViewId(0), DataId(3)),
            );
            rec.record(
                &mut w,
                TraceOp::DependentsOf(RunId(run), ViewId(0), DataId(1)),
            );
        }
        (rec, w)
    }

    #[test]
    fn roundtrip_and_clean_replay() {
        let (rec, _) = record_demo();
        let bytes = rec.to_bytes().unwrap();
        let replayer = TraceReplayer::from_bytes(&bytes).unwrap();
        assert_eq!(replayer.ops(), rec.len());

        let mut fresh = Warehouse::new();
        let report = replayer.replay(&mut fresh, &ReplayOptions::default());
        assert!(report.is_clean(), "mismatches: {:?}", report.mismatches);
        assert_eq!(report.ops, rec.len());

        // Determinism: a second replay into another fresh warehouse
        // produces the identical chained digest.
        let mut again = Warehouse::new();
        let report2 = replayer.replay(&mut again, &ReplayOptions::default());
        assert!(report2.is_clean());
        assert_eq!(report.digest, report2.digest);

        // Replay metrics landed.
        let snap = fresh.metrics();
        assert_eq!(snap.replay.sessions, 1);
        assert_eq!(snap.replay.ops as usize, rec.len());
        assert_eq!(snap.replay.mismatches, 0);
    }

    #[test]
    fn mismatch_detected_against_diverged_state() {
        let (rec, _) = record_demo();
        let bytes = rec.to_bytes().unwrap();
        let replayer = TraceReplayer::from_bytes(&bytes).unwrap();
        // A warehouse that already has a spec shifts every id: digests of
        // the id-returning mutations diverge.
        let mut skewed = Warehouse::new();
        let mut other = SpecBuilder::new("occupant");
        other.analysis("X");
        other.from_input("X").to_output("X");
        skewed.register_spec(other.build().unwrap()).unwrap();
        let report = replayer.replay(&mut skewed, &ReplayOptions::default());
        assert!(!report.is_clean());
        assert_eq!(
            skewed.metrics().replay.mismatches as usize,
            report.mismatches.len()
        );
    }

    #[test]
    fn corrupt_frames_rejected() {
        let (rec, _) = record_demo();
        let mut bytes = rec.to_bytes().unwrap();
        assert!(matches!(
            TraceReplayer::from_bytes(b"NOTATRACE"),
            Err(TraceError::BadHeader)
        ));
        // Flip a payload byte: CRC mismatch.
        let n = bytes.len();
        bytes[n - 1] ^= 0xff;
        assert!(matches!(
            TraceReplayer::from_bytes(&bytes),
            Err(TraceError::Corrupt { .. })
        ));
        // Truncate mid-frame: torn tail is corruption for traces.
        bytes.truncate(n - 3);
        assert!(matches!(
            TraceReplayer::from_bytes(&bytes),
            Err(TraceError::Corrupt { .. })
        ));
    }

    #[test]
    fn rejection_digests_are_stable_too() {
        // Errors are part of the recorded behavior: replaying an op that
        // failed identically matches digests.
        let s = spec();
        let mut w = Warehouse::new();
        let mut rec = TraceRecorder::default();
        rec.record(&mut w, TraceOp::RegisterSpec(s.clone()));
        rec.record(&mut w, TraceOp::BeginStream(SpecId(0)));
        // Out-of-order event: rejected, and the rejection is recorded.
        rec.record(
            &mut w,
            TraceOp::PushEvent(
                RunId(0),
                LogEvent::StepFinished {
                    step: StepId(7),
                    time: Timestamp(1),
                },
            ),
        );
        let replayer = TraceReplayer::from_bytes(&rec.to_bytes().unwrap()).unwrap();
        let mut fresh = Warehouse::new();
        let report = replayer.replay(&mut fresh, &ReplayOptions::default());
        assert!(report.is_clean(), "mismatches: {:?}", report.mismatches);
    }
}
