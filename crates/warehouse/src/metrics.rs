//! Lock-free runtime metrics for the provenance warehouse.
//!
//! The paper's evaluation (Section V, Figures 10–11) is built on per-query
//! latency and the cost of view switches; serving provenance at production
//! scale needs the same numbers available *at runtime*, not just in
//! benchmark harnesses. This module is the warehouse's observability
//! layer:
//!
//! * [`MetricsRegistry`] — atomic counters and fixed-bucket latency
//!   histograms, shared by every hot path ([`crate::query`] through
//!   [`crate::store::Warehouse`], the caches, the journal and the durable
//!   store). Recording is wait-free (a handful of relaxed atomic adds);
//!   the parallel batch path never serializes on bookkeeping.
//! * [`LatencyHistogram`] — 16 power-of-two buckets from 1 µs to ≥16 ms,
//!   plus count/sum/max, so mean *and* tail behaviour survive aggregation.
//! * A **slow-query log** — a small ring buffer of the most recent queries
//!   that crossed a configurable latency threshold, each with its
//!   run/view/data context, so "why was that click slow?" is answerable
//!   after the fact.
//! * [`MetricsSnapshot`] — a serde-serializable point-in-time copy of
//!   everything above, folded together with the existing
//!   [`WarehouseStats`] table counters. [`MetricsSnapshot::to_json`]
//!   renders it as JSON for `zoomctl stats --json`.
//!
//! ## Counter-accuracy guarantee
//!
//! For both caches, `hits + misses` equals the number of `get_or_build`
//! calls, *including* under the parallel batch path: a thread that builds
//! an entry but loses the insert race is counted as a **hit** (it returns
//! the winner's entry) plus one `race_lost_builds`, and `misses` counts
//! exactly the entries actually inserted. Hit-rate arithmetic therefore
//! never over- or under-counts queries.

use crate::schema::{RunId, ViewId, WarehouseStats};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

thread_local! {
    /// The tenant the current thread is executing a query for, if any.
    /// Set by the daemon's dispatch loop (and the `*_as` facade variants)
    /// so slow-log entries can be attributed — and later filtered — per
    /// tenant without threading an extra parameter through every query
    /// signature.
    static CURRENT_TENANT: RefCell<Option<Arc<str>>> = const { RefCell::new(None) };
}

/// Restores the previous tenant tag when dropped, so nested scopes (a
/// facade call issuing sub-queries) unwind correctly even across panics.
#[derive(Debug)]
pub struct TenantTagGuard {
    prev: Option<Arc<str>>,
}

impl Drop for TenantTagGuard {
    fn drop(&mut self) {
        CURRENT_TENANT.with(|t| *t.borrow_mut() = self.prev.take());
    }
}

/// Tags the current thread's queries as issued by `tenant` until the
/// returned guard drops. `None` clears the tag for the scope.
pub fn tag_tenant(tenant: Option<&str>) -> TenantTagGuard {
    tag_tenant_shared(tenant.map(Arc::from))
}

/// [`tag_tenant`] taking an already-shared name — the batch fan-out
/// workers re-tag themselves with a clone of the submitting thread's tag
/// without re-allocating per worker.
pub fn tag_tenant_shared(tenant: Option<Arc<str>>) -> TenantTagGuard {
    let prev = CURRENT_TENANT.with(|t| std::mem::replace(&mut *t.borrow_mut(), tenant));
    TenantTagGuard { prev }
}

/// The current thread's tenant tag, if one is in scope.
pub fn current_tenant() -> Option<Arc<str>> {
    CURRENT_TENANT.with(|t| t.borrow().clone())
}

/// Number of histogram buckets (15 bounded + 1 overflow).
pub const HISTOGRAM_BUCKETS: usize = 16;

/// Upper bounds (exclusive, nanoseconds) of the bounded buckets: powers of
/// two from 1 µs (2^10 ns) to ~16.8 ms (2^24 ns). The final bucket counts
/// everything at or above the last bound.
pub const BUCKET_BOUNDS_NANOS: [u64; HISTOGRAM_BUCKETS - 1] = [
    1 << 10,
    1 << 11,
    1 << 12,
    1 << 13,
    1 << 14,
    1 << 15,
    1 << 16,
    1 << 17,
    1 << 18,
    1 << 19,
    1 << 20,
    1 << 21,
    1 << 22,
    1 << 23,
    1 << 24,
];

/// Capacity of the slow-query ring buffer.
pub const SLOW_LOG_CAPACITY: usize = 64;

/// Default slow-query threshold: 10 ms. Queries slower than this are
/// captured in the ring buffer with their context.
pub const DEFAULT_SLOW_THRESHOLD_NANOS: u64 = 10_000_000;

#[inline]
fn bucket_index(nanos: u64) -> usize {
    // Bucket i covers [1024 << (i-1), 1024 << i); bucket 0 is < 1 µs and
    // the last bucket absorbs the tail. Significant-bit arithmetic keeps
    // the hot path branch-light.
    ((64 - nanos.leading_zeros()) as usize)
        .saturating_sub(10)
        .min(HISTOGRAM_BUCKETS - 1)
}

/// A fixed-bucket latency histogram with lock-free recording.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation. Wait-free: four relaxed atomic updates.
    #[inline]
    pub fn record(&self, nanos: u64) {
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
            max_nanos: self.max_nanos.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Serializable copy of a [`LatencyHistogram`].
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations, nanoseconds.
    pub sum_nanos: u64,
    /// Largest single observation, nanoseconds.
    pub max_nanos: u64,
    /// Per-bucket counts; bucket `i` covers latencies below
    /// [`BUCKET_BOUNDS_NANOS`]`[i]`, the last bucket the overflow tail.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_nanos(&self) -> u64 {
        self.sum_nanos.checked_div(self.count).unwrap_or(0)
    }
}

/// The provenance query families the warehouse serves.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum QueryKind {
    /// Deep (recursive backward) provenance.
    Deep,
    /// Immediate provenance.
    Immediate,
    /// The canned forward query (dependents).
    Dependents,
    /// The edge-click query (data between two executions).
    Between,
}

impl QueryKind {
    /// All kinds, in display order.
    pub const ALL: [QueryKind; 4] = [
        QueryKind::Deep,
        QueryKind::Immediate,
        QueryKind::Dependents,
        QueryKind::Between,
    ];

    /// Stable lower-case name (used as a JSON key fragment).
    pub fn name(self) -> &'static str {
        match self {
            QueryKind::Deep => "deep",
            QueryKind::Immediate => "immediate",
            QueryKind::Dependents => "dependents",
            QueryKind::Between => "between",
        }
    }

    fn index(self) -> usize {
        match self {
            QueryKind::Deep => 0,
            QueryKind::Immediate => 1,
            QueryKind::Dependents => 2,
            QueryKind::Between => 3,
        }
    }
}

impl fmt::Display for QueryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The coarse class of the user view a query ran against — the dimension
/// the paper's Figure 10 varies (finest, intermediate, coarsest).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ViewClass {
    /// The finest view, `UAdmin`.
    Admin,
    /// The coarsest view, `UBlackBox`.
    BlackBox,
    /// Any user-built view in between.
    Custom,
}

impl ViewClass {
    /// All classes, in display order.
    pub const ALL: [ViewClass; 3] = [ViewClass::Admin, ViewClass::BlackBox, ViewClass::Custom];

    /// Classifies a view by its registered name.
    pub fn of_view_name(name: &str) -> ViewClass {
        match name {
            "UAdmin" => ViewClass::Admin,
            "UBlackBox" => ViewClass::BlackBox,
            _ => ViewClass::Custom,
        }
    }

    /// Stable lower-case name (used as a JSON key fragment).
    pub fn name(self) -> &'static str {
        match self {
            ViewClass::Admin => "admin",
            ViewClass::BlackBox => "black_box",
            ViewClass::Custom => "custom",
        }
    }

    fn index(self) -> usize {
        match self {
            ViewClass::Admin => 0,
            ViewClass::BlackBox => 1,
            ViewClass::Custom => 2,
        }
    }
}

impl fmt::Display for ViewClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One captured slow query, with enough context to reproduce it.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlowQuery {
    /// Monotone sequence number (total slow queries observed so far).
    pub seq: u64,
    /// The query family.
    pub kind: QueryKind,
    /// The run queried.
    pub run: RunId,
    /// The view queried through.
    pub view: ViewId,
    /// The view's registered name.
    pub view_name: String,
    /// The queried data object, if the query form has one.
    pub data: Option<u64>,
    /// Wall-clock duration, nanoseconds.
    pub nanos: u64,
    /// The tenant the query was executed for, when known (daemon dispatch
    /// and the `*_as` facade variants tag their scope). Local untagged
    /// queries record `None`. This is what per-tenant slow-log filtering
    /// keys on.
    pub tenant: Option<String>,
}

/// The lock-free metrics registry every warehouse owns.
///
/// All recording methods take `&self` and cost a few relaxed atomic
/// operations; the only lock is around the slow-query ring buffer, taken
/// only for queries that actually crossed the threshold.
#[derive(Debug)]
pub struct MetricsRegistry {
    /// Query latency, per kind × view class.
    query_hist: [[LatencyHistogram; 3]; 4],
    /// Queries that returned an error (not visible, missing, corrupt).
    query_errors: AtomicU64,
    /// Batch calls served.
    batches: AtomicU64,
    /// Individual queries inside batches.
    batch_queries: AtomicU64,
    /// Largest single batch seen.
    max_batch_fanout: AtomicU64,
    /// Journal appends (each one is an fsync).
    journal_appends: AtomicU64,
    /// Journal append+fsync latency.
    journal_append_hist: LatencyHistogram,
    /// Checkpoint/compaction duration.
    checkpoint_hist: LatencyHistogram,
    /// View-switch latency (an interactive session changing views).
    view_switch_hist: LatencyHistogram,
    slow_threshold_nanos: AtomicU64,
    slow_seq: AtomicU64,
    slow_log: Mutex<VecDeque<SlowQuery>>,
    /// Queries that asked for admission (admitted + shed).
    admission_attempts: AtomicU64,
    /// Queries admitted (immediately or after queueing).
    admission_admitted: AtomicU64,
    /// Queries shed because both slots and queue were full.
    admission_shed: AtomicU64,
    /// Queries interrupted by their deadline.
    deadline_exceeded: AtomicU64,
    /// Queries interrupted by a cancel token.
    cancelled: AtomicU64,
    /// Transient storage-IO retries performed by the backoff policy.
    io_retries: AtomicU64,
    /// Write circuit-breaker trips (Closed→Open).
    breaker_trips: AtomicU64,
    /// Write circuit-breaker recoveries (probe closed it again).
    breaker_recoveries: AtomicU64,
    /// Mutations rejected while the store was degraded (breaker open).
    degraded_writes_rejected: AtomicU64,
    /// Times the supervisor quarantined this shard (out of the write path).
    shard_quarantines: AtomicU64,
    /// Online repairs completed (fsck + reopen + atomic swap).
    shard_repairs: AtomicU64,
    /// Total nanoseconds spent in completed online repairs.
    repair_nanos: AtomicU64,
    /// Mutations refused with the typed `Unavailable` answer while
    /// quarantined or rebuilding.
    unavailable_rejected: AtomicU64,
    /// Streaming ingestions opened.
    streams_started: AtomicU64,
    /// Stream events accepted and applied.
    stream_events: AtomicU64,
    /// Stream events rejected with a typed `StreamError`.
    stream_events_rejected: AtomicU64,
    /// Steps committed into streaming prefixes.
    stream_steps_committed: AtomicU64,
    /// Streams sealed into complete runs.
    streams_sealed: AtomicU64,
    /// Label indexes extended in place by a streaming commit.
    label_appends: AtomicU64,
    /// Label indexes rebuilt (fragmentation fallback) by a streaming commit.
    label_rebuilds: AtomicU64,
    /// Trace replay sessions run against this warehouse.
    replay_sessions: AtomicU64,
    /// Trace operations re-executed by replays.
    replay_ops: AtomicU64,
    /// Replayed operations whose result digest diverged from the recording.
    replay_mismatches: AtomicU64,
    /// Queries rewritten to a coarser view by a visibility policy.
    policy_substitutions: AtomicU64,
    /// Requests denied outright by a visibility policy (hidden workflow,
    /// rendered as the equivalent not-found error).
    policy_denials: AtomicU64,
    /// Policy decisions answered from the compiled-policy cache.
    policy_cache_hits: AtomicU64,
    /// Privacy views compiled (inverted-relevance builder runs).
    policy_compilations: AtomicU64,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry {
            query_hist: Default::default(),
            query_errors: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batch_queries: AtomicU64::new(0),
            max_batch_fanout: AtomicU64::new(0),
            journal_appends: AtomicU64::new(0),
            journal_append_hist: LatencyHistogram::new(),
            checkpoint_hist: LatencyHistogram::new(),
            view_switch_hist: LatencyHistogram::new(),
            slow_threshold_nanos: AtomicU64::new(DEFAULT_SLOW_THRESHOLD_NANOS),
            slow_seq: AtomicU64::new(0),
            slow_log: Mutex::new(VecDeque::with_capacity(SLOW_LOG_CAPACITY)),
            admission_attempts: AtomicU64::new(0),
            admission_admitted: AtomicU64::new(0),
            admission_shed: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            io_retries: AtomicU64::new(0),
            breaker_trips: AtomicU64::new(0),
            breaker_recoveries: AtomicU64::new(0),
            degraded_writes_rejected: AtomicU64::new(0),
            shard_quarantines: AtomicU64::new(0),
            shard_repairs: AtomicU64::new(0),
            repair_nanos: AtomicU64::new(0),
            unavailable_rejected: AtomicU64::new(0),
            streams_started: AtomicU64::new(0),
            stream_events: AtomicU64::new(0),
            stream_events_rejected: AtomicU64::new(0),
            stream_steps_committed: AtomicU64::new(0),
            streams_sealed: AtomicU64::new(0),
            label_appends: AtomicU64::new(0),
            label_rebuilds: AtomicU64::new(0),
            replay_sessions: AtomicU64::new(0),
            replay_ops: AtomicU64::new(0),
            replay_mismatches: AtomicU64::new(0),
            policy_substitutions: AtomicU64::new(0),
            policy_denials: AtomicU64::new(0),
            policy_cache_hits: AtomicU64::new(0),
            policy_compilations: AtomicU64::new(0),
        }
    }
}

impl MetricsRegistry {
    /// A fresh registry with the default slow-query threshold.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a successful query: latency histogram plus, if over the
    /// threshold, a slow-log entry carrying the query's context.
    #[allow(clippy::too_many_arguments)] // one flat call per query keeps the hot path allocation-free
    pub fn record_query(
        &self,
        kind: QueryKind,
        class: ViewClass,
        run: RunId,
        view: ViewId,
        view_name: &str,
        data: Option<u64>,
        nanos: u64,
    ) {
        self.query_hist[kind.index()][class.index()].record(nanos);
        if nanos >= self.slow_threshold_nanos.load(Ordering::Relaxed) {
            let seq = self.slow_seq.fetch_add(1, Ordering::Relaxed) + 1;
            let entry = SlowQuery {
                seq,
                kind,
                run,
                view,
                view_name: view_name.to_string(),
                data,
                nanos,
                tenant: current_tenant().map(|t| t.to_string()),
            };
            let mut log = self.slow_log.lock();
            if log.len() == SLOW_LOG_CAPACITY {
                log.pop_front();
            }
            log.push_back(entry);
        }
    }

    /// Records a query that ended in an error.
    pub fn record_query_error(&self) {
        self.query_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one batch call fanning out `queries` individual queries.
    pub fn record_batch(&self, queries: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_queries
            .fetch_add(queries as u64, Ordering::Relaxed);
        self.max_batch_fanout
            .fetch_max(queries as u64, Ordering::Relaxed);
    }

    /// Records one journal append (including its fsync) taking `nanos`.
    pub fn record_journal_append(&self, nanos: u64) {
        self.journal_appends.fetch_add(1, Ordering::Relaxed);
        self.journal_append_hist.record(nanos);
    }

    /// Records one checkpoint/compaction taking `nanos`.
    pub fn record_checkpoint(&self, nanos: u64) {
        self.checkpoint_hist.record(nanos);
    }

    /// Records one view switch taking `nanos`.
    pub fn record_view_switch(&self, nanos: u64) {
        self.view_switch_hist.record(nanos);
    }

    /// Records one admission-control decision. The accounting invariant
    /// `attempts == admitted + shed` holds by construction: every call
    /// bumps `attempts` and exactly one of the other two.
    pub fn record_admission(&self, admitted: bool) {
        self.admission_attempts.fetch_add(1, Ordering::Relaxed);
        if admitted {
            self.admission_admitted.fetch_add(1, Ordering::Relaxed);
        } else {
            self.admission_shed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a query interrupted by its deadline.
    pub fn record_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a query interrupted by a cancel token.
    pub fn record_cancelled(&self) {
        self.cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one transient storage-IO retry.
    pub fn record_io_retry(&self) {
        self.io_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Transient storage-IO retries performed so far.
    pub fn io_retries(&self) -> u64 {
        self.io_retries.load(Ordering::Relaxed)
    }

    /// Records the write breaker tripping Closed→Open.
    pub fn record_breaker_trip(&self) {
        self.breaker_trips.fetch_add(1, Ordering::Relaxed);
    }

    /// Breaker trips so far.
    pub fn breaker_trips(&self) -> u64 {
        self.breaker_trips.load(Ordering::Relaxed)
    }

    /// Records the write breaker closing again after a probe.
    pub fn record_breaker_recovery(&self) {
        self.breaker_recoveries.fetch_add(1, Ordering::Relaxed);
    }

    /// Breaker recoveries so far.
    pub fn breaker_recoveries(&self) -> u64 {
        self.breaker_recoveries.load(Ordering::Relaxed)
    }

    /// Records a mutation rejected while the store was degraded.
    pub fn record_degraded_write_rejected(&self) {
        self.degraded_writes_rejected
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records the supervisor quarantining this shard.
    pub fn record_quarantine(&self) {
        self.shard_quarantines.fetch_add(1, Ordering::Relaxed);
    }

    /// Quarantines so far.
    pub fn shard_quarantines(&self) -> u64 {
        self.shard_quarantines.load(Ordering::Relaxed)
    }

    /// Records one completed online repair and its duration.
    pub fn record_repair(&self, nanos: u64) {
        self.shard_repairs.fetch_add(1, Ordering::Relaxed);
        self.repair_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Completed online repairs so far.
    pub fn shard_repairs(&self) -> u64 {
        self.shard_repairs.load(Ordering::Relaxed)
    }

    /// Records a mutation refused with the typed `Unavailable` answer.
    pub fn record_unavailable_rejected(&self) {
        self.unavailable_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Mutations rejected while degraded so far.
    pub fn degraded_writes_rejected(&self) -> u64 {
        self.degraded_writes_rejected.load(Ordering::Relaxed)
    }

    /// Records a streaming ingestion opening.
    pub fn record_stream_started(&self) {
        self.streams_started.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one stream event accepted and applied.
    pub fn record_stream_event(&self) {
        self.stream_events.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one stream event (or seal) rejected with a typed error.
    pub fn record_stream_rejected(&self) {
        self.stream_events_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` steps committed into a streaming prefix.
    pub fn record_steps_committed(&self, n: u64) {
        self.stream_steps_committed.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a stream sealing into a complete run.
    pub fn record_stream_sealed(&self) {
        self.streams_sealed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a label index extended in place by a streaming commit.
    pub fn record_label_append(&self) {
        self.label_appends.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a label index rebuilt (fragmentation fallback) mid-stream.
    pub fn record_label_rebuild(&self) {
        self.label_rebuilds.fetch_add(1, Ordering::Relaxed);
    }

    /// Label-index in-place extensions so far.
    pub fn label_appends(&self) -> u64 {
        self.label_appends.load(Ordering::Relaxed)
    }

    /// Label-index mid-stream rebuilds so far.
    pub fn label_rebuilds(&self) -> u64 {
        self.label_rebuilds.load(Ordering::Relaxed)
    }

    /// Records a trace replay session starting.
    pub fn record_replay_session(&self) {
        self.replay_sessions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one replayed trace operation; `mismatch` flags a digest
    /// that diverged from the recording.
    pub fn record_replay_op(&self, mismatch: bool) {
        self.replay_ops.fetch_add(1, Ordering::Relaxed);
        if mismatch {
            self.replay_mismatches.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a query rewritten to a coarser view by a visibility policy.
    pub fn record_policy_substitution(&self) {
        self.policy_substitutions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request denied outright by a visibility policy.
    pub fn record_policy_denial(&self) {
        self.policy_denials.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a policy decision served from the compiled cache.
    pub fn record_policy_cache_hit(&self) {
        self.policy_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one privacy-view compilation (an inverted-relevance
    /// builder run).
    pub fn record_policy_compilation(&self) {
        self.policy_compilations.fetch_add(1, Ordering::Relaxed);
    }

    /// Sets the slow-query threshold in nanoseconds (0 captures every
    /// query; `u64::MAX` disables the log).
    pub fn set_slow_threshold_nanos(&self, nanos: u64) {
        self.slow_threshold_nanos.store(nanos, Ordering::Relaxed);
    }

    /// The current slow-query threshold in nanoseconds.
    pub fn slow_threshold_nanos(&self) -> u64 {
        self.slow_threshold_nanos.load(Ordering::Relaxed)
    }

    /// The captured slow queries, oldest first.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.slow_log.lock().iter().cloned().collect()
    }

    /// Drops every captured slow query (the sequence counter keeps going).
    pub fn clear_slow_log(&self) {
        self.slow_log.lock().clear();
    }

    /// Snapshots the registry-owned parts (the caller folds in table and
    /// cache counters).
    pub(crate) fn snapshot_into(
        &self,
        stats: WarehouseStats,
        view_run_cache: CacheMetrics,
        index_cache: CacheMetrics,
        index: IndexMetrics,
    ) -> MetricsSnapshot {
        let mut queries = Vec::with_capacity(12);
        for kind in QueryKind::ALL {
            for class in ViewClass::ALL {
                queries.push(QueryLatency {
                    kind,
                    view_class: class,
                    latency: self.query_hist[kind.index()][class.index()].snapshot(),
                });
            }
        }
        MetricsSnapshot {
            stats,
            queries,
            query_errors: self.query_errors.load(Ordering::Relaxed),
            view_run_cache,
            index_cache,
            index,
            batch: BatchMetrics {
                batches: self.batches.load(Ordering::Relaxed),
                queries: self.batch_queries.load(Ordering::Relaxed),
                max_fanout: self.max_batch_fanout.load(Ordering::Relaxed),
            },
            journal: JournalMetrics {
                appends: self.journal_appends.load(Ordering::Relaxed),
                append_latency: self.journal_append_hist.snapshot(),
                checkpoint_latency: self.checkpoint_hist.snapshot(),
            },
            view_switch: self.view_switch_hist.snapshot(),
            slow_query_threshold_nanos: self.slow_threshold_nanos.load(Ordering::Relaxed),
            slow_queries: self.slow_queries(),
            resilience: ResilienceMetrics {
                attempts: self.admission_attempts.load(Ordering::Relaxed),
                admitted: self.admission_admitted.load(Ordering::Relaxed),
                shed: self.admission_shed.load(Ordering::Relaxed),
                deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
                cancelled: self.cancelled.load(Ordering::Relaxed),
                io_retries: self.io_retries.load(Ordering::Relaxed),
                breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
                breaker_recoveries: self.breaker_recoveries.load(Ordering::Relaxed),
                degraded_writes_rejected: self.degraded_writes_rejected.load(Ordering::Relaxed),
                quarantines: self.shard_quarantines.load(Ordering::Relaxed),
                repairs: self.shard_repairs.load(Ordering::Relaxed),
                repair_nanos: self.repair_nanos.load(Ordering::Relaxed),
                unavailable_rejected: self.unavailable_rejected.load(Ordering::Relaxed),
            },
            stream: StreamMetrics {
                streams_started: self.streams_started.load(Ordering::Relaxed),
                events: self.stream_events.load(Ordering::Relaxed),
                events_rejected: self.stream_events_rejected.load(Ordering::Relaxed),
                steps_committed: self.stream_steps_committed.load(Ordering::Relaxed),
                streams_sealed: self.streams_sealed.load(Ordering::Relaxed),
                label_appends: self.label_appends.load(Ordering::Relaxed),
                label_rebuilds: self.label_rebuilds.load(Ordering::Relaxed),
            },
            replay: ReplayMetrics {
                sessions: self.replay_sessions.load(Ordering::Relaxed),
                ops: self.replay_ops.load(Ordering::Relaxed),
                mismatches: self.replay_mismatches.load(Ordering::Relaxed),
            },
            privacy: PrivacyMetrics {
                substitutions: self.policy_substitutions.load(Ordering::Relaxed),
                denials: self.policy_denials.load(Ordering::Relaxed),
                cache_hits: self.policy_cache_hits.load(Ordering::Relaxed),
                compilations: self.policy_compilations.load(Ordering::Relaxed),
            },
        }
    }
}

/// Latency of one query family at one view class.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryLatency {
    /// The query family.
    pub kind: QueryKind,
    /// The view class queried through.
    pub view_class: ViewClass,
    /// The latency distribution.
    pub latency: HistogramSnapshot,
}

/// Counters of one materialization cache (view-run or provenance-index).
///
/// Obeys the counter-accuracy guarantee: `hits + misses` equals the
/// number of cache queries; `race_lost_builds` counts builds whose result
/// was discarded because another thread inserted first (those queries are
/// part of `hits`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheMetrics {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that built and inserted a new entry.
    pub misses: u64,
    /// Builds discarded after losing the insert race.
    pub race_lost_builds: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
    /// Entries currently cached.
    pub entries: u64,
    /// Total nanoseconds spent building inserted entries.
    pub build_nanos: u64,
}

/// Gauges over the resident reachability indexes: which backend policy
/// is in force, how many bytes each index cache holds, and how the
/// interval labels are distributed (DESIGN.md §13).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexMetrics {
    /// Backend policy: a fixed backend's name, or `"auto"`.
    pub backend: String,
    /// Bytes resident across every cached bitset index (`O(n²/64)` each).
    pub bitset_bytes: u64,
    /// Bytes resident across every cached label index
    /// (`O(n · avg_labels)` each).
    pub label_bytes: u64,
    /// Total intervals across every cached label index.
    pub label_intervals: u64,
    /// Power-of-two histogram of per-node label sizes: bucket 0 counts
    /// empty labels, bucket `i ≥ 1` labels of `[2^(i-1), 2^i)` intervals,
    /// the last bucket the tail.
    pub label_count_hist: [u64; 16],
    /// The label-index cache's counters (the bitset cache's counters are
    /// [`MetricsSnapshot::index_cache`]).
    pub label_cache: CacheMetrics,
}

/// Batch-query fan-out counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchMetrics {
    /// Batch calls served.
    pub batches: u64,
    /// Individual queries across all batches.
    pub queries: u64,
    /// Largest single batch.
    pub max_fanout: u64,
}

/// Journal and compaction timing.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalMetrics {
    /// Appends performed (each is an fsync).
    pub appends: u64,
    /// Append+fsync latency.
    pub append_latency: HistogramSnapshot,
    /// Checkpoint/compaction duration.
    pub checkpoint_latency: HistogramSnapshot,
}

/// Resilience counters: admission control, deadline interruptions,
/// transient-IO retries, and the write circuit breaker.
///
/// Obeys the same accounting guarantee as the caches:
/// `attempts == admitted + shed`, exactly, including under concurrency —
/// every admission decision bumps `attempts` and exactly one of the
/// other two.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResilienceMetrics {
    /// Queries that asked for admission.
    pub attempts: u64,
    /// Queries admitted (immediately or after queueing).
    pub admitted: u64,
    /// Queries shed with `Overloaded`.
    pub shed: u64,
    /// Queries interrupted by their deadline.
    pub deadline_exceeded: u64,
    /// Queries interrupted by a cancel token.
    pub cancelled: u64,
    /// Transient storage-IO retries performed.
    pub io_retries: u64,
    /// Write circuit-breaker trips (Closed→Open).
    pub breaker_trips: u64,
    /// Write circuit-breaker recoveries.
    pub breaker_recoveries: u64,
    /// Mutations rejected while degraded.
    pub degraded_writes_rejected: u64,
    /// Supervisor quarantines of this shard.
    pub quarantines: u64,
    /// Online repairs completed (fsck + reopen + atomic swap).
    pub repairs: u64,
    /// Total nanoseconds spent in completed online repairs.
    pub repair_nanos: u64,
    /// Mutations refused with the typed `Unavailable` answer.
    pub unavailable_rejected: u64,
}

/// Streaming-ingestion counters: how many streams opened/sealed, how the
/// label index absorbed commits (in-place appends vs fragmentation
/// rebuilds), and the rejection count the monotonicity validation produces.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamMetrics {
    /// Streaming ingestions opened.
    pub streams_started: u64,
    /// Events accepted and applied.
    pub events: u64,
    /// Events (or seals) rejected with a typed `StreamError`.
    pub events_rejected: u64,
    /// Steps committed into streaming prefixes.
    pub steps_committed: u64,
    /// Streams sealed into complete runs.
    pub streams_sealed: u64,
    /// Label indexes extended in place by a commit.
    pub label_appends: u64,
    /// Label indexes rebuilt (fragmentation fallback) by a commit.
    pub label_rebuilds: u64,
}

/// Trace replay counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplayMetrics {
    /// Replay sessions run against this warehouse.
    pub sessions: u64,
    /// Trace operations re-executed.
    pub ops: u64,
    /// Operations whose result digest diverged from the recording.
    pub mismatches: u64,
}

/// Visibility-policy enforcement counters (DESIGN.md §16). A tenant with
/// no policy touches none of these: the fast path is a single atomic load
/// on the policy count, and enforcement is skipped entirely.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrivacyMetrics {
    /// Queries rewritten to a coarser (privacy or meet) view.
    pub substitutions: u64,
    /// Requests denied outright (hidden workflow → not-found rendering).
    pub denials: u64,
    /// Policy decisions served from the compiled cache.
    pub cache_hits: u64,
    /// Privacy views compiled by the inverted-relevance builder.
    pub compilations: u64,
}

/// A point-in-time copy of every warehouse metric, including the classic
/// [`WarehouseStats`] table counters.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Table sizes, index counters, and durability counters.
    pub stats: WarehouseStats,
    /// Query latency per kind × view class (all 12 combinations, in
    /// [`QueryKind::ALL`] × [`ViewClass::ALL`] order).
    pub queries: Vec<QueryLatency>,
    /// Queries that returned an error.
    pub query_errors: u64,
    /// The materialized view-run cache.
    pub view_run_cache: CacheMetrics,
    /// The base-closure provenance-index cache.
    pub index_cache: CacheMetrics,
    /// Reachability-index gauges: backend policy, resident bytes per
    /// index family, and the label-size distribution.
    pub index: IndexMetrics,
    /// Batch fan-out counters.
    pub batch: BatchMetrics,
    /// Journal append and checkpoint timing.
    pub journal: JournalMetrics,
    /// View-switch latency.
    pub view_switch: HistogramSnapshot,
    /// Current slow-query threshold, nanoseconds.
    pub slow_query_threshold_nanos: u64,
    /// The captured slow queries, oldest first.
    pub slow_queries: Vec<SlowQuery>,
    /// Admission, deadline, retry, and breaker counters.
    pub resilience: ResilienceMetrics,
    /// Streaming-ingestion counters.
    pub stream: StreamMetrics,
    /// Trace replay counters.
    pub replay: ReplayMetrics,
    /// Visibility-policy enforcement counters.
    pub privacy: PrivacyMetrics,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn hist_json(h: &HistogramSnapshot) -> String {
    let buckets: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
    format!(
        "{{\"count\":{},\"sum_nanos\":{},\"max_nanos\":{},\"mean_nanos\":{},\"buckets\":[{}]}}",
        h.count,
        h.sum_nanos,
        h.max_nanos,
        h.mean_nanos(),
        buckets.join(",")
    )
}

fn cache_json(c: &CacheMetrics) -> String {
    format!(
        "{{\"hits\":{},\"misses\":{},\"race_lost_builds\":{},\"evictions\":{},\"entries\":{},\"build_nanos\":{}}}",
        c.hits, c.misses, c.race_lost_builds, c.evictions, c.entries, c.build_nanos
    )
}

/// Renders one slow query as a JSON object.
pub fn slow_query_json(q: &SlowQuery) -> String {
    format!(
        "{{\"seq\":{},\"kind\":\"{}\",\"run\":{},\"view\":{},\"view_name\":\"{}\",\"data\":{},\"nanos\":{},\"tenant\":{}}}",
        q.seq,
        q.kind,
        q.run.0,
        q.view.0,
        json_escape(&q.view_name),
        q.data.map_or("null".to_string(), |d| d.to_string()),
        q.nanos,
        q.tenant
            .as_deref()
            .map_or("null".to_string(), |t| format!("\"{}\"", json_escape(t)))
    )
}

impl MetricsSnapshot {
    /// Renders the snapshot as a JSON document (the `zoomctl stats --json`
    /// format, documented in DESIGN.md §11). Hand-rolled because no JSON
    /// serializer crate is in the workspace's dependency budget.
    pub fn to_json(&self) -> String {
        let s = &self.stats;
        let stats = format!(
            "{{\"specs\":{},\"views\":{},\"runs\":{},\"steps\":{},\"data_objects\":{},\
             \"cached_view_runs\":{},\"cached_indexes\":{},\"index_hits\":{},\"index_misses\":{},\
             \"index_build_nanos\":{},\"view_run_hits\":{},\"view_run_misses\":{},\
             \"view_run_evictions\":{},\"journal_records\":{},\"journal_bytes\":{},\
             \"compactions\":{},\"epoch\":{},\"degraded\":{}}}",
            s.specs,
            s.views,
            s.runs,
            s.steps,
            s.data_objects,
            s.cached_view_runs,
            s.cached_indexes,
            s.index_hits,
            s.index_misses,
            s.index_build_nanos,
            s.view_run_hits,
            s.view_run_misses,
            s.view_run_evictions,
            s.journal_records,
            s.journal_bytes,
            s.compactions,
            s.epoch,
            s.degraded
        );
        let r = &self.resilience;
        let resilience = format!(
            "{{\"attempts\":{},\"admitted\":{},\"shed\":{},\"deadline_exceeded\":{},\
             \"cancelled\":{},\"io_retries\":{},\"breaker_trips\":{},\
             \"breaker_recoveries\":{},\"degraded_writes_rejected\":{},\
             \"quarantines\":{},\"repairs\":{},\"repair_nanos\":{},\
             \"unavailable_rejected\":{}}}",
            r.attempts,
            r.admitted,
            r.shed,
            r.deadline_exceeded,
            r.cancelled,
            r.io_retries,
            r.breaker_trips,
            r.breaker_recoveries,
            r.degraded_writes_rejected,
            r.quarantines,
            r.repairs,
            r.repair_nanos,
            r.unavailable_rejected
        );
        let st = &self.stream;
        let stream = format!(
            "{{\"streams_started\":{},\"events\":{},\"events_rejected\":{},\
             \"steps_committed\":{},\"streams_sealed\":{},\"label_appends\":{},\
             \"label_rebuilds\":{}}}",
            st.streams_started,
            st.events,
            st.events_rejected,
            st.steps_committed,
            st.streams_sealed,
            st.label_appends,
            st.label_rebuilds
        );
        let rp = &self.replay;
        let replay = format!(
            "{{\"sessions\":{},\"ops\":{},\"mismatches\":{}}}",
            rp.sessions, rp.ops, rp.mismatches
        );
        let pv = &self.privacy;
        let privacy = format!(
            "{{\"substitutions\":{},\"denials\":{},\"cache_hits\":{},\"compilations\":{}}}",
            pv.substitutions, pv.denials, pv.cache_hits, pv.compilations
        );
        let queries: Vec<String> = self
            .queries
            .iter()
            .map(|q| {
                format!(
                    "{{\"kind\":\"{}\",\"view_class\":\"{}\",\"latency\":{}}}",
                    q.kind,
                    q.view_class,
                    hist_json(&q.latency)
                )
            })
            .collect();
        let slow: Vec<String> = self.slow_queries.iter().map(slow_query_json).collect();
        let ix = &self.index;
        let hist: Vec<String> = ix.label_count_hist.iter().map(u64::to_string).collect();
        let index = format!(
            "{{\"backend\":\"{}\",\"bitset_bytes\":{},\"label_bytes\":{},\
             \"label_intervals\":{},\"label_count_hist\":[{}],\"label_cache\":{}}}",
            json_escape(&ix.backend),
            ix.bitset_bytes,
            ix.label_bytes,
            ix.label_intervals,
            hist.join(","),
            cache_json(&ix.label_cache)
        );
        format!(
            "{{\"stats\":{},\"queries\":[{}],\"query_errors\":{},\"view_run_cache\":{},\
             \"index_cache\":{},\"index\":{},\
             \"batch\":{{\"batches\":{},\"queries\":{},\"max_fanout\":{}}},\
             \"journal\":{{\"appends\":{},\"append_latency\":{},\"checkpoint_latency\":{}}},\
             \"view_switch\":{},\"resilience\":{},\"stream\":{},\"replay\":{},\
             \"privacy\":{},\
             \"slow_query_threshold_nanos\":{},\
             \"slow_queries\":[{}]}}",
            stats,
            queries.join(","),
            self.query_errors,
            cache_json(&self.view_run_cache),
            cache_json(&self.index_cache),
            index,
            self.batch.batches,
            self.batch.queries,
            self.batch.max_fanout,
            self.journal.appends,
            hist_json(&self.journal.append_latency),
            hist_json(&self.journal.checkpoint_latency),
            hist_json(&self.view_switch),
            resilience,
            stream,
            replay,
            privacy,
            self.slow_query_threshold_nanos,
            slow.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(1023), 0);
        assert_eq!(bucket_index(1024), 1);
        assert_eq!(bucket_index(2047), 1);
        assert_eq!(bucket_index(2048), 2);
        assert_eq!(bucket_index(1 << 24), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Every bounded bucket's lower edge maps to its own index.
        for (i, &b) in BUCKET_BOUNDS_NANOS.iter().enumerate() {
            assert_eq!(bucket_index(b - 1), i, "below bound {b}");
        }
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = LatencyHistogram::new();
        h.record(500); // bucket 0
        h.record(1500); // bucket 1
        h.record(3_000_000); // bucket 12 (2^21..2^22)
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum_nanos, 3_002_000);
        assert_eq!(s.max_nanos, 3_000_000);
        assert_eq!(s.mean_nanos(), 1_000_666);
        assert_eq!(s.buckets.iter().sum::<u64>(), 3);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
    }

    #[test]
    fn slow_log_threshold_and_ring() {
        let m = MetricsRegistry::new();
        m.set_slow_threshold_nanos(1000);
        // Below threshold: recorded in the histogram, not in the log.
        m.record_query(
            QueryKind::Deep,
            ViewClass::Admin,
            RunId(1),
            ViewId(1),
            "UAdmin",
            Some(3),
            999,
        );
        assert!(m.slow_queries().is_empty());
        // At/above threshold: captured with context.
        m.record_query(
            QueryKind::Deep,
            ViewClass::Custom,
            RunId(1),
            ViewId(2),
            "UV(M2)",
            Some(5),
            1000,
        );
        let slow = m.slow_queries();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].view_name, "UV(M2)");
        assert_eq!(slow[0].data, Some(5));
        assert_eq!(slow[0].seq, 1);

        // The ring keeps only the newest SLOW_LOG_CAPACITY entries.
        for i in 0..(SLOW_LOG_CAPACITY as u64 + 10) {
            m.record_query(
                QueryKind::Dependents,
                ViewClass::BlackBox,
                RunId(2),
                ViewId(3),
                "UBlackBox",
                Some(i),
                5000,
            );
        }
        let slow = m.slow_queries();
        assert_eq!(slow.len(), SLOW_LOG_CAPACITY);
        // Oldest entries (including the UV(M2) one) fell off the front.
        assert!(slow.iter().all(|q| q.view_name == "UBlackBox"));
        // Sequence numbers stay monotone across the wrap.
        assert!(slow.windows(2).all(|w| w[0].seq < w[1].seq));

        m.clear_slow_log();
        assert!(m.slow_queries().is_empty());
    }

    #[test]
    fn batch_and_journal_counters() {
        let m = MetricsRegistry::new();
        m.record_batch(10);
        m.record_batch(3);
        m.record_journal_append(2000);
        m.record_checkpoint(4000);
        m.record_view_switch(1000);
        m.record_query_error();
        let snap = m.snapshot_into(
            WarehouseStats::default(),
            CacheMetrics::default(),
            CacheMetrics::default(),
            IndexMetrics::default(),
        );
        assert_eq!(snap.batch.batches, 2);
        assert_eq!(snap.batch.queries, 13);
        assert_eq!(snap.batch.max_fanout, 10);
        assert_eq!(snap.journal.appends, 1);
        assert_eq!(snap.journal.append_latency.count, 1);
        assert_eq!(snap.journal.checkpoint_latency.count, 1);
        assert_eq!(snap.view_switch.count, 1);
        assert_eq!(snap.query_errors, 1);
        assert_eq!(snap.queries.len(), 12);
    }

    #[test]
    fn admission_accounting_invariant() {
        let m = MetricsRegistry::new();
        m.record_admission(true);
        m.record_admission(true);
        m.record_admission(false);
        m.record_deadline_exceeded();
        m.record_cancelled();
        m.record_io_retry();
        m.record_breaker_trip();
        m.record_breaker_recovery();
        m.record_degraded_write_rejected();
        let snap = m.snapshot_into(
            WarehouseStats::default(),
            CacheMetrics::default(),
            CacheMetrics::default(),
            IndexMetrics::default(),
        );
        let r = snap.resilience;
        assert_eq!(r.attempts, r.admitted + r.shed);
        assert_eq!((r.admitted, r.shed), (2, 1));
        assert_eq!((r.deadline_exceeded, r.cancelled), (1, 1));
        assert_eq!(
            (r.io_retries, r.breaker_trips, r.breaker_recoveries),
            (1, 1, 1)
        );
        assert_eq!(r.degraded_writes_rejected, 1);
        assert_eq!(m.io_retries(), 1);
        assert_eq!(m.degraded_writes_rejected(), 1);
    }

    #[test]
    fn json_has_documented_keys_and_escapes() {
        let m = MetricsRegistry::new();
        m.set_slow_threshold_nanos(0);
        m.record_query(
            QueryKind::Deep,
            ViewClass::Custom,
            RunId(0),
            ViewId(4),
            "UV(\"weird\\name\")",
            None,
            77,
        );
        let snap = m.snapshot_into(
            WarehouseStats::default(),
            CacheMetrics::default(),
            CacheMetrics::default(),
            IndexMetrics::default(),
        );
        let json = snap.to_json();
        for key in [
            "\"stats\"",
            "\"specs\"",
            "\"queries\"",
            "\"query_errors\"",
            "\"view_run_cache\"",
            "\"index_cache\"",
            "\"index\"",
            "\"backend\"",
            "\"bitset_bytes\"",
            "\"label_bytes\"",
            "\"label_intervals\"",
            "\"label_count_hist\"",
            "\"label_cache\"",
            "\"race_lost_builds\"",
            "\"evictions\"",
            "\"batch\"",
            "\"max_fanout\"",
            "\"journal\"",
            "\"append_latency\"",
            "\"checkpoint_latency\"",
            "\"view_switch\"",
            "\"resilience\"",
            "\"shed\"",
            "\"io_retries\"",
            "\"breaker_trips\"",
            "\"quarantines\"",
            "\"repairs\"",
            "\"repair_nanos\"",
            "\"unavailable_rejected\"",
            "\"degraded\"",
            "\"stream\"",
            "\"streams_started\"",
            "\"events_rejected\"",
            "\"steps_committed\"",
            "\"streams_sealed\"",
            "\"label_appends\"",
            "\"label_rebuilds\"",
            "\"replay\"",
            "\"mismatches\"",
            "\"slow_query_threshold_nanos\"",
            "\"slow_queries\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // The weird view name is escaped, and the absent data id is null.
        assert!(json.contains("UV(\\\"weird\\\\name\\\")"), "{json}");
        assert!(json.contains("\"data\":null"), "{json}");
    }
}
