//! Materialized view-run cache.
//!
//! The ZOOM prototype's winning query strategy computes base provenance
//! once and keeps it in a temporary table so that *switching user views on
//! the same workflow run* does not recompute it (Section V-B: ≈13 ms per
//! switch vs. up to seconds for the first query). The embedded analog is a
//! cache of materialized [`ViewRun`]s keyed by `(run, view)`: the first
//! query against a pair pays the composite-execution construction; every
//! later query — and every view *switch* back to an already-seen view — is
//! a cheap graph traversal.

use crate::fxhash::FxHashMap;
use crate::schema::{RunId, ViewId};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use zoom_model::ViewRun;

/// A concurrent `(run, view) → ViewRun` cache.
///
/// Hit/miss counters are lock-free atomics so that the batch query path —
/// many threads hitting the cache at once — never serializes on counter
/// bookkeeping.
#[derive(Debug, Default)]
pub struct ViewRunCache {
    map: RwLock<FxHashMap<(RunId, ViewId), Arc<ViewRun>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ViewRunCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached view-run, or materializes it with `build` and
    /// caches the result.
    pub fn get_or_build(
        &self,
        key: (RunId, ViewId),
        build: impl FnOnce() -> ViewRun,
    ) -> Arc<ViewRun> {
        if let Some(hit) = self.map.read().get(&key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        // Build outside the lock; a racing builder costs duplicate work but
        // never blocks readers for the duration of materialization.
        let vr = Arc::new(build());
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map.write();
        map.entry(key).or_insert_with(|| vr.clone()).clone()
    }

    /// Current number of cached view-runs.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// `(hits, misses)` counters.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Drops every cached entry (e.g. after bulk loads, or for benchmarks
    /// that must measure cold queries).
    pub fn clear(&self) {
        self.map.write().clear();
    }

    /// Drops the entries for one run.
    pub fn invalidate_run(&self, run: RunId) {
        self.map.write().retain(|&(r, _), _| r != run);
    }

    /// Drops the entries for one view.
    pub fn invalidate_view(&self, view: ViewId) {
        self.map.write().retain(|&(_, v), _| v != view);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoom_model::{RunBuilder, SpecBuilder, UserView};

    fn a_view_run() -> ViewRun {
        let mut b = SpecBuilder::new("c");
        b.analysis("A");
        b.from_input("A").to_output("A");
        let s = b.build().unwrap();
        let mut rb = RunBuilder::new(&s);
        let s1 = rb.step(s.module("A").unwrap());
        rb.input_edge(s1, [1]).output_edge(s1, [2]);
        let r = rb.build().unwrap();
        ViewRun::new(&r, &UserView::admin(&s))
    }

    #[test]
    fn builds_once_then_hits() {
        let cache = ViewRunCache::new();
        let key = (RunId(1), ViewId(1));
        let mut builds = 0;
        for _ in 0..3 {
            let vr = cache.get_or_build(key, || {
                builds += 1;
                a_view_run()
            });
            assert_eq!(vr.execs().len(), 1);
        }
        assert_eq!(builds, 1);
        assert_eq!(cache.len(), 1);
        let (hits, misses) = cache.counters();
        assert_eq!((hits, misses), (2, 1));
    }

    #[test]
    fn invalidation() {
        let cache = ViewRunCache::new();
        for r in 1..=2 {
            for v in 1..=2 {
                cache.get_or_build((RunId(r), ViewId(v)), a_view_run);
            }
        }
        assert_eq!(cache.len(), 4);
        cache.invalidate_run(RunId(1));
        assert_eq!(cache.len(), 2);
        cache.invalidate_view(ViewId(2));
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }
}
