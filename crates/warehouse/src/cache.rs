//! Materialized view-run cache.
//!
//! The ZOOM prototype's winning query strategy computes base provenance
//! once and keeps it in a temporary table so that *switching user views on
//! the same workflow run* does not recompute it (Section V-B: ≈13 ms per
//! switch vs. up to seconds for the first query). The embedded analog is a
//! cache of materialized [`ViewRun`]s keyed by `(run, view)`: the first
//! query against a pair pays the composite-execution construction; every
//! later query — and every view *switch* back to an already-seen view — is
//! a cheap graph traversal.
//!
//! The cache is bounded: long sessions touching many `(run, view)` pairs
//! evict least-recently-used entries — whole runs first, since a run the
//! user has navigated away from is unlikely to be revisited view-by-view —
//! instead of growing without limit.

use crate::fxhash::FxHashMap;
use crate::metrics::CacheMetrics;
use crate::schema::{RunId, ViewId};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use zoom_model::ViewRun;

/// Default entry cap (`(run, view)` pairs) before eviction kicks in.
pub const DEFAULT_VIEW_RUN_CAPACITY: usize = 1024;

#[derive(Debug)]
struct CacheEntry {
    vr: Arc<ViewRun>,
    /// Logical timestamp of the last hit (a global tick, not wall clock),
    /// updated under the read lock so hits never serialize.
    last_used: AtomicU64,
}

/// A concurrent, bounded `(run, view) → ViewRun` cache.
///
/// Counters are lock-free atomics so that the batch query path — many
/// threads hitting the cache at once — never serializes on bookkeeping.
///
/// **Counter accuracy.** `hits + misses` equals the number of
/// `get_or_build` calls, even under races: a thread that builds an entry
/// but loses the insert race returns the winner's entry and is counted as
/// a *hit* plus one `race_lost_builds`; `misses` counts exactly the
/// entries actually inserted.
#[derive(Debug)]
pub struct ViewRunCache {
    map: RwLock<FxHashMap<(RunId, ViewId), CacheEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    race_lost_builds: AtomicU64,
    evictions: AtomicU64,
    build_nanos: AtomicU64,
    tick: AtomicU64,
    capacity: AtomicUsize,
}

impl Default for ViewRunCache {
    fn default() -> Self {
        ViewRunCache {
            map: RwLock::new(FxHashMap::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            race_lost_builds: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            build_nanos: AtomicU64::new(0),
            tick: AtomicU64::new(0),
            capacity: AtomicUsize::new(DEFAULT_VIEW_RUN_CAPACITY),
        }
    }
}

impl ViewRunCache {
    /// An empty cache with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache capped at `capacity` entries (0 = unbounded).
    pub fn with_capacity(capacity: usize) -> Self {
        let c = Self::default();
        c.capacity.store(capacity, Ordering::Relaxed);
        c
    }

    /// Sets the entry cap (0 = unbounded). Takes effect on the next
    /// insert; existing entries are not evicted eagerly.
    pub fn set_capacity(&self, capacity: usize) {
        self.capacity.store(capacity, Ordering::Relaxed);
    }

    /// The current entry cap (0 = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    #[inline]
    fn touch(&self, entry: &CacheEntry) {
        let t = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        entry.last_used.store(t, Ordering::Relaxed);
    }

    /// Returns the cached view-run, or materializes it with `build` and
    /// caches the result.
    pub fn get_or_build(
        &self,
        key: (RunId, ViewId),
        build: impl FnOnce() -> ViewRun,
    ) -> Arc<ViewRun> {
        if let Some(entry) = self.map.read().get(&key) {
            self.touch(entry);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return entry.vr.clone();
        }
        // Build outside the lock; a racing builder costs duplicate work but
        // never blocks readers for the duration of materialization.
        let start = Instant::now();
        let vr = Arc::new(build());
        let nanos = start.elapsed().as_nanos() as u64;
        let mut map = self.map.write();
        if let Some(existing) = map.get(&key) {
            // Lost the insert race: the query is still answered from the
            // cache, so count it as a hit — not a second miss — keeping
            // hits + misses == queries.
            self.touch(existing);
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.race_lost_builds.fetch_add(1, Ordering::Relaxed);
            return existing.vr.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.build_nanos.fetch_add(nanos, Ordering::Relaxed);
        let cap = self.capacity.load(Ordering::Relaxed);
        if cap > 0 && map.len() >= cap {
            self.evict_locked(&mut map, key.0);
        }
        let entry = CacheEntry {
            vr: vr.clone(),
            last_used: AtomicU64::new(0),
        };
        self.touch(&entry);
        map.insert(key, entry);
        vr
    }

    /// Evicts the least-recently-used *run* (the run whose most recent hit
    /// is oldest), preferring a run other than `incoming` so an active
    /// run's view set is not cannibalized; when `incoming` is the only run
    /// cached, evicts its single oldest entry instead.
    fn evict_locked(&self, map: &mut FxHashMap<(RunId, ViewId), CacheEntry>, incoming: RunId) {
        let mut victim: Option<(RunId, u64)> = None;
        let mut last_used_of_run: FxHashMap<RunId, u64> = FxHashMap::default();
        for (&(run, _), entry) in map.iter() {
            let t = entry.last_used.load(Ordering::Relaxed);
            let slot = last_used_of_run.entry(run).or_insert(0);
            *slot = (*slot).max(t);
        }
        for (&run, &t) in &last_used_of_run {
            if run == incoming && last_used_of_run.len() > 1 {
                continue;
            }
            if victim.is_none_or(|(_, best)| t < best) {
                victim = Some((run, t));
            }
        }
        let Some((victim_run, _)) = victim else {
            return;
        };
        if victim_run == incoming {
            // Only the incoming run is cached: shed its single oldest view.
            if let Some(&oldest) = map
                .iter()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| k)
            {
                map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            let before = map.len();
            map.retain(|&(r, _), _| r != victim_run);
            self.evictions
                .fetch_add((before - map.len()) as u64, Ordering::Relaxed);
        }
    }

    /// Current number of cached view-runs.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// `(hits, misses)` counters.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// A full counter snapshot for the metrics layer.
    pub fn metrics(&self) -> CacheMetrics {
        CacheMetrics {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            race_lost_builds: self.race_lost_builds.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len() as u64,
            build_nanos: self.build_nanos.load(Ordering::Relaxed),
        }
    }

    /// Drops every cached entry (e.g. after bulk loads, or for benchmarks
    /// that must measure cold queries).
    pub fn clear(&self) {
        self.map.write().clear();
    }

    /// Drops the entries for one run.
    pub fn invalidate_run(&self, run: RunId) {
        self.map.write().retain(|&(r, _), _| r != run);
    }

    /// Drops the entries for one view.
    pub fn invalidate_view(&self, view: ViewId) {
        self.map.write().retain(|&(_, v), _| v != view);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;
    use zoom_model::{RunBuilder, SpecBuilder, UserView};

    fn a_view_run() -> ViewRun {
        let mut b = SpecBuilder::new("c");
        b.analysis("A");
        b.from_input("A").to_output("A");
        let s = b.build().unwrap();
        let mut rb = RunBuilder::new(&s);
        let s1 = rb.step(s.module("A").unwrap());
        rb.input_edge(s1, [1]).output_edge(s1, [2]);
        let r = rb.build().unwrap();
        ViewRun::new(&r, &UserView::admin(&s))
    }

    #[test]
    fn builds_once_then_hits() {
        let cache = ViewRunCache::new();
        let key = (RunId(1), ViewId(1));
        let mut builds = 0;
        for _ in 0..3 {
            let vr = cache.get_or_build(key, || {
                builds += 1;
                a_view_run()
            });
            assert_eq!(vr.execs().len(), 1);
        }
        assert_eq!(builds, 1);
        assert_eq!(cache.len(), 1);
        let (hits, misses) = cache.counters();
        assert_eq!((hits, misses), (2, 1));
        let m = cache.metrics();
        assert_eq!(m.race_lost_builds, 0);
        assert_eq!(m.entries, 1);
    }

    #[test]
    fn invalidation() {
        let cache = ViewRunCache::new();
        for r in 1..=2 {
            for v in 1..=2 {
                cache.get_or_build((RunId(r), ViewId(v)), a_view_run);
            }
        }
        assert_eq!(cache.len(), 4);
        cache.invalidate_run(RunId(1));
        assert_eq!(cache.len(), 2);
        cache.invalidate_view(ViewId(2));
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    /// Satellite 1: N threads hammer one key; exactly one build may win the
    /// insert, every other call is a hit (race-lost or read-path), so
    /// hits + misses == total queries and misses == 1.
    #[test]
    fn concurrent_one_key_counters_balance() {
        const THREADS: usize = 8;
        const ROUNDS: usize = 50;
        let cache = ViewRunCache::new();
        let key = (RunId(7), ViewId(3));
        let barrier = Barrier::new(THREADS);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    // Align the first round so several threads miss the
                    // read check together and race the insert.
                    barrier.wait();
                    for _ in 0..ROUNDS {
                        let vr = cache.get_or_build(key, a_view_run);
                        assert_eq!(vr.execs().len(), 1);
                    }
                });
            }
        });
        let queries = (THREADS * ROUNDS) as u64;
        let m = cache.metrics();
        assert_eq!(
            m.hits + m.misses,
            queries,
            "hits {} + misses {} must equal queries {}",
            m.hits,
            m.misses,
            queries
        );
        assert_eq!(m.misses, 1, "exactly one insert wins for a single key");
        assert_eq!(cache.len(), 1);
    }

    /// Forces the insert race deterministically: both threads pass the
    /// read-path check before either builds, so one build loses.
    #[test]
    fn race_lost_build_counts_as_hit() {
        let cache = ViewRunCache::new();
        let key = (RunId(1), ViewId(1));
        let barrier = Barrier::new(2);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    cache.get_or_build(key, || {
                        barrier.wait();
                        a_view_run()
                    });
                });
            }
        });
        let m = cache.metrics();
        assert_eq!(m.misses, 1);
        assert_eq!(m.hits, 1);
        assert_eq!(m.race_lost_builds, 1);
        assert!(m.build_nanos > 0);
    }

    /// Satellite 4: the cap evicts whole runs, least-recently-used first,
    /// and never the run currently being inserted into (unless it is the
    /// only one cached).
    #[test]
    fn bounded_evicts_lru_run_first() {
        let cache = ViewRunCache::with_capacity(4);
        // Run 1 holds two views, run 2 holds two views. Cache is full.
        for r in 1..=2 {
            for v in 1..=2 {
                cache.get_or_build((RunId(r), ViewId(v)), a_view_run);
            }
        }
        assert_eq!(cache.len(), 4);
        // Touch run 1 so run 2 becomes the LRU run.
        cache.get_or_build((RunId(1), ViewId(1)), a_view_run);
        // Inserting a third run evicts *all* of run 2.
        cache.get_or_build((RunId(3), ViewId(1)), a_view_run);
        let m = cache.metrics();
        assert_eq!(m.evictions, 2);
        assert_eq!(cache.len(), 3);
        let map = cache.map.read();
        assert!(map.keys().all(|&(r, _)| r != RunId(2)));
        assert!(map.contains_key(&(RunId(1), ViewId(1))));
        assert!(map.contains_key(&(RunId(3), ViewId(1))));
    }

    /// When the incoming run is the only run cached, eviction sheds its
    /// single oldest view instead of wiping the whole run.
    #[test]
    fn bounded_single_run_evicts_oldest_view() {
        let cache = ViewRunCache::with_capacity(2);
        cache.get_or_build((RunId(1), ViewId(1)), a_view_run);
        cache.get_or_build((RunId(1), ViewId(2)), a_view_run);
        // View 1 is older; inserting view 3 evicts it only.
        cache.get_or_build((RunId(1), ViewId(3)), a_view_run);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.metrics().evictions, 1);
        let map = cache.map.read();
        assert!(!map.contains_key(&(RunId(1), ViewId(1))));
        assert!(map.contains_key(&(RunId(1), ViewId(2))));
        assert!(map.contains_key(&(RunId(1), ViewId(3))));
    }

    #[test]
    fn capacity_zero_is_unbounded() {
        let cache = ViewRunCache::with_capacity(0);
        for v in 1..=100 {
            cache.get_or_build((RunId(1), ViewId(v)), a_view_run);
        }
        assert_eq!(cache.len(), 100);
        assert_eq!(cache.metrics().evictions, 0);
        cache.set_capacity(10);
        assert_eq!(cache.capacity(), 10);
        // Next insert enforces the (new) cap: run 1 is the LRU run and not
        // the incoming run, so all 100 of its entries are shed at once.
        cache.get_or_build((RunId(2), ViewId(1)), a_view_run);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.metrics().evictions, 100);
    }
}
