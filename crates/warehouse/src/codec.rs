//! A compact binary serde format for warehouse snapshots.
//!
//! The workspace's crate budget does not include a serde binary format, so
//! this module implements one: little-endian fixed-width integers,
//! `u64`-length-prefixed strings/sequences/maps, and `u32` variant indices
//! for enums. The format is *not* self-describing — `deserialize_any` is
//! unsupported — which is fine for the `#[derive]`d model types the
//! warehouse persists.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::de::{self, DeserializeSeed, IntoDeserializer, Visitor};
use serde::{ser, Deserialize, Serialize};
use std::fmt;

/// Errors from encoding or decoding.
#[derive(Debug)]
pub enum CodecError {
    /// A custom message from serde.
    Message(String),
    /// Ran out of input bytes.
    Eof,
    /// A length prefix or tag was invalid.
    Invalid(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Message(m) => write!(f, "{m}"),
            CodecError::Eof => write!(f, "unexpected end of input"),
            CodecError::Invalid(w) => write!(f, "invalid encoding: {w}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl ser::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError::Message(msg.to_string())
    }
}

impl de::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError::Message(msg.to_string())
    }
}

/// Serializes `value` to bytes.
pub fn to_bytes<T: Serialize>(value: &T) -> Result<Bytes, CodecError> {
    let mut ser = Encoder {
        out: BytesMut::with_capacity(256),
    };
    value.serialize(&mut ser)?;
    Ok(ser.out.freeze())
}

/// Deserializes a `T` from bytes (trailing bytes are an error).
pub fn from_bytes<'a, T: Deserialize<'a>>(bytes: &'a [u8]) -> Result<T, CodecError> {
    let mut de = Decoder { input: bytes };
    let v = T::deserialize(&mut de)?;
    if !de.input.is_empty() {
        return Err(CodecError::Invalid("trailing bytes"));
    }
    Ok(v)
}

struct Encoder {
    out: BytesMut,
}

impl Encoder {
    fn put_len(&mut self, len: usize) {
        self.out.put_u64_le(len as u64);
    }
}

impl ser::Serializer for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<(), CodecError> {
        self.out.put_u8(u8::from(v));
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), CodecError> {
        self.out.put_i8(v);
        Ok(())
    }
    fn serialize_i16(self, v: i16) -> Result<(), CodecError> {
        self.out.put_i16_le(v);
        Ok(())
    }
    fn serialize_i32(self, v: i32) -> Result<(), CodecError> {
        self.out.put_i32_le(v);
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<(), CodecError> {
        self.out.put_i64_le(v);
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), CodecError> {
        self.out.put_u8(v);
        Ok(())
    }
    fn serialize_u16(self, v: u16) -> Result<(), CodecError> {
        self.out.put_u16_le(v);
        Ok(())
    }
    fn serialize_u32(self, v: u32) -> Result<(), CodecError> {
        self.out.put_u32_le(v);
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<(), CodecError> {
        self.out.put_u64_le(v);
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), CodecError> {
        self.out.put_f32_le(v);
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), CodecError> {
        self.out.put_f64_le(v);
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), CodecError> {
        self.out.put_u32_le(v as u32);
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result<(), CodecError> {
        self.put_len(v.len());
        self.out.put_slice(v.as_bytes());
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), CodecError> {
        self.put_len(v.len());
        self.out.put_slice(v);
        Ok(())
    }
    fn serialize_none(self) -> Result<(), CodecError> {
        self.out.put_u8(0);
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), CodecError> {
        self.out.put_u8(1);
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), CodecError> {
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), CodecError> {
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), CodecError> {
        self.out.put_u32_le(variant_index);
        Ok(())
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        self.out.put_u32_le(variant_index);
        value.serialize(self)
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<Self, CodecError> {
        let len = len.ok_or(CodecError::Invalid("sequence of unknown length"))?;
        self.put_len(len);
        Ok(self)
    }
    fn serialize_tuple(self, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }
    fn serialize_tuple_struct(self, _name: &'static str, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, CodecError> {
        self.out.put_u32_le(variant_index);
        Ok(self)
    }
    fn serialize_map(self, len: Option<usize>) -> Result<Self, CodecError> {
        let len = len.ok_or(CodecError::Invalid("map of unknown length"))?;
        self.put_len(len);
        Ok(self)
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, CodecError> {
        self.out.put_u32_le(variant_index);
        Ok(self)
    }
}

macro_rules! impl_compound_ser {
    ($trait:path, $method:ident $(, $key_method:ident)?) => {
        impl $trait for &mut Encoder {
            type Ok = ();
            type Error = CodecError;
            $(
                fn $key_method<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), CodecError> {
                    key.serialize(&mut **self)
                }
            )?
            fn $method<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
                value.serialize(&mut **self)
            }
            fn end(self) -> Result<(), CodecError> {
                Ok(())
            }
        }
    };
}

impl_compound_ser!(ser::SerializeSeq, serialize_element);
impl_compound_ser!(ser::SerializeTuple, serialize_element);
impl_compound_ser!(ser::SerializeTupleStruct, serialize_field);
impl_compound_ser!(ser::SerializeTupleVariant, serialize_field);
impl_compound_ser!(ser::SerializeMap, serialize_value, serialize_key);

impl ser::SerializeStruct for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

struct Decoder<'de> {
    input: &'de [u8],
}

impl<'de> Decoder<'de> {
    fn take(&mut self, n: usize) -> Result<&'de [u8], CodecError> {
        if self.input.len() < n {
            return Err(CodecError::Eof);
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }

    fn get_len(&mut self) -> Result<usize, CodecError> {
        let mut b = self.take(8)?;
        let len = b.get_u64_le();
        usize::try_from(len).map_err(|_| CodecError::Invalid("length overflows usize"))
    }
}

macro_rules! de_num {
    ($fn_name:ident, $visit:ident, $n:expr, $get:ident) => {
        fn $fn_name<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
            let mut b = self.take($n)?;
            visitor.$visit(b.$get())
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut Decoder<'de> {
    type Error = CodecError;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError::Invalid("format is not self-describing"))
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        match self.take(1)?[0] {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            _ => Err(CodecError::Invalid("bool tag")),
        }
    }

    de_num!(deserialize_i8, visit_i8, 1, get_i8);
    de_num!(deserialize_i16, visit_i16, 2, get_i16_le);
    de_num!(deserialize_i32, visit_i32, 4, get_i32_le);
    de_num!(deserialize_i64, visit_i64, 8, get_i64_le);
    de_num!(deserialize_u8, visit_u8, 1, get_u8);
    de_num!(deserialize_u16, visit_u16, 2, get_u16_le);
    de_num!(deserialize_u32, visit_u32, 4, get_u32_le);
    de_num!(deserialize_u64, visit_u64, 8, get_u64_le);
    de_num!(deserialize_f32, visit_f32, 4, get_f32_le);
    de_num!(deserialize_f64, visit_f64, 8, get_f64_le);

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let mut b = self.take(4)?;
        let c = char::from_u32(b.get_u32_le()).ok_or(CodecError::Invalid("char"))?;
        visitor.visit_char(c)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.get_len()?;
        let bytes = self.take(len)?;
        let s = std::str::from_utf8(bytes).map_err(|_| CodecError::Invalid("utf-8"))?;
        visitor.visit_borrowed_str(s)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.get_len()?;
        visitor.visit_borrowed_bytes(self.take(len)?)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        match self.take(1)?[0] {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            _ => Err(CodecError::Invalid("option tag")),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.get_len()?;
        visitor.visit_seq(Counted {
            de: self,
            left: len,
        })
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_seq(Counted {
            de: self,
            left: len,
        })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.get_len()?;
        visitor.visit_map(Counted {
            de: self,
            left: len,
        })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_enum(EnumAccess { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError::Invalid("identifiers are not encoded"))
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError::Invalid("cannot skip fields in this format"))
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct Counted<'a, 'de> {
    de: &'a mut Decoder<'de>,
    left: usize,
}

impl<'de> de::SeqAccess<'de> for Counted<'_, 'de> {
    type Error = CodecError;

    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, CodecError> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.left)
    }
}

impl<'de> de::MapAccess<'de> for Counted<'_, 'de> {
    type Error = CodecError;

    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, CodecError> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, CodecError> {
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.left)
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut Decoder<'de>,
}

impl<'a, 'de> de::EnumAccess<'de> for EnumAccess<'a, 'de> {
    type Error = CodecError;
    type Variant = VariantAccessImpl<'a, 'de>;

    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), CodecError> {
        let mut b = self.de.take(4)?;
        let idx = b.get_u32_le();
        let val = seed.deserialize(idx.into_deserializer())?;
        Ok((val, VariantAccessImpl { de: self.de }))
    }
}

struct VariantAccessImpl<'a, 'de> {
    de: &'a mut Decoder<'de>,
}

impl<'de> de::VariantAccess<'de> for VariantAccessImpl<'_, 'de> {
    type Error = CodecError;

    fn unit_variant(self) -> Result<(), CodecError> {
        Ok(())
    }

    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, CodecError> {
        seed.deserialize(self.de)
    }

    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        de::Deserializer::deserialize_tuple(self.de, len, visitor)
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        de::Deserializer::deserialize_tuple(self.de, fields.len(), visitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    enum Kind {
        Empty,
        One(u32),
        Pair(u8, String),
        Fields { a: i64, b: Option<bool> },
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Everything {
        flag: bool,
        small: i8,
        big: u64,
        real: f64,
        ch: char,
        text: String,
        list: Vec<u32>,
        map: BTreeMap<String, i32>,
        opt_some: Option<u16>,
        opt_none: Option<u16>,
        kinds: Vec<Kind>,
        tup: (u8, u8, String),
    }

    fn sample() -> Everything {
        Everything {
            flag: true,
            small: -5,
            big: u64::MAX,
            real: 3.25,
            ch: 'λ',
            text: "hello — workflow".to_string(),
            list: vec![1, 2, 3],
            map: [("a".to_string(), -1), ("b".to_string(), 2)].into(),
            opt_some: Some(99),
            opt_none: None,
            kinds: vec![
                Kind::Empty,
                Kind::One(7),
                Kind::Pair(1, "x".into()),
                Kind::Fields {
                    a: -9,
                    b: Some(false),
                },
            ],
            tup: (1, 2, "three".into()),
        }
    }

    #[test]
    fn roundtrip_everything() {
        let v = sample();
        let bytes = to_bytes(&v).unwrap();
        let back: Everything = from_bytes(&bytes).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let bytes = to_bytes(&42u32).unwrap();
        let mut extended = bytes.to_vec();
        extended.push(0);
        assert!(matches!(
            from_bytes::<u32>(&extended),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn truncated_input_rejected() {
        let bytes = to_bytes(&sample()).unwrap();
        let cut = &bytes[..bytes.len() / 2];
        assert!(matches!(
            from_bytes::<Everything>(cut),
            Err(CodecError::Eof) | Err(CodecError::Invalid(_)) | Err(CodecError::Message(_))
        ));
    }

    #[test]
    fn bad_bool_tag_rejected() {
        assert!(matches!(
            from_bytes::<bool>(&[7]),
            Err(CodecError::Invalid("bool tag"))
        ));
    }

    #[test]
    fn model_types_roundtrip() {
        use zoom_model::{SpecBuilder, UserView};
        let mut b = SpecBuilder::new("codec-spec");
        b.analysis("A");
        b.formatting("B");
        b.from_input("A").edge("A", "B").to_output("B");
        let spec = b.build().unwrap();
        let bytes = to_bytes(&spec).unwrap();
        let back: zoom_model::WorkflowSpec = from_bytes(&bytes).unwrap();
        assert_eq!(back.name(), "codec-spec");
        assert_eq!(back.module_count(), 2);

        let view = UserView::admin(&spec);
        let vb = to_bytes(&view).unwrap();
        let vback: UserView = from_bytes(&vb).unwrap();
        assert_eq!(vback.size(), 2);
        assert_eq!(vback.name(), "UAdmin");
    }
}
