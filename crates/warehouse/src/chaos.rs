//! Deterministic chaos scheduling for the fault-injecting storage layer.
//!
//! A [`FaultSchedule`] is a sorted list of *fault events*, each saying
//! "when the driver's operation counter reaches `at_op`, do `action` to
//! shard `shard`'s storage". Schedules are either written out explicitly
//! (the targeted tests) or *generated* from a seed — same seed, same
//! schedule, bit for bit — so a chaos run that finds a bug is replayable
//! from nothing but its seed.
//!
//! The [`ChaosDriver`] binds a schedule to live [`FaultFs`] handles (the
//! same `Arc`s a daemon's shards were opened over) and is ticked once per
//! workload operation by whatever loop is replaying traffic: faults
//! arm and heal at deterministic points in the *workload*, not at
//! wall-clock times, which is what makes the whole run reproducible
//! under arbitrary scheduler jitter.

use crate::io::FaultFs;
use std::sync::Arc;

/// What a fault event does to its shard's storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Arm `count` write failures (`transient` picks retryable
    /// `Interrupted` errors over permanent ones). Read-side operations
    /// are never failed: the fault model is a disk that stops accepting
    /// writes, not one that loses committed state.
    Arm {
        /// Write operations to fail before the storage heals on its own.
        count: u64,
        /// Inject retryable errors instead of permanent ones.
        transient: bool,
    },
    /// Clear every injected fault on the shard's storage.
    Heal,
}

/// One scheduled fault: at operation `at_op`, apply `action` to `shard`.
#[derive(Clone, Copy, Debug)]
pub struct FaultEvent {
    /// The driver-op count at which the event fires.
    pub at_op: u64,
    /// The shard whose storage the action applies to.
    pub shard: usize,
    /// What happens.
    pub action: FaultAction,
}

/// SplitMix64: tiny, seedable, and good enough to scatter fault windows.
/// Self-contained so schedules are reproducible independent of any RNG
/// crate's version or platform behavior.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator at `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A deterministic, sorted fault schedule.
#[derive(Clone, Debug, Default)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// A schedule from explicit events (sorted by `at_op`, stable for
    /// ties so same-op events fire in the order given).
    pub fn from_events(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at_op);
        FaultSchedule { events }
    }

    /// Generates `faults` fault windows over a workload of `total_ops`
    /// operations against `shards` shards. Each window picks a shard, an
    /// onset, and a width, arms a sticky write-failure burst at the
    /// onset, and heals at the window's end. Identical arguments produce
    /// the identical schedule.
    pub fn generate(seed: u64, shards: usize, total_ops: u64, faults: usize) -> Self {
        assert!(shards > 0, "a schedule needs at least one shard");
        let mut rng = SplitMix64::new(seed);
        let mut events = Vec::with_capacity(faults * 2);
        let span = total_ops.max(2);
        for _ in 0..faults {
            let shard = rng.below(shards as u64) as usize;
            let at_op = rng.below(span - 1);
            let width = 1 + rng.below((span / 4).max(1));
            let count = 1 + rng.below(16);
            events.push(FaultEvent {
                at_op,
                shard,
                action: FaultAction::Arm {
                    count,
                    transient: false,
                },
            });
            events.push(FaultEvent {
                at_op: (at_op + width).min(span - 1),
                shard,
                action: FaultAction::Heal,
            });
        }
        Self::from_events(events)
    }

    /// The events, sorted by firing op.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Every shard the schedule ever touches, ascending and deduplicated.
    pub fn shards_touched(&self) -> Vec<usize> {
        let mut shards: Vec<usize> = self.events.iter().map(|e| e.shard).collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    }
}

/// Binds a [`FaultSchedule`] to live per-shard [`FaultFs`] handles and
/// fires events as the workload's operation counter advances.
pub struct ChaosDriver {
    schedule: FaultSchedule,
    ios: Vec<Arc<FaultFs>>,
    cursor: usize,
    op: u64,
}

impl ChaosDriver {
    /// A driver over `ios` (indexed by the schedule's shard numbers;
    /// events addressing shards beyond the slice are ignored, so one
    /// schedule can drive a partially fault-wrapped deployment).
    pub fn new(schedule: FaultSchedule, ios: Vec<Arc<FaultFs>>) -> Self {
        ChaosDriver {
            schedule,
            ios,
            cursor: 0,
            op: 0,
        }
    }

    /// Advances the operation counter by one and fires every event due at
    /// the *previous* count (so an event with `at_op == 0` fires on the
    /// first tick, before the workload's first operation completes its
    /// follow-up). Returns the events fired, in order.
    pub fn tick(&mut self) -> Vec<FaultEvent> {
        let mut fired = Vec::new();
        while let Some(ev) = self.schedule.events.get(self.cursor) {
            if ev.at_op > self.op {
                break;
            }
            self.apply(ev);
            fired.push(*ev);
            self.cursor += 1;
        }
        self.op += 1;
        fired
    }

    fn apply(&self, ev: &FaultEvent) {
        let Some(io) = self.ios.get(ev.shard) else {
            return;
        };
        match ev.action {
            FaultAction::Arm { count, transient } => io.arm_failures(count, transient),
            FaultAction::Heal => io.heal(),
        }
    }

    /// Operations ticked so far.
    pub fn op(&self) -> u64 {
        self.op
    }

    /// Whether every scheduled event has fired.
    pub fn finished(&self) -> bool {
        self.cursor >= self.schedule.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultSchedule::generate(42, 4, 1000, 8);
        let b = FaultSchedule::generate(42, 4, 1000, 8);
        assert_eq!(a.events().len(), b.events().len());
        for (x, y) in a.events().iter().zip(b.events()) {
            assert_eq!(x.at_op, y.at_op);
            assert_eq!(x.shard, y.shard);
            assert_eq!(x.action, y.action);
        }
        let c = FaultSchedule::generate(43, 4, 1000, 8);
        let differs = a
            .events()
            .iter()
            .zip(c.events())
            .any(|(x, y)| x.at_op != y.at_op || x.shard != y.shard || x.action != y.action);
        assert!(differs, "different seeds should scatter differently");
    }

    #[test]
    fn schedule_is_sorted_and_bounded() {
        let s = FaultSchedule::generate(7, 3, 500, 10);
        assert_eq!(s.events().len(), 20);
        let mut prev = 0;
        for ev in s.events() {
            assert!(ev.at_op >= prev, "events must be sorted");
            assert!(ev.at_op < 500);
            assert!(ev.shard < 3);
            prev = ev.at_op;
        }
        for sh in s.shards_touched() {
            assert!(sh < 3);
        }
    }

    #[test]
    fn driver_fires_events_at_their_ops() {
        let schedule = FaultSchedule::from_events(vec![
            FaultEvent {
                at_op: 0,
                shard: 0,
                action: FaultAction::Arm {
                    count: 3,
                    transient: false,
                },
            },
            FaultEvent {
                at_op: 2,
                shard: 0,
                action: FaultAction::Heal,
            },
        ]);
        let io = Arc::new(FaultFs::counting());
        let mut driver = ChaosDriver::new(schedule, vec![io.clone()]);

        let fired = driver.tick();
        assert_eq!(fired.len(), 1, "op-0 event fires on the first tick");
        let path = std::env::temp_dir().join(format!("zoom-chaos-mod-{}", std::process::id()));
        assert!(
            crate::io::StorageIo::write(&*io, &path, b"x").is_err(),
            "armed fault should fail the write"
        );

        assert!(driver.tick().is_empty(), "nothing due at op 1");
        let fired = driver.tick();
        assert_eq!(fired.len(), 1, "heal fires at op 2");
        assert!(crate::io::StorageIo::write(&*io, &path, b"x").is_ok());
        assert!(driver.finished());
        let _ = std::fs::remove_file(&path);
    }
}
