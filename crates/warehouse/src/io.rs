//! Storage abstraction for the durability layer.
//!
//! Every byte the warehouse puts on disk — snapshots ([`crate::persist`]),
//! journals ([`crate::journal`]), and manifests ([`crate::durable`]) — goes
//! through the [`StorageIo`] trait so that crash-safety can be *tested*:
//! [`RealFs`] is the production implementation, [`FaultFs`] a test double
//! that counts write-side operations and can be armed to fail (optionally
//! tearing the write mid-buffer) at any chosen operation, after which every
//! later write-side call fails too — the moral equivalent of the process
//! dying at that sync point.
//!
//! The trait is deliberately path-level rather than handle-level: each call
//! is one durability-relevant operation (one fault-injection point), and
//! the journal's append rate is fsync-bound, so reopening the file per
//! append is noise.

use parking_lot::Mutex;
use std::fmt;
use std::io::{Result, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Filesystem operations the durability layer needs, in testable form.
///
/// Write-side methods (`write`, `append`, `rename`, `sync_dir`, `set_len`,
/// `remove_file`, `create_dir_all`) are fault-injection points in
/// [`FaultFs`]; read-side methods never fail by injection.
pub trait StorageIo: Send + Sync + fmt::Debug {
    /// Reads the whole file.
    fn read(&self, path: &Path) -> Result<Vec<u8>>;
    /// Creates (or truncates) `path` with `bytes` and fsyncs the file.
    fn write(&self, path: &Path, bytes: &[u8]) -> Result<()>;
    /// Appends `bytes` to `path` and fsyncs the data.
    fn append(&self, path: &Path, bytes: &[u8]) -> Result<()>;
    /// Renames `from` to `to` (atomic on POSIX filesystems).
    fn rename(&self, from: &Path, to: &Path) -> Result<()>;
    /// Fsyncs a directory, making renames/creations inside it durable.
    fn sync_dir(&self, dir: &Path) -> Result<()>;
    /// Truncates (or extends) `path` to `len` bytes and fsyncs.
    fn set_len(&self, path: &Path, len: u64) -> Result<()>;
    /// The file's current length in bytes.
    fn len(&self, path: &Path) -> Result<u64>;
    /// Whether `path` exists.
    fn exists(&self, path: &Path) -> bool;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> Result<()>;
    /// Creates a directory and its ancestors.
    fn create_dir_all(&self, path: &Path) -> Result<()>;
    /// The file names (not paths) inside a directory.
    fn list_dir(&self, path: &Path) -> Result<Vec<String>>;
}

/// The production storage backend: plain `std::fs` with real fsyncs.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealFs;

impl StorageIo for RealFs {
    fn read(&self, path: &Path) -> Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> Result<()> {
        let mut f = std::fs::OpenOptions::new().append(true).open(path)?;
        f.write_all(bytes)?;
        f.sync_data()
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        std::fs::rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> Result<()> {
        // On POSIX a directory must itself be fsynced for renames/creates
        // inside it to survive a crash; other platforms sync metadata with
        // the file and cannot open directories.
        #[cfg(unix)]
        {
            std::fs::File::open(dir)?.sync_all()
        }
        #[cfg(not(unix))]
        {
            let _ = dir;
            Ok(())
        }
    }

    fn set_len(&self, path: &Path, len: u64) -> Result<()> {
        let f = std::fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(len)?;
        f.sync_all()
    }

    fn len(&self, path: &Path) -> Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn remove_file(&self, path: &Path) -> Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> Result<()> {
        std::fs::create_dir_all(path)
    }

    fn list_dir(&self, path: &Path) -> Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(path)? {
            names.push(entry?.file_name().to_string_lossy().into_owned());
        }
        names.sort();
        Ok(names)
    }
}

#[derive(Debug)]
struct FaultState {
    /// Write-side ops allowed before tripping; `None` never trips
    /// (counting mode).
    budget: Option<u64>,
    /// Bytes of a tripped `write`/`append` that still reach the disk
    /// (models a torn write).
    torn_bytes: usize,
    /// Total write-side ops attempted.
    ops: u64,
    /// Once tripped, every later write-side op fails (the disk is "gone",
    /// as after a crash).
    tripped: bool,
    /// Armed failure count: the next `armed` write-side ops fail, then
    /// storage heals itself (fail-N-times-then-succeed, for retry tests).
    armed: u64,
    /// Whether armed failures are transient (`ErrorKind::Interrupted`,
    /// retryable) or permanent (`ErrorKind::Other`, crash-style).
    armed_transient: bool,
    /// Injected latency added to every write-side op (tail-latency mode).
    latency: std::time::Duration,
}

/// How an armed fault should fail the op.
enum GateOutcome {
    /// A crash-style sticky fault: the op fails permanently, tearing
    /// `write`/`append` after this many bytes.
    Permanent(usize),
    /// A transient fault: the op fails with a retryable error kind and
    /// leaves no bytes behind.
    Transient,
}

/// A fault-injecting [`StorageIo`] for crash-recovery tests.
///
/// In counting mode ([`FaultFs::counting`]) it behaves like [`RealFs`] and
/// tallies write-side operations. Armed with [`FaultFs::fail_after`]`(k, t)`
/// it lets `k` write-side operations through, then fails the `k+1`-th and
/// all later ones; a failing `write`/`append` first persists `t` bytes of
/// its buffer, modelling a torn write. Sweeping `k` over the count observed
/// in a fault-free run kills the store at every sync point.
#[derive(Debug)]
pub struct FaultFs {
    inner: RealFs,
    state: Mutex<FaultState>,
}

impl FaultFs {
    /// A backend that never fails but counts write-side operations.
    pub fn counting() -> Self {
        FaultFs {
            inner: RealFs,
            state: Mutex::new(FaultState {
                budget: None,
                torn_bytes: 0,
                ops: 0,
                tripped: false,
                armed: 0,
                armed_transient: false,
                latency: std::time::Duration::ZERO,
            }),
        }
    }

    /// A backend that allows `budget` write-side operations, then fails
    /// every later one, tearing failing writes after `torn_bytes` bytes.
    pub fn fail_after(budget: u64, torn_bytes: usize) -> Self {
        let fs = FaultFs::counting();
        fs.state.lock().budget = Some(budget);
        fs.state.lock().torn_bytes = torn_bytes;
        fs
    }

    /// Arms the next `count` write-side operations to fail, after which
    /// storage heals itself. `transient` selects the error class: `true`
    /// fails with `ErrorKind::Interrupted` (retryable, nothing written),
    /// `false` with `ErrorKind::Other` (permanent, crash-style). Unlike
    /// [`FaultFs::fail_after`], the fault is not sticky — op `count + 1`
    /// succeeds — which is exactly the shape retry policies must absorb
    /// and circuit breakers must trip on.
    pub fn arm_failures(&self, count: u64, transient: bool) {
        let mut st = self.state.lock();
        st.armed = count;
        st.armed_transient = transient;
    }

    /// Clears every armed or tripped fault: storage behaves like
    /// [`RealFs`] again. Models the disk coming back after an outage.
    pub fn heal(&self) {
        let mut st = self.state.lock();
        st.budget = None;
        st.tripped = false;
        st.armed = 0;
    }

    /// Adds `latency` of sleep to every write-side operation, modelling a
    /// slow or saturated disk for deadline/tail-latency tests.
    pub fn set_write_latency(&self, latency: std::time::Duration) {
        self.state.lock().latency = latency;
    }

    /// Write-side operations attempted so far.
    pub fn ops(&self) -> u64 {
        self.state.lock().ops
    }

    /// Whether the injected fault has fired.
    pub fn tripped(&self) -> bool {
        self.state.lock().tripped
    }

    /// Charges one write-side op; on failure says how (permanently with a
    /// torn-byte allowance, or transiently).
    fn gate(&self) -> std::result::Result<(), GateOutcome> {
        let latency = {
            let mut st = self.state.lock();
            st.ops += 1;
            if st.tripped {
                return Err(GateOutcome::Permanent(0));
            }
            if st.armed > 0 {
                // Armed faults are not sticky: they do not trip the
                // backend, they just fail this op and count down.
                st.armed -= 1;
                return Err(if st.armed_transient {
                    GateOutcome::Transient
                } else {
                    GateOutcome::Permanent(st.torn_bytes)
                });
            }
            if let Some(b) = st.budget {
                if st.ops > b {
                    st.tripped = true;
                    return Err(GateOutcome::Permanent(st.torn_bytes));
                }
            }
            st.latency
        };
        if !latency.is_zero() {
            std::thread::sleep(latency);
        }
        Ok(())
    }
}

fn injected() -> std::io::Error {
    std::io::Error::other("injected storage fault")
}

fn injected_transient() -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::Interrupted,
        "injected transient storage fault",
    )
}

fn fault_error(outcome: GateOutcome) -> std::io::Error {
    match outcome {
        GateOutcome::Transient => injected_transient(),
        GateOutcome::Permanent(_) => injected(),
    }
}

impl StorageIo for FaultFs {
    fn read(&self, path: &Path) -> Result<Vec<u8>> {
        self.inner.read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> Result<()> {
        match self.gate() {
            Ok(()) => self.inner.write(path, bytes),
            Err(GateOutcome::Transient) => Err(injected_transient()),
            Err(GateOutcome::Permanent(torn)) => {
                let keep = torn.min(bytes.len());
                let _ = self.inner.write(path, &bytes[..keep]);
                Err(injected())
            }
        }
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> Result<()> {
        match self.gate() {
            Ok(()) => self.inner.append(path, bytes),
            Err(GateOutcome::Transient) => Err(injected_transient()),
            Err(GateOutcome::Permanent(torn)) => {
                let keep = torn.min(bytes.len());
                if keep > 0 {
                    let _ = self.inner.append(path, &bytes[..keep]);
                }
                Err(injected())
            }
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        self.gate().map_err(fault_error)?;
        self.inner.rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> Result<()> {
        self.gate().map_err(fault_error)?;
        self.inner.sync_dir(dir)
    }

    fn set_len(&self, path: &Path, len: u64) -> Result<()> {
        self.gate().map_err(fault_error)?;
        self.inner.set_len(path, len)
    }

    fn len(&self, path: &Path) -> Result<u64> {
        self.inner.len(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn remove_file(&self, path: &Path) -> Result<()> {
        self.gate().map_err(fault_error)?;
        self.inner.remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> Result<()> {
        self.gate().map_err(fault_error)?;
        self.inner.create_dir_all(path)
    }

    fn list_dir(&self, path: &Path) -> Result<Vec<String>> {
        self.inner.list_dir(path)
    }
}

static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A sibling temp path for atomically replacing `target`, unique across
/// processes (pid) and within a process (sequence counter): concurrent
/// savers never collide, and a user file literally named `target.tmp` is
/// never clobbered.
pub(crate) fn unique_temp_path(target: &Path) -> PathBuf {
    let seq = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let name = target
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "file".to_string());
    target.with_file_name(format!(".{name}.{}.{seq}.tmp", std::process::id()))
}

/// Fsyncs the directory containing `path` (`.` when the path is bare).
pub(crate) fn sync_parent(io: &dyn StorageIo, path: &Path) -> Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    io.sync_dir(parent)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("zoom-io-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn real_fs_roundtrip() {
        let path = temp("roundtrip");
        let fs = RealFs;
        fs.write(&path, b"hello").unwrap();
        assert!(fs.exists(&path));
        assert_eq!(fs.len(&path).unwrap(), 5);
        fs.append(&path, b" world").unwrap();
        assert_eq!(fs.read(&path).unwrap(), b"hello world");
        fs.set_len(&path, 5).unwrap();
        assert_eq!(fs.read(&path).unwrap(), b"hello");
        let moved = temp("roundtrip-moved");
        fs.rename(&path, &moved).unwrap();
        assert!(!fs.exists(&path));
        crate::io::sync_parent(&fs, &moved).unwrap();
        fs.remove_file(&moved).unwrap();
    }

    #[test]
    fn fault_fs_counts_then_fails() {
        let path = temp("faults");
        let counting = FaultFs::counting();
        counting.write(&path, b"a").unwrap();
        counting.append(&path, b"b").unwrap();
        assert_eq!(counting.ops(), 2);
        assert!(!counting.tripped());

        // Budget 1: the write succeeds, the append fails and tears.
        let faulty = FaultFs::fail_after(1, 1);
        faulty.write(&path, b"xyz").unwrap();
        assert!(faulty.append(&path, b"1234").is_err());
        assert!(faulty.tripped());
        // One torn byte of the append reached the disk.
        assert_eq!(faulty.read(&path).unwrap(), b"xyz1");
        // Every later write-side op fails too; reads still work.
        assert!(faulty.append(&path, b"more").is_err());
        assert!(faulty.rename(&path, &temp("faults2")).is_err());
        assert_eq!(faulty.read(&path).unwrap(), b"xyz1");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn armed_faults_heal_after_count() {
        let path = temp("armed");
        let fs = FaultFs::counting();
        fs.write(&path, b"seed").unwrap();

        // Two transient failures, then success; nothing torn onto disk.
        fs.arm_failures(2, true);
        for _ in 0..2 {
            let err = fs.append(&path, b"x").unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::Interrupted);
        }
        fs.append(&path, b"x").unwrap();
        assert_eq!(fs.read(&path).unwrap(), b"seedx");
        assert!(!fs.tripped(), "armed faults are not sticky");

        // Permanent armed failures report a non-retryable kind.
        fs.arm_failures(1, false);
        let err = fs.append(&path, b"y").unwrap_err();
        assert_ne!(err.kind(), std::io::ErrorKind::Interrupted);
        fs.append(&path, b"y").unwrap();

        // heal() clears an armed batch midway.
        fs.arm_failures(100, true);
        assert!(fs.append(&path, b"z").is_err());
        fs.heal();
        fs.append(&path, b"z").unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn write_latency_is_injected() {
        let path = temp("latency");
        let fs = FaultFs::counting();
        fs.set_write_latency(std::time::Duration::from_millis(5));
        let started = std::time::Instant::now();
        fs.write(&path, b"slow").unwrap();
        assert!(started.elapsed() >= std::time::Duration::from_millis(5));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unique_temp_paths_differ() {
        let t = Path::new("/tmp/some/file.zoom");
        let a = unique_temp_path(t);
        let b = unique_temp_path(t);
        assert_ne!(a, b);
        assert_eq!(a.parent(), t.parent());
        assert!(a.file_name().unwrap().to_string_lossy().ends_with(".tmp"));
        assert!(a.file_name().unwrap().to_string_lossy().starts_with('.'));
    }
}
