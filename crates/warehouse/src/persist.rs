//! Snapshot persistence — the "managing" half of *Querying and Managing
//! Provenance*.
//!
//! The whole warehouse (specs, views, runs) serializes to a single snapshot
//! file through the [`crate::codec`] binary format, with a magic header and
//! format version for forward safety. Caches are not persisted; they are
//! rebuilt lazily after load.

use crate::codec::{self, CodecError};
use crate::fxhash::FxHashMap;
use crate::io::{RealFs, StorageIo};
use crate::schema::{RunId, RunRow, SpecId, SpecRow, ViewId, ViewRow};
use crate::store::Warehouse;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;
use zoom_model::{ModelError, WorkflowSpec};

/// Magic bytes identifying a warehouse snapshot.
pub const MAGIC: &[u8; 8] = b"ZOOMWH\x00\x01";

/// Errors from snapshot save/load.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem error.
    Io(std::io::Error),
    /// Encoding/decoding error.
    Codec(CodecError),
    /// The file is not a warehouse snapshot (bad magic or version).
    BadHeader,
    /// The snapshot decoded but contains structurally invalid model data.
    Invalid(zoom_model::ModelError),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Codec(e) => write!(f, "codec error: {e}"),
            PersistError::BadHeader => write!(f, "not a warehouse snapshot (bad header)"),
            PersistError::Invalid(e) => write!(f, "snapshot contains invalid data: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<CodecError> for PersistError {
    fn from(e: CodecError) -> Self {
        PersistError::Codec(e)
    }
}

#[derive(Serialize, Deserialize)]
struct Snapshot {
    specs: Vec<(SpecId, SpecRow)>,
    views: Vec<(ViewId, ViewRow)>,
    runs: Vec<(RunId, RunRow)>,
}

/// Saves the warehouse to `path`, atomically and durably: the snapshot is
/// written (and fsynced) under a unique sibling temp name, renamed over
/// `path`, and the parent directory is fsynced so the rename itself
/// survives a crash. Concurrent savers never collide on the temp file.
pub fn save(warehouse: &Warehouse, path: &Path) -> Result<(), PersistError> {
    save_with(&RealFs, warehouse, path)
}

/// [`save`] on an explicit storage backend.
pub fn save_with(
    io: &dyn StorageIo,
    warehouse: &Warehouse,
    path: &Path,
) -> Result<(), PersistError> {
    let (specs, views, runs) = warehouse.export_rows();
    let snap = Snapshot { specs, views, runs };
    let body = codec::to_bytes(&snap)?;
    let mut bytes = Vec::with_capacity(MAGIC.len() + body.len());
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&body);
    let tmp = crate::io::unique_temp_path(path);
    io.write(&tmp, &bytes)?;
    if let Err(e) = io.rename(&tmp, path) {
        let _ = io.remove_file(&tmp);
        return Err(e.into());
    }
    crate::io::sync_parent(io, path)?;
    Ok(())
}

/// Loads a warehouse from `path`.
pub fn load(path: &Path) -> Result<Warehouse, PersistError> {
    load_with(&RealFs, path)
}

/// [`load`] from an explicit storage backend.
pub fn load_with(io: &dyn StorageIo, path: &Path) -> Result<Warehouse, PersistError> {
    let bytes = io.read(path)?;
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(PersistError::BadHeader);
    }
    let snap: Snapshot = codec::from_bytes(&bytes[MAGIC.len()..])?;
    // Deserialization bypasses the builders, so re-validate the structural
    // invariants before trusting the data.
    let mut spec_of: FxHashMap<SpecId, &WorkflowSpec> = FxHashMap::default();
    for (id, row) in &snap.specs {
        row.spec.validate().map_err(PersistError::Invalid)?;
        spec_of.insert(*id, &row.spec);
    }
    let resolve = |id: SpecId| -> Result<&WorkflowSpec, PersistError> {
        spec_of.get(&id).copied().ok_or_else(|| {
            PersistError::Invalid(ModelError::SpecMismatch(format!("{id} not in snapshot")))
        })
    };
    for (_, row) in &snap.views {
        row.view
            .validate(resolve(row.spec)?)
            .map_err(PersistError::Invalid)?;
    }
    for (_, row) in &snap.runs {
        row.run
            .validate(resolve(row.spec)?)
            .map_err(PersistError::Invalid)?;
    }
    Ok(Warehouse::from_rows(snap.specs, snap.views, snap.runs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoom_model::{DataId, RunBuilder, SpecBuilder, UserView};

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("zoom-warehouse-test-{name}-{}", std::process::id()));
        p
    }

    fn populated() -> Warehouse {
        let mut w = Warehouse::new();
        let mut b = SpecBuilder::new("persist-spec");
        b.analysis("A");
        b.analysis("B");
        b.from_input("A").edge("A", "B").to_output("B");
        let s = b.build().unwrap();
        let sid = w.register_spec(s.clone()).unwrap();
        w.register_view(sid, UserView::admin(&s)).unwrap();
        w.register_view(sid, UserView::black_box(&s)).unwrap();
        let mut rb = RunBuilder::new(&s);
        let s1 = rb.step(s.module("A").unwrap());
        let s2 = rb.step(s.module("B").unwrap());
        rb.input_edge(s1, [1])
            .data_edge(s1, s2, [2])
            .output_edge(s2, [3]);
        w.load_run(sid, rb.build().unwrap()).unwrap();
        w
    }

    #[test]
    fn roundtrip() {
        let w = populated();
        let path = temp_path("roundtrip");
        save(&w, &path).unwrap();
        let w2 = load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        let s1 = w.stats();
        let mut s2 = w2.stats();
        // Caches (and their counters) are not persisted.
        s2.cached_view_runs = s1.cached_view_runs;
        s2.cached_indexes = s1.cached_indexes;
        s2.index_hits = s1.index_hits;
        s2.index_misses = s1.index_misses;
        s2.index_build_nanos = s1.index_build_nanos;
        assert_eq!(s1, s2);

        // Queries still work and agree after reload.
        let sid = w2.spec_by_name("persist-spec").unwrap();
        let admin = w2.find_view(sid, "UAdmin").unwrap();
        let rid = w2.runs_of_spec(sid)[0];
        let res = w2.deep_provenance(rid, admin, DataId(3)).unwrap();
        assert_eq!(res.tuples(), 3);

        // Ids continue after the reloaded maximum.
        let mut w3 = w2;
        let mut b = SpecBuilder::new("another");
        b.analysis("X");
        b.from_input("X").to_output("X");
        let nid = w3.register_spec(b.build().unwrap()).unwrap();
        assert!(nid.0 >= 1);
    }

    #[test]
    fn bad_header_rejected() {
        let path = temp_path("badheader");
        std::fs::write(&path, b"NOTASNAPSHOT").unwrap();
        assert!(matches!(load(&path), Err(PersistError::BadHeader)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let path = temp_path("missing-never-created");
        assert!(matches!(load(&path), Err(PersistError::Io(_))));
    }

    #[test]
    fn structurally_invalid_snapshot_rejected() {
        // Hand-craft a snapshot whose run graph has a cycle by bypassing
        // the builder: serialize a valid warehouse, then corrupt the run by
        // re-encoding a doctored snapshot. Easiest doctoring: swap the
        // run's spec id to a nonexistent one (caught by the spec lookup).
        let w = populated();
        let (specs, views, mut runs) = w.export_rows();
        runs[0].1.spec = crate::schema::SpecId(42);
        let snap = Snapshot { specs, views, runs };
        let body = codec::to_bytes(&snap).unwrap();
        let path = temp_path("invalid");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&body);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load(&path),
            Err(PersistError::BadHeader) | Err(PersistError::Invalid(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn doctored_view_rejected_on_load() {
        // A view that passes the registration-time name check but does not
        // partition the stored spec: built against a different spec that
        // shares the name. Such bytes must not reach query time.
        let w = populated();
        let (specs, mut views, runs) = w.export_rows();
        let mut b = SpecBuilder::new("persist-spec");
        b.analysis("A");
        b.from_input("A").to_output("A");
        let impostor_spec = b.build().unwrap();
        views[0].1.view = UserView::admin(&impostor_spec);
        let snap = Snapshot { specs, views, runs };
        let body = codec::to_bytes(&snap).unwrap();
        let path = temp_path("doctored-view");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&body);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(load(&path), Err(PersistError::Invalid(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_does_not_clobber_tmp_siblings() {
        // The old implementation wrote to `path.with_extension("tmp")`,
        // destroying any real `.tmp` sibling and colliding across savers.
        let w = populated();
        let path = temp_path("tmp-sibling");
        let sibling = path.with_extension("tmp");
        std::fs::write(&sibling, b"user data, not ours").unwrap();
        save(&w, &path).unwrap();
        assert_eq!(std::fs::read(&sibling).unwrap(), b"user data, not ours");
        // No stray temp files left behind.
        load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&sibling).ok();
    }

    #[test]
    fn truncated_body_rejected() {
        let w = populated();
        let path = temp_path("truncated");
        save(&w, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        assert!(matches!(load(&path), Err(PersistError::Codec(_))));
        std::fs::remove_file(&path).ok();
    }
}
