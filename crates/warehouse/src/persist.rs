//! Snapshot persistence — the "managing" half of *Querying and Managing
//! Provenance*.
//!
//! The whole warehouse (specs, views, runs) serializes to a single snapshot
//! file through the [`crate::codec`] binary format, with a magic header and
//! format version for forward safety. Caches are not persisted; they are
//! rebuilt lazily after load.

use crate::codec::{self, CodecError};
use crate::schema::{RunId, RunRow, SpecId, SpecRow, ViewId, ViewRow};
use crate::store::Warehouse;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

/// Magic bytes identifying a warehouse snapshot.
pub const MAGIC: &[u8; 8] = b"ZOOMWH\x00\x01";

/// Errors from snapshot save/load.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem error.
    Io(std::io::Error),
    /// Encoding/decoding error.
    Codec(CodecError),
    /// The file is not a warehouse snapshot (bad magic or version).
    BadHeader,
    /// The snapshot decoded but contains structurally invalid model data.
    Invalid(zoom_model::ModelError),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Codec(e) => write!(f, "codec error: {e}"),
            PersistError::BadHeader => write!(f, "not a warehouse snapshot (bad header)"),
            PersistError::Invalid(e) => write!(f, "snapshot contains invalid data: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<CodecError> for PersistError {
    fn from(e: CodecError) -> Self {
        PersistError::Codec(e)
    }
}

#[derive(Serialize, Deserialize)]
struct Snapshot {
    specs: Vec<(SpecId, SpecRow)>,
    views: Vec<(ViewId, ViewRow)>,
    runs: Vec<(RunId, RunRow)>,
}

/// Saves the warehouse to `path` (atomic via a sibling temp file).
pub fn save(warehouse: &Warehouse, path: &Path) -> Result<(), PersistError> {
    let (specs, views, runs) = warehouse.export_rows();
    let snap = Snapshot { specs, views, runs };
    let body = codec::to_bytes(&snap)?;
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(MAGIC)?;
        f.write_all(&body)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Loads a warehouse from `path`.
pub fn load(path: &Path) -> Result<Warehouse, PersistError> {
    let mut f = std::fs::File::open(path)?;
    let mut header = [0u8; 8];
    f.read_exact(&mut header)
        .map_err(|_| PersistError::BadHeader)?;
    if &header != MAGIC {
        return Err(PersistError::BadHeader);
    }
    let mut body = Vec::new();
    f.read_to_end(&mut body)?;
    let snap: Snapshot = codec::from_bytes(&body)?;
    // Deserialization bypasses the builders, so re-validate the structural
    // invariants before trusting the data.
    for (_, row) in &snap.specs {
        row.spec.validate().map_err(PersistError::Invalid)?;
    }
    for (_, row) in &snap.runs {
        let spec = snap
            .specs
            .iter()
            .find(|(id, _)| *id == row.spec)
            .map(|(_, s)| &s.spec)
            .ok_or(PersistError::BadHeader)?;
        row.run.validate(spec).map_err(PersistError::Invalid)?;
    }
    Ok(Warehouse::from_rows(snap.specs, snap.views, snap.runs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoom_model::{DataId, RunBuilder, SpecBuilder, UserView};

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("zoom-warehouse-test-{name}-{}", std::process::id()));
        p
    }

    fn populated() -> Warehouse {
        let mut w = Warehouse::new();
        let mut b = SpecBuilder::new("persist-spec");
        b.analysis("A");
        b.analysis("B");
        b.from_input("A").edge("A", "B").to_output("B");
        let s = b.build().unwrap();
        let sid = w.register_spec(s.clone()).unwrap();
        w.register_view(sid, UserView::admin(&s)).unwrap();
        w.register_view(sid, UserView::black_box(&s)).unwrap();
        let mut rb = RunBuilder::new(&s);
        let s1 = rb.step(s.module("A").unwrap());
        let s2 = rb.step(s.module("B").unwrap());
        rb.input_edge(s1, [1])
            .data_edge(s1, s2, [2])
            .output_edge(s2, [3]);
        w.load_run(sid, rb.build().unwrap()).unwrap();
        w
    }

    #[test]
    fn roundtrip() {
        let w = populated();
        let path = temp_path("roundtrip");
        save(&w, &path).unwrap();
        let w2 = load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        let s1 = w.stats();
        let mut s2 = w2.stats();
        // Caches (and their counters) are not persisted.
        s2.cached_view_runs = s1.cached_view_runs;
        s2.cached_indexes = s1.cached_indexes;
        s2.index_hits = s1.index_hits;
        s2.index_misses = s1.index_misses;
        s2.index_build_nanos = s1.index_build_nanos;
        assert_eq!(s1, s2);

        // Queries still work and agree after reload.
        let sid = w2.spec_by_name("persist-spec").unwrap();
        let admin = w2.find_view(sid, "UAdmin").unwrap();
        let rid = w2.runs_of_spec(sid)[0];
        let res = w2.deep_provenance(rid, admin, DataId(3)).unwrap();
        assert_eq!(res.tuples(), 3);

        // Ids continue after the reloaded maximum.
        let mut w3 = w2;
        let mut b = SpecBuilder::new("another");
        b.analysis("X");
        b.from_input("X").to_output("X");
        let nid = w3.register_spec(b.build().unwrap()).unwrap();
        assert!(nid.0 >= 1);
    }

    #[test]
    fn bad_header_rejected() {
        let path = temp_path("badheader");
        std::fs::write(&path, b"NOTASNAPSHOT").unwrap();
        assert!(matches!(load(&path), Err(PersistError::BadHeader)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let path = temp_path("missing-never-created");
        assert!(matches!(load(&path), Err(PersistError::Io(_))));
    }

    #[test]
    fn structurally_invalid_snapshot_rejected() {
        // Hand-craft a snapshot whose run graph has a cycle by bypassing
        // the builder: serialize a valid warehouse, then corrupt the run by
        // re-encoding a doctored snapshot. Easiest doctoring: swap the
        // run's spec id to a nonexistent one (caught by the spec lookup).
        let w = populated();
        let (specs, views, mut runs) = w.export_rows();
        runs[0].1.spec = crate::schema::SpecId(42);
        let snap = Snapshot { specs, views, runs };
        let body = codec::to_bytes(&snap).unwrap();
        let path = temp_path("invalid");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&body);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load(&path),
            Err(PersistError::BadHeader) | Err(PersistError::Invalid(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_body_rejected() {
        let w = populated();
        let path = temp_path("truncated");
        save(&w, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        assert!(matches!(load(&path), Err(PersistError::Codec(_))));
        std::fs::remove_file(&path).ok();
    }
}
