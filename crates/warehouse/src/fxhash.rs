//! A fast, non-cryptographic hasher for the warehouse's integer-keyed
//! indexes.
//!
//! The warehouse keys nearly everything by dense integer ids (data ids,
//! step ids, row numbers). SipHash — the standard library default — is
//! overkill for those keys and measurably slower; this is the FxHash
//! algorithm used by rustc (multiply-xor over machine words). HashDoS is
//! not a concern: keys come from our own generators and logs, not from
//! adversarial input. Implemented here because `rustc-hash` is not among
//! the crates available to this workspace.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash word-at-a-time hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with FxHash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with FxHash.
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_distinct_hashes() {
        let h = |x: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        };
        assert_ne!(h(1), h(2));
        assert_eq!(h(42), h(42));
    }

    #[test]
    fn map_works() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, "x");
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&999), Some(&"x"));
    }

    #[test]
    fn byte_tail_hashing() {
        let mut a = FxHasher::default();
        a.write(b"hello world"); // 11 bytes: one chunk + remainder
        let mut b = FxHasher::default();
        b.write(b"hello worle");
        assert_ne!(a.finish(), b.finish());
    }
}
