#![warn(missing_docs)]

//! # zoom
//!
//! Umbrella crate for the ZOOM*UserViews workspace — a Rust reproduction of
//! *"Querying and Managing Provenance through User Views in Scientific
//! Workflows"* (Biton, Cohen-Boulakia, Davidson, Hara; ICDE 2008).
//!
//! Re-exports the member crates under stable names:
//!
//! * [`graph`] — directed-graph substrate;
//! * [`model`] — workflow specifications, runs, logs, views, composite
//!   executions;
//! * [`views`] — nr-paths, Properties 1–3, `RelevUserViewBuilder`,
//!   minimality and minimum-view search;
//! * [`warehouse`] — the embedded provenance warehouse;
//! * [`gen`] — Table I/II workload generation and the curated Class-1
//!   library;
//! * [`core`] — the ZOOM system facade ([`Zoom`]).

pub use zoom_core as core;
pub use zoom_gen as gen;
pub use zoom_graph as graph;
pub use zoom_model as model;
pub use zoom_views as views;
pub use zoom_warehouse as warehouse;

pub use zoom_core::{QuerySession, Zoom};
pub use zoom_model::{DataId, StepId, UserView, WorkflowRun, WorkflowSpec};
