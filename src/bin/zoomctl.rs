//! `zoomctl` — a command-line front end to the ZOOM provenance warehouse.
//!
//! The prototype of Section IV exposed view building and provenance
//! querying through a GUI; this CLI exposes the same operations over a
//! warehouse snapshot file:
//!
//! ```sh
//! zoomctl demo lab.zoom                       # create a demo warehouse
//! zoomctl stats lab.zoom                      # sizes
//! zoomctl specs lab.zoom                      # list workflows
//! zoomctl views lab.zoom phylogenomic         # list views of a workflow
//! zoomctl build-view lab.zoom phylogenomic M2 M3 M7
//! zoomctl query lab.zoom phylogenomic 0 UAdmin "deep d447"
//! zoomctl render lab.zoom phylogenomic 0 "UV(M2,M3,M7)" d447 > prov.dot
//! ```
//!
//! Run indices are per-workflow (0 = first loaded run).

use std::path::Path;
use std::process::ExitCode;

/// Writes a line to stdout, ignoring broken pipes (`zoomctl … | head`).
macro_rules! out {
    ($($arg:tt)*) => {{
        use std::io::Write as _;
        let _ = writeln!(std::io::stdout(), $($arg)*);
    }};
}

/// Like [`out!`] without the newline.
macro_rules! out_raw {
    ($($arg:tt)*) => {{
        use std::io::Write as _;
        let _ = write!(std::io::stdout(), $($arg)*);
    }};
}
use zoom::core::{
    execute_canned, CannedQuery, PushOutcome, ReplayOptions, RunId, SpecId, TraceOp, TraceRecorder,
    TraceReplayer, ViewId, VisibilityPolicy,
};
use zoom::model::{DataId, LogEvent, StepId, Timestamp, UserView};
use zoom::Zoom;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("zoomctl: {msg}");
            ExitCode::from(2)
        }
    }
}

fn dispatch(raw: &[String]) -> Result<(), String> {
    // `--connect <addr>` (plus optional `--tenant <name>`) may appear
    // anywhere; strip both before positional parsing so every subcommand
    // keeps its local shape minus the snapshot path.
    let mut args: Vec<String> = Vec::with_capacity(raw.len());
    let mut connect: Option<String> = None;
    let mut tenant = "zoomctl".to_string();
    let mut i = 0;
    while i < raw.len() {
        match raw[i].as_str() {
            "--connect" => {
                i += 1;
                connect = Some(raw.get(i).ok_or("missing address for --connect")?.clone());
            }
            "--tenant" => {
                i += 1;
                tenant = raw.get(i).ok_or("missing name for --tenant")?.clone();
            }
            other => args.push(other.to_string()),
        }
        i += 1;
    }
    if let Some(addr) = connect {
        return dispatch_remote(&addr, &tenant, &args);
    }
    let args = &args[..];
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "demo" => demo(path_arg(args, 1)?),
        "stats" => stats(path_arg(args, 1)?, args.iter().any(|a| a == "--json")),
        "slowlog" => slowlog(path_arg(args, 1)?, &args[2..]),
        "specs" => specs(path_arg(args, 1)?),
        "views" => views(path_arg(args, 1)?, str_arg(args, 2, "workflow name")?),
        "runs" => runs(path_arg(args, 1)?, str_arg(args, 2, "workflow name")?),
        "build-view" => build_view(
            path_arg(args, 1)?,
            str_arg(args, 2, "workflow name")?,
            &args[3..],
        ),
        "query" => query(
            path_arg(args, 1)?,
            str_arg(args, 2, "workflow name")?,
            str_arg(args, 3, "run index")?,
            str_arg(args, 4, "view name")?,
            str_arg(args, 5, "query text")?,
        ),
        "compare" => compare(
            path_arg(args, 1)?,
            str_arg(args, 2, "workflow name")?,
            str_arg(args, 3, "first run index")?,
            str_arg(args, 4, "second run index")?,
            str_arg(args, 5, "view name")?,
        ),
        "repl" => repl(
            path_arg(args, 1)?,
            str_arg(args, 2, "workflow name")?,
            str_arg(args, 3, "run index")?,
        ),
        "render" => render(
            path_arg(args, 1)?,
            str_arg(args, 2, "workflow name")?,
            str_arg(args, 3, "run index")?,
            str_arg(args, 4, "view name")?,
            str_arg(args, 5, "data id")?,
        ),
        "ingest" => ingest(
            path_arg(args, 1)?,
            str_arg(args, 2, "workflow name")?,
            &args[3..],
        ),
        "replay" => replay(path_arg(args, 1)?, &args[2..]),
        "record-demo" => record_demo(path_arg(args, 1)?),
        "compact" => compact(dir_arg(args, 1)?),
        "fsck" => fsck(dir_arg(args, 1)?),
        "health" => health(path_arg(args, 1)?, args.iter().any(|a| a == "--json")),
        "help" | "--help" | "-h" => {
            out_raw!("{HELP}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}` (see `zoomctl help`)")),
    }
}

const HELP: &str = "\
zoomctl — ZOOM*UserViews provenance warehouse CLI

usage:
  zoomctl demo <snapshot>                              create a demo warehouse
  zoomctl stats <snapshot> [--json]                    warehouse sizes
      --json adds live metrics: query latency histograms, cache
      hit/miss/eviction counters, journal fsync latency, slow queries
  zoomctl slowlog <snapshot> [--threshold-nanos N] [--json]
      audit-sweep every run/view and print the slow-query ring buffer
  zoomctl specs <snapshot>                             list workflows
  zoomctl views <snapshot> <workflow>                  list its views
  zoomctl runs <snapshot> <workflow>                   list its runs
  zoomctl build-view <snapshot> <workflow> <module>... build & register a view
  zoomctl query <snapshot> <workflow> <run#> <view> <query>
      query forms: deep dN | immediate dN | dependents dN
                   | between X Y | final | visible
  zoomctl render <snapshot> <workflow> <run#> <view> <dataid>
      emit the provenance graph as GraphViz DOT on stdout
  zoomctl repl <snapshot> <workflow> <run#>
      interactive session: flag/unflag modules, switch views, run queries
  zoomctl compare <snapshot> <workflow> <run#> <run#> <view>
      compare two runs at a view level (reproducibility check)
  zoomctl ingest <snapshot|dir> <workflow> [events-file|-] [--follow] [--seal]
      stream run events into the warehouse one at a time; the run is
      queryable mid-stream. Line protocol (times auto-ticked):
        user-input <d> <user> | step-started <s> <module>
        param <s> <key> <value> | read <s> <d> | wrote <s> <d>
        step-finished <s> | finalized <d> | seal
      --follow tails the file until a `seal` line arrives;
      --seal seals at end of input even without a `seal` line.
      Durable directories journal every event as it is acknowledged.
  zoomctl replay <trace> [--check] [--speed N] [--json]
      re-execute a recorded trace against a fresh warehouse, diffing
      result digests op by op. --check exits 2 on any mismatch;
      --speed 1 paces to recorded (virtual) time, 0 = flat out.
  zoomctl record-demo <trace>
      deterministically record the golden demo trace artifact
  zoomctl compact <dir>
      force a durable-store compaction (snapshot + fresh journal)
  zoomctl fsck <dir>
      verify a durable store: manifest, snapshot, journal, strays
  zoomctl health <snapshot|dir> [--json]
      write-availability and circuit-breaker state: degraded stores
      report open breakers, retry counts, and rejected writes

daemon mode — add `--connect HOST:PORT` (and optionally `--tenant NAME`)
to run against a live zoomd instead of a snapshot; the snapshot path
argument is dropped:
  zoomctl --connect A ping                             liveness probe
  zoomctl --connect A demo                             load the demo workload
  zoomctl --connect A stats [--json] [--admin-token TOK]
      aggregate across shards; without admin, embedded slow-query rows
      are filtered to your own tenant
  zoomctl --connect A slowlog [--threshold-nanos N] [--json] [--admin-token TOK]
      your tenant's slow queries; admin sees the full cross-tenant ring
      and may set the capture threshold
  zoomctl --connect A health [--json]                  per-shard health
  zoomctl --connect A build-view <workflow> <module>...
  zoomctl --connect A query <workflow> <run#> <view> <query>
  zoomctl --connect A ingest <workflow> [events-file|-] [--follow] [--seal]
  zoomctl --connect A replay <trace> [--check] [--speed N] [--json]
  zoomctl --connect A soak <sessions>                  open/close N sessions
  zoomctl --connect A compact                          checkpoint durable shards
  zoomctl --connect A policy set <tenant> [--hide-module M]... [--hide-workflow W]...
                              [--admin-token TOK]
      install <tenant>'s visibility policy: hidden modules are concealed
      inside composites of the coarsest safe view; hidden workflows do
      not exist for that tenant (admin-gated like shutdown)
  zoomctl --connect A policy show <tenant> [--json] [--admin-token TOK]
      print a tenant's policy (your own needs no token)
  zoomctl --connect A policy clear <tenant> [--admin-token TOK]
      remove a tenant's policy (admin-gated)
  zoomctl --connect A shutdown [--admin-token TOK]     stop the daemon
";

fn path_arg(args: &[String], i: usize) -> Result<&Path, String> {
    args.get(i)
        .map(Path::new)
        .ok_or_else(|| "missing snapshot path".to_string())
}

fn dir_arg(args: &[String], i: usize) -> Result<&Path, String> {
    args.get(i)
        .map(Path::new)
        .ok_or_else(|| "missing durable directory path".to_string())
}

fn str_arg<'a>(args: &'a [String], i: usize, what: &str) -> Result<&'a str, String> {
    args.get(i)
        .map(String::as_str)
        .ok_or_else(|| format!("missing {what}"))
}

fn load(path: &Path) -> Result<Zoom, String> {
    Zoom::load(path).map_err(|e| format!("cannot load `{}`: {e}", path.display()))
}

fn resolve_spec(zoom: &Zoom, name: &str) -> Result<SpecId, String> {
    zoom.warehouse()
        .spec_by_name(name)
        .ok_or_else(|| format!("no workflow named `{name}`"))
}

fn resolve_view(zoom: &Zoom, spec: SpecId, name: &str) -> Result<ViewId, String> {
    zoom.warehouse()
        .find_view(spec, name)
        .ok_or_else(|| format!("no view named `{name}` for this workflow"))
}

fn resolve_run(zoom: &Zoom, spec: SpecId, index: &str) -> Result<RunId, String> {
    let i: usize = index
        .parse()
        .map_err(|_| format!("`{index}` is not a run index"))?;
    zoom.warehouse()
        .runs_of_spec(spec)
        .get(i)
        .copied()
        .ok_or_else(|| format!("run index {i} out of range"))
}

fn demo(path: &Path) -> Result<(), String> {
    use zoom_gen::library::{figure2_run, phylogenomic};
    let mut zoom = Zoom::new();
    let spec = phylogenomic();
    let sid = zoom
        .register_workflow(spec.clone())
        .map_err(|e| e.to_string())?;
    zoom.admin_view(sid).map_err(|e| e.to_string())?;
    zoom.black_box_view(sid).map_err(|e| e.to_string())?;
    zoom.build_view(sid, &["M2", "M3", "M7"])
        .map_err(|e| e.to_string())?;
    zoom.load_run(sid, figure2_run(&spec))
        .map_err(|e| e.to_string())?;
    zoom.save(path).map_err(|e| e.to_string())?;
    out!(
        "demo warehouse written to {} (workflow `phylogenomic`, 1 run, 3 views)",
        path.display()
    );
    Ok(())
}

fn stats(path: &Path, json: bool) -> Result<(), String> {
    let zoom = load(path)?;
    if json {
        out!("{}", zoom.metrics().to_json());
        return Ok(());
    }
    let s = zoom.warehouse().stats();
    out!("workflows    : {}", s.specs);
    out!("views        : {}", s.views);
    out!("runs         : {}", s.runs);
    out!("steps        : {}", s.steps);
    out!("data objects : {}", s.data_objects);
    out!(
        "index        : {} (labels at >= {} nodes)",
        zoom.warehouse().backend_policy(),
        zoom.warehouse().labels_threshold()
    );
    Ok(())
}

/// Sweeps deep provenance of every run's final outputs through every view
/// of its workflow, then prints the slow-query ring buffer. With the
/// default threshold of 0 every query lands in the log (newest last), so
/// the sweep doubles as a per-view latency audit of the snapshot.
fn slowlog(path: &Path, rest: &[String]) -> Result<(), String> {
    let mut threshold: u64 = 0;
    let mut json = false;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--json" => json = true,
            "--threshold-nanos" => {
                i += 1;
                threshold = rest
                    .get(i)
                    .ok_or("missing value for --threshold-nanos")?
                    .parse()
                    .map_err(|_| "--threshold-nanos takes a nanosecond count".to_string())?;
            }
            other => return Err(format!("unknown slowlog option `{other}`")),
        }
        i += 1;
    }
    let zoom = load(path)?;
    zoom.set_slow_query_threshold_nanos(threshold);
    let wh = zoom.warehouse();
    let specs = wh.stats().specs as u32;
    for si in 0..specs {
        let sid = SpecId(si);
        for &rid in wh.runs_of_spec(sid) {
            let finals = zoom.final_outputs(rid).map_err(|e| e.to_string())?;
            for &vid in wh.views_of_spec(sid) {
                for &d in &finals {
                    // Hidden-at-this-view answers are part of the audit, not
                    // failures.
                    let _ = zoom.deep_provenance(rid, vid, d);
                }
            }
        }
    }
    let slow = zoom.slow_queries();
    if json {
        let rows: Vec<String> = slow
            .iter()
            .map(zoom::warehouse::metrics::slow_query_json)
            .collect();
        out!("[{}]", rows.join(","));
        return Ok(());
    }
    if slow.is_empty() {
        out!("no queries above {threshold} ns");
        return Ok(());
    }
    out!(
        "{:>5} {:>10} {:<24} {:>6} {:>8} {:>12}",
        "seq",
        "kind",
        "view",
        "run",
        "data",
        "nanos"
    );
    for q in &slow {
        out!(
            "{:>5} {:>10} {:<24} {:>6} {:>8} {:>12}",
            q.seq,
            q.kind.name(),
            q.view_name,
            q.run.0,
            q.data.map_or("-".to_string(), |d| format!("d{d}")),
            q.nanos
        );
    }
    Ok(())
}

fn specs(path: &Path) -> Result<(), String> {
    let zoom = load(path)?;
    let wh = zoom.warehouse();
    let n = wh.stats().specs as u32;
    for i in 0..n {
        let id = SpecId(i);
        if let Ok(spec) = wh.spec(id) {
            out!(
                "{:<30} {} modules, {} views, {} runs",
                spec.name(),
                spec.module_count(),
                wh.views_of_spec(id).len(),
                wh.runs_of_spec(id).len()
            );
        }
    }
    Ok(())
}

fn views(path: &Path, name: &str) -> Result<(), String> {
    let zoom = load(path)?;
    let sid = resolve_spec(&zoom, name)?;
    for &v in zoom.warehouse().views_of_spec(sid) {
        let view = zoom.warehouse().view(v).map_err(|e| e.to_string())?;
        out!("{:<24} size {}", view.name(), view.size());
    }
    Ok(())
}

fn runs(path: &Path, name: &str) -> Result<(), String> {
    let zoom = load(path)?;
    let sid = resolve_spec(&zoom, name)?;
    for (i, &r) in zoom.warehouse().runs_of_spec(sid).iter().enumerate() {
        let run = zoom.warehouse().run(r).map_err(|e| e.to_string())?;
        out!(
            "run {:<3} {} steps, {} data objects, finals {}",
            i,
            run.step_count(),
            run.data_count(),
            zoom::model::run::format_data_range(&run.final_outputs())
        );
    }
    Ok(())
}

fn build_view(path: &Path, name: &str, labels: &[String]) -> Result<(), String> {
    if labels.is_empty() {
        return Err("give at least one relevant module label".to_string());
    }
    let mut zoom = load(path)?;
    let sid = resolve_spec(&zoom, name)?;
    let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
    let vid = zoom.build_view(sid, &refs).map_err(|e| e.to_string())?;
    let view = zoom.warehouse().view(vid).map_err(|e| e.to_string())?;
    out!("registered view `{}` (size {})", view.name(), view.size());
    let vname = view.name().to_string();
    let spec = zoom.warehouse().spec(sid).map_err(|e| e.to_string())?;
    let composites: Vec<String> = zoom
        .warehouse()
        .view(vid)
        .map_err(|e| e.to_string())?
        .composites()
        .iter()
        .map(|c| {
            let ms: Vec<&str> = c.members.iter().map(|&m| spec.label(m)).collect();
            format!("  {} = {ms:?}", c.name)
        })
        .collect();
    for line in composites {
        out!("{line}");
    }
    zoom.save(path).map_err(|e| e.to_string())?;
    out!("snapshot updated ({vname})");
    Ok(())
}

fn query(
    path: &Path,
    name: &str,
    run_index: &str,
    view_name: &str,
    text: &str,
) -> Result<(), String> {
    let zoom = load(path)?;
    let sid = resolve_spec(&zoom, name)?;
    let rid = resolve_run(&zoom, sid, run_index)?;
    let vid = resolve_view(&zoom, sid, view_name)?;
    let q = CannedQuery::parse(text).map_err(|e| e.to_string())?;
    let answer = execute_canned(&zoom, rid, vid, &q).map_err(|e| e.to_string())?;
    out!("{answer}");
    Ok(())
}

/// Compares two runs of one workflow through a view — two runs differing
/// only inside a composite (e.g. loop iterations) are identical at that
/// level.
fn compare(
    path: &Path,
    name: &str,
    run_a: &str,
    run_b: &str,
    view_name: &str,
) -> Result<(), String> {
    let zoom = load(path)?;
    let sid = resolve_spec(&zoom, name)?;
    let ra = resolve_run(&zoom, sid, run_a)?;
    let rb = resolve_run(&zoom, sid, run_b)?;
    let vid = resolve_view(&zoom, sid, view_name)?;
    let vra = zoom
        .warehouse()
        .view_run(ra, vid)
        .map_err(|e| e.to_string())?;
    let vrb = zoom
        .warehouse()
        .view_run(rb, vid)
        .map_err(|e| e.to_string())?;
    let cmp = zoom::core::compare_view_runs(&vra, &vrb);
    let view = zoom.warehouse().view(vid).map_err(|e| e.to_string())?;
    out_raw!(
        "{}",
        zoom::core::ComparisonReport {
            comparison: &cmp,
            view,
        }
    );
    Ok(())
}

/// The interactive session of Section IV: flag or unflag modules (the good
/// view is rebuilt and switched to each time), jump between registered
/// views, and run canned queries — all against one run.
fn repl(path: &Path, name: &str, run_index: &str) -> Result<(), String> {
    use std::io::BufRead;
    let mut zoom = load(path)?;
    let sid = resolve_spec(&zoom, name)?;
    let rid = resolve_run(&zoom, sid, run_index)?;
    let mut current = zoom.admin_view(sid).map_err(|e| e.to_string())?;
    let mut flags: Vec<String> = Vec::new();
    out!(
        "interactive session on `{name}` run {run_index} — commands: \
         flag <module> | unflag <module> | view <name> | views | modules | \
         <query form> | tree dN | quit"
    );
    print_prompt(&zoom, current);
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        let line = line.trim();
        if line.is_empty() {
            print_prompt(&zoom, current);
            continue;
        }
        let mut parts = line.split_whitespace();
        let Some(cmd) = parts.next() else {
            // `trim` + the emptiness check above make this unreachable, but
            // a prompt beats a panic if that invariant ever shifts.
            print_prompt(&zoom, current);
            continue;
        };
        let rest: Vec<&str> = parts.collect();
        match (cmd, rest.as_slice()) {
            ("quit" | "exit", _) => break,
            ("views", _) => {
                for &v in zoom.warehouse().views_of_spec(sid) {
                    let view = zoom.warehouse().view(v).map_err(|e| e.to_string())?;
                    let marker = if v == current { "*" } else { " " };
                    out!(" {marker} {:<24} size {}", view.name(), view.size());
                }
            }
            ("modules", _) => {
                let spec = zoom.warehouse().spec(sid).map_err(|e| e.to_string())?;
                for m in spec.module_ids() {
                    let label = spec.label(m);
                    let marker = if flags.iter().any(|f| f == label) {
                        "*"
                    } else {
                        " "
                    };
                    out!(" {marker} {label} ({})", spec.kind(m));
                }
            }
            ("view", [vname]) => match resolve_view(&zoom, sid, vname) {
                Ok(v) => {
                    current = v;
                    out!("switched to {vname}");
                }
                Err(e) => out!("{e}"),
            },
            ("flag" | "unflag", [module]) => {
                if cmd == "flag" {
                    if !flags.iter().any(|f| f == module) {
                        flags.push((*module).to_string());
                    }
                } else {
                    flags.retain(|f| f != module);
                }
                let refs: Vec<&str> = flags.iter().map(String::as_str).collect();
                match zoom.build_view(sid, &refs) {
                    Ok(v) => {
                        current = v;
                        let view = zoom.warehouse().view(v).map_err(|e| e.to_string())?;
                        out!("rebuilt: {} (size {})", view.name(), view.size());
                    }
                    Err(e) => out!("cannot build view: {e}"),
                }
            }
            ("tree", [d]) => {
                let parsed = d.strip_prefix('d').unwrap_or(d).parse::<u64>().map(DataId);
                match parsed {
                    Err(_) => out!("`{d}` is not a data id"),
                    Ok(d) => match zoom.deep_provenance(rid, current, d) {
                        Err(e) => out!("{e}"),
                        Ok(res) => {
                            let vr = zoom
                                .warehouse()
                                .view_run(rid, current)
                                .map_err(|e| e.to_string())?;
                            let view = zoom.warehouse().view(current).map_err(|e| e.to_string())?;
                            out_raw!("{}", zoom::core::provenance_to_text(&vr, view, &res));
                        }
                    },
                }
            }
            _ => match CannedQuery::parse(line) {
                Ok(q) => match execute_canned(&zoom, rid, current, &q) {
                    Ok(a) => out!("{a}"),
                    Err(e) => out!("{e}"),
                },
                Err(e) => out!("{e}"),
            },
        }
        print_prompt(&zoom, current);
    }
    zoom.save(path).map_err(|e| e.to_string())?;
    out!("session views saved to {}", path.display());
    Ok(())
}

fn print_prompt(zoom: &Zoom, current: zoom::core::ViewId) {
    let name = zoom
        .warehouse()
        .view(current)
        .map(|v| v.name().to_string())
        .unwrap_or_else(|_| format!("{current}"));
    out!("[{name}]>");
}

fn parse_data_id(s: &str) -> Result<DataId, String> {
    s.strip_prefix('d')
        .unwrap_or(s)
        .parse::<u64>()
        .map(DataId)
        .map_err(|_| format!("`{s}` is not a data id"))
}

fn parse_step_id(s: &str) -> Result<StepId, String> {
    s.strip_prefix('s')
        .unwrap_or(s)
        .parse::<u32>()
        .map(StepId)
        .map_err(|_| format!("`{s}` is not a step id"))
}

/// Parses one ingest-protocol line into an event (`Ok(None)` = `seal`).
/// Times are auto-ticked: the stream's own ordering is the clock.
fn parse_ingest_line(line: &str, time: Timestamp) -> Result<Option<LogEvent>, String> {
    let parts: Vec<&str> = line.split_whitespace().collect();
    let ev = match parts.as_slice() {
        ["seal"] => return Ok(None),
        ["user-input", d, user] => LogEvent::UserInput {
            data: parse_data_id(d)?,
            user: (*user).to_string(),
            time,
        },
        ["step-started", s, module] => LogEvent::StepStarted {
            step: parse_step_id(s)?,
            module: (*module).to_string(),
            time,
        },
        ["param", s, key, value] => LogEvent::Param {
            step: parse_step_id(s)?,
            key: (*key).to_string(),
            value: (*value).to_string(),
            time,
        },
        ["read", s, d] => LogEvent::Read {
            step: parse_step_id(s)?,
            data: parse_data_id(d)?,
            time,
        },
        ["wrote", s, d] => LogEvent::Wrote {
            step: parse_step_id(s)?,
            data: parse_data_id(d)?,
            time,
        },
        ["step-finished", s] => LogEvent::StepFinished {
            step: parse_step_id(s)?,
            time,
        },
        ["finalized", d] => LogEvent::Finalized {
            data: parse_data_id(d)?,
            time,
        },
        _ => return Err(format!("unparseable ingest line: `{line}`")),
    };
    Ok(Some(ev))
}

/// Streams run events into a warehouse one at a time. The run commits
/// step-by-step as provenance closes, answering queries mid-stream; a
/// `seal` line (or `--seal`) completes it. Snapshot targets are saved at
/// the end; durable directories journal every acknowledged event as it
/// arrives, so a crash mid-stream loses nothing.
fn ingest(target: &Path, workflow: &str, rest: &[String]) -> Result<(), String> {
    let mut source: Option<&str> = None;
    let mut follow = false;
    let mut seal_at_end = false;
    for a in rest {
        match a.as_str() {
            "--follow" => follow = true,
            "--seal" => seal_at_end = true,
            other if source.is_none() => source = Some(other),
            other => return Err(format!("unexpected ingest argument `{other}`")),
        }
    }
    let source = source.unwrap_or("-");
    let durable = target.join(zoom::warehouse::durable::MANIFEST).exists();
    let mut zoom = if durable {
        Zoom::open_durable(target).map_err(|e| e.to_string())?
    } else {
        load(target)?
    };
    let sid = resolve_spec(&zoom, workflow)?;
    let mut handle = zoom.begin_stream(sid).map_err(|e| e.to_string())?;
    let rid = handle.run_id();
    out!("streaming run {rid} on `{workflow}`");

    let mut tick = 0u64;
    let mut events = 0usize;
    let mut committed = 0usize;
    let mut sealed = false;
    let mut push_line =
        |handle: &mut zoom::core::StreamHandle<'_>, line: &str| -> Result<bool, String> {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                return Ok(false);
            }
            tick += 1;
            let Some(ev) = parse_ingest_line(line, Timestamp(tick))? else {
                return Ok(true); // seal requested
            };
            match handle.push_event(&ev).map_err(|e| e.to_string())? {
                PushOutcome::Buffered => {}
                PushOutcome::Committed(steps) => {
                    committed += steps.len();
                    let ids: Vec<String> = steps.iter().map(|s| format!("{s}")).collect();
                    out!("committed {}", ids.join(", "));
                }
            }
            events += 1;
            Ok(false)
        };

    if source == "-" {
        use std::io::BufRead;
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let line = line.map_err(|e| e.to_string())?;
            if push_line(&mut handle, &line)? {
                sealed = true;
                break;
            }
        }
    } else {
        // File source: process complete lines only; with --follow, poll
        // for growth until a `seal` line lands.
        let path = Path::new(source);
        let mut offset = 0usize;
        'outer: loop {
            let content = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read `{source}`: {e}"))?;
            let new = &content[offset.min(content.len())..];
            let complete = new.rfind('\n').map(|i| i + 1).unwrap_or(0);
            for line in new[..complete].lines() {
                if push_line(&mut handle, line)? {
                    sealed = true;
                    break 'outer;
                }
            }
            offset += complete;
            if !follow {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
    }

    if sealed || seal_at_end {
        handle.seal().map_err(|e| format!("seal failed: {e}"))?;
        sealed = true;
    } else {
        let _ = handle; // release the warehouse borrow without sealing
    }
    out!(
        "ingested {events} events, {committed} steps committed, run {rid} {}",
        if sealed { "sealed" } else { "left open" }
    );
    if durable {
        out!(
            "every acknowledged event is journaled in {}",
            target.display()
        );
    } else {
        if !sealed {
            out!("note: snapshots persist only the committed prefix, not the open stream");
        }
        zoom.save(target).map_err(|e| e.to_string())?;
        out!("snapshot updated: {}", target.display());
    }
    Ok(())
}

/// Re-executes a recorded trace against a fresh in-memory warehouse,
/// diffing every operation's result digest against the recording.
fn replay(trace: &Path, rest: &[String]) -> Result<(), String> {
    let mut check = false;
    let mut json = false;
    let mut speed = 0.0f64;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--check" => check = true,
            "--json" => json = true,
            "--speed" => {
                i += 1;
                speed = rest
                    .get(i)
                    .ok_or("missing value for --speed")?
                    .parse()
                    .map_err(|_| "--speed takes a number (0 = flat out)".to_string())?;
            }
            other => return Err(format!("unknown replay option `{other}`")),
        }
        i += 1;
    }
    let bytes =
        std::fs::read(trace).map_err(|e| format!("cannot read `{}`: {e}", trace.display()))?;
    let replayer = TraceReplayer::from_bytes(&bytes).map_err(|e| e.to_string())?;
    let mut zoom = Zoom::new();
    let report = replayer.replay(&mut zoom, &ReplayOptions { speed });
    if json {
        out!(
            "{{\"ops\":{},\"mismatches\":{},\"digest\":\"{:016x}\",\"recorded_nanos\":{},\"elapsed_nanos\":{},\"speedup\":{:.2}}}",
            report.ops,
            report.mismatches.len(),
            report.digest,
            report.recorded_nanos,
            report.elapsed_nanos,
            report.speedup()
        );
    } else {
        out!("ops          : {}", report.ops);
        out!("mismatches   : {}", report.mismatches.len());
        out!("digest       : {:016x}", report.digest);
        out!(
            "recorded     : {:.3} ms (virtual)",
            report.recorded_nanos as f64 / 1e6
        );
        out!(
            "elapsed      : {:.3} ms ({:.1}x recorded speed)",
            report.elapsed_nanos as f64 / 1e6,
            report.speedup()
        );
        for m in report.mismatches.iter().take(10) {
            out!(
                "  op {} (clock {}, {}): expected {:016x}, got {:016x}",
                m.index,
                m.clock,
                m.op,
                m.expected,
                m.got
            );
        }
    }
    if check && !report.is_clean() {
        return Err(format!(
            "replay diverged: {} digest mismatches",
            report.mismatches.len()
        ));
    }
    Ok(())
}

/// Deterministically records the golden demo trace: the phylogenomic
/// workflow loaded batch-wise and streamed event-by-event with provenance
/// queries interleaved mid-stream. No wall-clock input — two invocations
/// produce byte-identical artifacts.
fn record_demo(trace: &Path) -> Result<(), String> {
    use zoom_gen::library::{figure2_run, phylogenomic};
    let spec = phylogenomic();
    let run = figure2_run(&spec);
    let log = zoom::model::EventLog::from_run(&run, &spec);
    let finals = run.final_outputs();

    let mut zoom = Zoom::new();
    let mut rec = TraceRecorder::default();
    rec.record(&mut zoom, TraceOp::RegisterSpec(spec.clone()));
    rec.record(
        &mut zoom,
        TraceOp::RegisterView(SpecId(0), UserView::admin(&spec)),
    );
    rec.record(
        &mut zoom,
        TraceOp::RegisterView(SpecId(0), UserView::black_box(&spec)),
    );
    // Run 0: batch load. Run 1: the same log streamed, with deep-provenance
    // probes interleaved (some of which answer, some of which reject — both
    // digests are part of the recording).
    rec.record(&mut zoom, TraceOp::LoadLog(SpecId(0), log.clone()));
    rec.record(&mut zoom, TraceOp::BeginStream(SpecId(0)));
    for (i, ev) in log.events.iter().enumerate() {
        rec.record(&mut zoom, TraceOp::PushEvent(RunId(1), ev.clone()));
        if i % 7 == 0 {
            if let LogEvent::Read { data, .. } | LogEvent::Wrote { data, .. } = ev {
                rec.record(
                    &mut zoom,
                    TraceOp::DeepProvenance(RunId(1), ViewId(0), *data),
                );
            }
        }
    }
    rec.record(&mut zoom, TraceOp::SealStream(RunId(1)));
    for rid in [RunId(0), RunId(1)] {
        for vid in [ViewId(0), ViewId(1)] {
            for &d in finals.iter().take(2) {
                rec.record(&mut zoom, TraceOp::DeepProvenance(rid, vid, d));
                rec.record(&mut zoom, TraceOp::ImmediateProvenance(rid, vid, d));
            }
            rec.record(&mut zoom, TraceOp::DependentsOf(rid, vid, DataId(1)));
        }
    }
    let bytes = rec
        .to_bytes()
        .map_err(|e| format!("cannot encode trace: {e}"))?;
    std::fs::write(trace, &bytes)
        .map_err(|e| format!("cannot write `{}`: {e}", trace.display()))?;
    out!(
        "recorded {} ops ({} bytes) to {}",
        rec.len(),
        bytes.len(),
        trace.display()
    );
    Ok(())
}

/// Forces a compaction of a durable warehouse directory and reports the
/// resulting generation.
fn compact(dir: &Path) -> Result<(), String> {
    if !dir.join(zoom::warehouse::durable::MANIFEST).exists() {
        return Err(format!(
            "`{}` is not a durable warehouse directory (no MANIFEST)",
            dir.display()
        ));
    }
    let mut zoom = Zoom::open_durable(dir).map_err(|e| e.to_string())?;
    zoom.checkpoint().map_err(|e| e.to_string())?;
    let s = zoom.stats();
    out!("compacted {} to epoch {}", dir.display(), s.epoch);
    out!("workflows    : {}", s.specs);
    out!("views        : {}", s.views);
    out!("runs         : {}", s.runs);
    out!(
        "journal tail : {} records, {} bytes",
        s.journal_records,
        s.journal_bytes
    );
    Ok(())
}

/// Reports write-availability and breaker state. Accepts either a durable
/// directory (opened read-through, breaker state live) or a snapshot file
/// (in-memory: always healthy).
fn health(target: &Path, json: bool) -> Result<(), String> {
    let zoom = if target.join(zoom::warehouse::durable::MANIFEST).exists() {
        Zoom::open_durable(target).map_err(|e| e.to_string())?
    } else {
        load(target)?
    };
    let h = zoom.health();
    if json {
        out!("{}", h.to_json());
        return Ok(());
    }
    let status = if h.writable { "ok" } else { "degraded" };
    out!("status            : {status}");
    out!("state             : {}", h.state);
    out!("writable          : {}", h.writable);
    out!("durable           : {}", h.durable);
    out!("epoch             : {}", h.epoch);
    out!("breaker           : {}", h.breaker);
    out!("consec. failures  : {}", h.consecutive_failures);
    out!("breaker trips     : {}", h.breaker_trips);
    out!("breaker recoveries: {}", h.breaker_recoveries);
    out!("io retries        : {}", h.io_retries);
    out!("writes rejected   : {}", h.degraded_writes_rejected);
    out!("quarantines       : {}", h.quarantines);
    out!("repairs           : {}", h.repairs);
    Ok(())
}

/// Verifies a durable warehouse directory without modifying it.
fn fsck(dir: &Path) -> Result<(), String> {
    let report = zoom::warehouse::fsck(dir).map_err(|e| e.to_string())?;
    out!("{report}");
    Ok(())
}

fn render(
    path: &Path,
    name: &str,
    run_index: &str,
    view_name: &str,
    data: &str,
) -> Result<(), String> {
    let zoom = load(path)?;
    let sid = resolve_spec(&zoom, name)?;
    let rid = resolve_run(&zoom, sid, run_index)?;
    let vid = resolve_view(&zoom, sid, view_name)?;
    let d: DataId = data
        .strip_prefix('d')
        .unwrap_or(data)
        .parse::<u64>()
        .map(DataId)
        .map_err(|_| format!("`{data}` is not a data id"))?;
    let res = zoom
        .deep_provenance(rid, vid, d)
        .map_err(|e| e.to_string())?;
    let vr = zoom
        .warehouse()
        .view_run(rid, vid)
        .map_err(|e| e.to_string())?;
    let view = zoom.warehouse().view(vid).map_err(|e| e.to_string())?;
    out_raw!("{}", zoom::core::provenance_to_dot(&vr, view, &res));
    Ok(())
}

// ---------------------------------------------------------------------------
// Daemon mode (`--connect`)
// ---------------------------------------------------------------------------

/// Escapes a string for interpolation into hand-rolled JSON output. Any
/// name that flows from user input into a JSON document must pass through
/// here — a workflow or tenant named with `"` or `\` must not produce an
/// invalid document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn rerr(e: zoom::core::RemoteError) -> String {
    e.to_string()
}

fn dispatch_remote(addr: &str, tenant: &str, args: &[String]) -> Result<(), String> {
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    if matches!(cmd, "help" | "--help" | "-h") {
        out_raw!("{HELP}");
        return Ok(());
    }
    let mut rz = zoom::core::RemoteZoom::connect(addr, tenant)
        .map_err(|e| format!("cannot connect to `{addr}`: {e}"))?;
    match cmd {
        "ping" => {
            rz.ping().map_err(rerr)?;
            out!("pong from {addr}");
            Ok(())
        }
        "demo" => remote_demo(&mut rz, addr),
        "stats" => remote_stats(&mut rz, addr, tenant, &args[1..]),
        "slowlog" => remote_slowlog(&mut rz, &args[1..]),
        "policy" => remote_policy(&mut rz, &args[1..]),
        "health" => remote_health(&mut rz, args.iter().any(|a| a == "--json")),
        "build-view" => remote_build_view(&mut rz, str_arg(args, 1, "workflow name")?, &args[2..]),
        "query" => remote_query(
            &mut rz,
            str_arg(args, 1, "workflow name")?,
            str_arg(args, 2, "run index")?,
            str_arg(args, 3, "view name")?,
            str_arg(args, 4, "query text")?,
        ),
        "ingest" => remote_ingest(&mut rz, str_arg(args, 1, "workflow name")?, &args[2..]),
        "replay" => remote_replay(&mut rz, path_arg(args, 1)?, &args[2..]),
        "soak" => remote_soak(&mut rz, str_arg(args, 1, "session count")?),
        "compact" => {
            rz.checkpoint().map_err(rerr)?;
            out!("checkpointed every durable shard on {addr}");
            Ok(())
        }
        "shutdown" => {
            let token = args
                .iter()
                .position(|a| a == "--admin-token")
                .map(|i| str_arg(args, i + 1, "admin token"))
                .transpose()?;
            rz.shutdown(token).map_err(rerr)?;
            out!("daemon at {addr} stopped");
            Ok(())
        }
        other => Err(format!(
            "command `{other}` is not supported over --connect (see `zoomctl help`)"
        )),
    }
}

/// Loads the same demo workload `zoomctl demo` builds locally: the
/// phylogenomic workflow, three views, and the Figure 2 run.
fn remote_demo(rz: &mut zoom::core::RemoteZoom, addr: &str) -> Result<(), String> {
    use zoom_gen::library::{figure2_run, phylogenomic};
    let spec = phylogenomic();
    let sid = rz.register_workflow(spec.clone()).map_err(rerr)?;
    rz.admin_view(sid).map_err(rerr)?;
    rz.register_view(sid, UserView::black_box(&spec))
        .map_err(rerr)?;
    rz.build_view(sid, &["M2", "M3", "M7"]).map_err(rerr)?;
    let run = figure2_run(&spec);
    let log = zoom::model::EventLog::from_run(&run, &spec);
    let rid = rz.load_log(sid, &log).map_err(rerr)?;
    out!("demo loaded on {addr} (workflow `phylogenomic`, {rid}, 3 views)");
    Ok(())
}

/// Extracts `--admin-token TOK` from `rest`, returning the remaining
/// arguments and the token (if given).
fn split_admin_token(rest: &[String]) -> Result<(Vec<String>, Option<String>), String> {
    let mut out = Vec::with_capacity(rest.len());
    let mut token = None;
    let mut i = 0;
    while i < rest.len() {
        if rest[i] == "--admin-token" {
            i += 1;
            token = Some(
                rest.get(i)
                    .ok_or("missing value for --admin-token")?
                    .clone(),
            );
        } else {
            out.push(rest[i].clone());
        }
        i += 1;
    }
    Ok((out, token))
}

fn remote_stats(
    rz: &mut zoom::core::RemoteZoom,
    addr: &str,
    tenant: &str,
    rest: &[String],
) -> Result<(), String> {
    let (rest, token) = split_admin_token(rest)?;
    let json = rest.iter().any(|a| a == "--json");
    let shards = rz.stats_per_shard().map_err(rerr)?;
    let sessions = rz.session_count().map_err(rerr)?;
    let agg = zoom::warehouse::ShardRouter::aggregate_stats(&shards);
    if json {
        let per_shard: Vec<String> = rz
            .metrics_per_shard_admin(token.as_deref())
            .map_err(rerr)?
            .iter()
            .map(|m| m.to_json())
            .collect();
        out!(
            "{{\"addr\":\"{}\",\"tenant\":\"{}\",\"shards\":{},\"sessions\":{},\
             \"aggregate\":{},\"per_shard\":[{}]}}",
            json_escape(addr),
            json_escape(tenant),
            shards.len(),
            sessions,
            stats_json(&agg),
            per_shard.join(",")
        );
        return Ok(());
    }
    out!("shards       : {}", shards.len());
    out!("sessions     : {sessions}");
    out!("workflows    : {}", agg.specs);
    out!("views        : {}", agg.views);
    out!("runs         : {}", agg.runs);
    out!("steps        : {}", agg.steps);
    out!("data objects : {}", agg.data_objects);
    if agg.degraded {
        out!("degraded     : true (at least one shard is read-only)");
    }
    Ok(())
}

/// Hand-rolled JSON for one stats block (all-numeric; string fields in
/// the surrounding document go through [`json_escape`]).
fn stats_json(s: &zoom::warehouse::WarehouseStats) -> String {
    format!(
        "{{\"specs\":{},\"views\":{},\"runs\":{},\"steps\":{},\"data_objects\":{},\
         \"journal_records\":{},\"journal_bytes\":{},\"compactions\":{},\"epoch\":{},\
         \"degraded\":{}}}",
        s.specs,
        s.views,
        s.runs,
        s.steps,
        s.data_objects,
        s.journal_records,
        s.journal_bytes,
        s.compactions,
        s.epoch,
        s.degraded
    )
}

fn remote_slowlog(rz: &mut zoom::core::RemoteZoom, rest: &[String]) -> Result<(), String> {
    let (rest, token) = split_admin_token(rest)?;
    let mut threshold: Option<u64> = None;
    let mut json = false;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--json" => json = true,
            "--threshold-nanos" => {
                i += 1;
                threshold = Some(
                    rest.get(i)
                        .ok_or("missing value for --threshold-nanos")?
                        .parse()
                        .map_err(|_| "--threshold-nanos takes a nanosecond count".to_string())?,
                );
            }
            other => return Err(format!("unknown slowlog option `{other}`")),
        }
        i += 1;
    }
    let slow = rz
        .slow_queries_admin(threshold, token.as_deref())
        .map_err(rerr)?;
    if json {
        let rows: Vec<String> = slow
            .iter()
            .map(zoom::warehouse::metrics::slow_query_json)
            .collect();
        out!("[{}]", rows.join(","));
        return Ok(());
    }
    if slow.is_empty() {
        out!("no captured slow queries");
        return Ok(());
    }
    for q in &slow {
        out!(
            "{:>5} {:>10} {:<24} {:>6} {:>8} {:>12}",
            q.seq,
            q.kind.name(),
            q.view_name,
            q.run.0,
            q.data.map_or("-".to_string(), |d| format!("d{d}")),
            q.nanos
        );
    }
    Ok(())
}

/// `policy set|show|clear <tenant>` against a live daemon. Installation
/// and clearing are admin-gated (same rule as `shutdown`); a tenant may
/// read its own policy without a token.
fn remote_policy(rz: &mut zoom::core::RemoteZoom, rest: &[String]) -> Result<(), String> {
    let (rest, token) = split_admin_token(rest)?;
    let sub = rest.first().map(String::as_str).unwrap_or("");
    let subject = str_arg(&rest, 1, "tenant name")?.to_string();
    match sub {
        "set" => {
            let mut policy = VisibilityPolicy::default();
            let mut i = 2;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--hide-module" => {
                        i += 1;
                        policy.hidden_modules.push(
                            rest.get(i)
                                .ok_or("missing value for --hide-module")?
                                .clone(),
                        );
                    }
                    "--hide-workflow" => {
                        i += 1;
                        policy.hidden_workflows.push(
                            rest.get(i)
                                .ok_or("missing value for --hide-workflow")?
                                .clone(),
                        );
                    }
                    other => return Err(format!("unknown policy set option `{other}`")),
                }
                i += 1;
            }
            if policy.is_empty() {
                return Err("give at least one --hide-module or --hide-workflow \
                     (use `policy clear` to remove a policy)"
                    .to_string());
            }
            let modules = policy.hidden_modules.len();
            let workflows = policy.hidden_workflows.len();
            rz.set_policy(&subject, Some(policy), token.as_deref())
                .map_err(rerr)?;
            out!(
                "policy installed for `{subject}`: {modules} hidden module(s), \
                 {workflows} hidden workflow(s)"
            );
            Ok(())
        }
        "show" => {
            let json = rest.iter().any(|a| a == "--json");
            let policy = rz.policy(&subject, token.as_deref()).map_err(rerr)?;
            if json {
                match &policy {
                    None => out!(
                        "{{\"tenant\":\"{}\",\"policy\":null}}",
                        json_escape(&subject)
                    ),
                    Some(p) => {
                        let ms: Vec<String> = p
                            .hidden_modules
                            .iter()
                            .map(|m| format!("\"{}\"", json_escape(m)))
                            .collect();
                        let ws: Vec<String> = p
                            .hidden_workflows
                            .iter()
                            .map(|w| format!("\"{}\"", json_escape(w)))
                            .collect();
                        out!(
                            "{{\"tenant\":\"{}\",\"policy\":{{\"hidden_modules\":[{}],\
                             \"hidden_workflows\":[{}]}}}}",
                            json_escape(&subject),
                            ms.join(","),
                            ws.join(",")
                        );
                    }
                }
                return Ok(());
            }
            match policy {
                None => out!("no policy installed for `{subject}` (full visibility)"),
                Some(p) => {
                    out!("tenant           : {subject}");
                    out!("hidden modules   : {}", join_or_none(&p.hidden_modules));
                    out!("hidden workflows : {}", join_or_none(&p.hidden_workflows));
                }
            }
            Ok(())
        }
        "clear" => {
            rz.set_policy(&subject, None, token.as_deref())
                .map_err(rerr)?;
            out!("policy cleared for `{subject}` (full visibility restored)");
            Ok(())
        }
        other => Err(format!(
            "unknown policy subcommand `{other}` (set | show | clear)"
        )),
    }
}

fn join_or_none(items: &[String]) -> String {
    if items.is_empty() {
        "(none)".to_string()
    } else {
        items.join(", ")
    }
}

fn remote_health(rz: &mut zoom::core::RemoteZoom, json: bool) -> Result<(), String> {
    let shards = rz.health_per_shard().map_err(rerr)?;
    if json {
        // Per-shard breakdown: each report tagged with its shard index so
        // dashboards can address rows without relying on array order.
        let rows: Vec<String> = shards
            .iter()
            .enumerate()
            .map(|(i, h)| {
                let body = h.to_json();
                format!("{{\"shard\":{i},{}", &body[1..])
            })
            .collect();
        out!("[{}]", rows.join(","));
        return Ok(());
    }
    for (i, h) in shards.iter().enumerate() {
        out!(
            "shard {i:<3} {:<12} durable={} breaker={} epoch={} trips={} retries={} \
             quarantines={} repairs={} last_repair_ms={:.1}",
            h.state,
            h.durable,
            h.breaker,
            h.epoch,
            h.breaker_trips,
            h.io_retries,
            h.quarantines,
            h.repairs,
            h.last_repair_nanos as f64 / 1e6
        );
    }
    Ok(())
}

fn remote_build_view(
    rz: &mut zoom::core::RemoteZoom,
    workflow: &str,
    labels: &[String],
) -> Result<(), String> {
    if labels.is_empty() {
        return Err("give at least one relevant module label".to_string());
    }
    let (sid, _, _) = rz.resolve(workflow, None).map_err(rerr)?;
    let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
    let vid = rz.build_view(sid, &refs).map_err(rerr)?;
    out!("registered {vid} on the daemon");
    Ok(())
}

fn remote_query(
    rz: &mut zoom::core::RemoteZoom,
    workflow: &str,
    run_index: &str,
    view_name: &str,
    text: &str,
) -> Result<(), String> {
    let (_, vid, runs) = rz.resolve(workflow, Some(view_name)).map_err(rerr)?;
    let vid = vid.ok_or("view did not resolve")?;
    let i: usize = run_index
        .parse()
        .map_err(|_| format!("`{run_index}` is not a run index"))?;
    let rid = *runs
        .get(i)
        .ok_or_else(|| format!("run index {i} out of range"))?;
    let q = CannedQuery::parse(text).map_err(|e| e.to_string())?;
    let answer = zoom::core::execute_canned_remote(rz, rid, vid, &q).map_err(rerr)?;
    out!("{answer}");
    Ok(())
}

/// Streams run events into the daemon one at a time — the daemon-side
/// analog of `ingest`: the run is queryable (by any client) mid-stream.
fn remote_ingest(
    rz: &mut zoom::core::RemoteZoom,
    workflow: &str,
    rest: &[String],
) -> Result<(), String> {
    let mut source: Option<&str> = None;
    let mut follow = false;
    let mut seal_at_end = false;
    for a in rest {
        match a.as_str() {
            "--follow" => follow = true,
            "--seal" => seal_at_end = true,
            other if source.is_none() => source = Some(other),
            other => return Err(format!("unexpected ingest argument `{other}`")),
        }
    }
    let source = source.unwrap_or("-");
    let (sid, _, _) = rz.resolve(workflow, None).map_err(rerr)?;
    let rid = rz.begin_stream(sid).map_err(rerr)?;
    out!("streaming {rid} on `{workflow}`");

    let mut tick = 0u64;
    let mut events = 0usize;
    let mut committed = 0usize;
    let mut sealed = false;
    let mut push_line = |rz: &mut zoom::core::RemoteZoom, line: &str| -> Result<bool, String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(false);
        }
        tick += 1;
        let Some(ev) = parse_ingest_line(line, Timestamp(tick))? else {
            return Ok(true);
        };
        match rz.stream_push(rid, &ev).map_err(rerr)? {
            PushOutcome::Buffered => {}
            PushOutcome::Committed(steps) => {
                committed += steps.len();
                let ids: Vec<String> = steps.iter().map(|s| format!("{s}")).collect();
                out!("committed {}", ids.join(", "));
            }
        }
        events += 1;
        Ok(false)
    };

    if source == "-" {
        use std::io::BufRead;
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let line = line.map_err(|e| e.to_string())?;
            if push_line(rz, &line)? {
                sealed = true;
                break;
            }
        }
    } else {
        let path = Path::new(source);
        let mut offset = 0usize;
        'outer: loop {
            let content = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read `{source}`: {e}"))?;
            let new = &content[offset.min(content.len())..];
            let complete = new.rfind('\n').map(|i| i + 1).unwrap_or(0);
            for line in new[..complete].lines() {
                if push_line(rz, line)? {
                    sealed = true;
                    break 'outer;
                }
            }
            offset += complete;
            if !follow {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
    }

    if sealed || seal_at_end {
        rz.stream_seal(rid)
            .map_err(|e| format!("seal failed: {e}"))?;
        sealed = true;
    }
    out!(
        "ingested {events} events, {committed} steps committed, {rid} {}",
        if sealed { "sealed" } else { "left open" }
    );
    Ok(())
}

/// Re-executes a recorded trace against the daemon, digest-diffing every
/// operation exactly like the local `replay` — a fresh daemon allocates
/// the same id sequences, so a clean trace replays clean over the wire.
fn remote_replay(
    rz: &mut zoom::core::RemoteZoom,
    trace: &Path,
    rest: &[String],
) -> Result<(), String> {
    let mut check = false;
    let mut json = false;
    let mut speed = 0.0f64;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--check" => check = true,
            "--json" => json = true,
            "--speed" => {
                i += 1;
                speed = rest
                    .get(i)
                    .ok_or("missing value for --speed")?
                    .parse()
                    .map_err(|_| "--speed takes a number (0 = flat out)".to_string())?;
            }
            other => return Err(format!("unknown replay option `{other}`")),
        }
        i += 1;
    }
    let bytes =
        std::fs::read(trace).map_err(|e| format!("cannot read `{}`: {e}", trace.display()))?;
    let replayer = TraceReplayer::from_bytes(&bytes).map_err(|e| e.to_string())?;
    let report = replayer.replay(rz, &ReplayOptions { speed });
    if json {
        out!(
            "{{\"ops\":{},\"mismatches\":{},\"digest\":\"{:016x}\",\"recorded_nanos\":{},\"elapsed_nanos\":{},\"speedup\":{:.2}}}",
            report.ops,
            report.mismatches.len(),
            report.digest,
            report.recorded_nanos,
            report.elapsed_nanos,
            report.speedup()
        );
    } else {
        out!("ops          : {}", report.ops);
        out!("mismatches   : {}", report.mismatches.len());
        out!("digest       : {:016x}", report.digest);
        for m in report.mismatches.iter().take(10) {
            out!(
                "  op {} (clock {}, {}): expected {:016x}, got {:016x}",
                m.index,
                m.clock,
                m.op,
                m.expected,
                m.got
            );
        }
    }
    if check && !report.is_clean() {
        return Err(format!(
            "replay diverged: {} digest mismatches",
            report.mismatches.len()
        ));
    }
    Ok(())
}

/// Opens N logical sessions over this one connection, reads the daemon's
/// session gauge at the peak, then closes them all — the CI concurrency
/// smoke (`soak 1000`).
fn remote_soak(rz: &mut zoom::core::RemoteZoom, count: &str) -> Result<(), String> {
    let n: usize = count
        .parse()
        .map_err(|_| format!("`{count}` is not a session count"))?;
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        ids.push(rz.open_session().map_err(rerr)?);
    }
    let peak = rz.session_count().map_err(rerr)?;
    for id in ids {
        rz.close_session(id).map_err(rerr)?;
    }
    let after = rz.session_count().map_err(rerr)?;
    out!("soak: opened {n} sessions, daemon peak {peak}, {after} left after close");
    if (peak as usize) < n {
        return Err(format!("daemon peak {peak} below requested {n} sessions"));
    }
    Ok(())
}
