//! `zoomd` — the sharded multi-tenant provenance daemon.
//!
//! Serves the ZOOM provenance warehouse over the framed wire protocol of
//! `zoom_warehouse::wire`, hash-partitioning runs across N independent
//! warehouse shards:
//!
//! ```sh
//! zoomd --shards 8 --addr 127.0.0.1:7333 &          # in-memory shards
//! zoomd --dir /var/lib/zoomd --shards 8 &           # durable shards
//! zoomctl --connect 127.0.0.1:7333 demo
//! zoomctl --connect 127.0.0.1:7333 query phylogenomic 0 UAdmin "deep d15"
//! zoomctl --connect 127.0.0.1:7333 shutdown
//! ```
//!
//! The daemon prints `listening on <addr>` once the socket is bound (so
//! scripts binding port 0 can scrape the ephemeral port) and exits when a
//! client sends `Shutdown` — or when it receives SIGTERM/SIGINT, both of
//! which trigger the same graceful drain: stop accepting, let in-flight
//! connections finish under `--drain-deadline`, checkpoint every healthy
//! shard. If the deadline expires with sessions still open, the exit code
//! is nonzero so supervisors (systemd, test harnesses) can tell a clean
//! drain from an abandoned one.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use zoom::core::{Daemon, DaemonConfig};
use zoom::warehouse::TenantQuotas;

const HELP: &str = "\
zoomd — ZOOM*UserViews provenance daemon

usage:
  zoomd [--addr HOST:PORT] [--shards N] [--dir PATH] [--admin-token TOK]
        [--max-sessions N] [--max-in-flight N] [--max-queue N]
        [--supervise MS] [--drain-deadline MS]

  --addr HOST:PORT   bind address (default 127.0.0.1:7333; port 0 = ephemeral)
  --shards N         warehouse shards (default: one per core; pinned at
                     creation for durable dirs — reopen with the same N)
  --dir PATH         durable shards under PATH/shard-<i> (default: in-memory)
  --admin-token TOK  require TOK for remote shutdown; without it, shutdown
                     is honoured only from loopback clients
  --max-sessions N   per-tenant open-session cap
  --max-in-flight N  per-tenant in-flight request cap
  --max-queue N      per-tenant queued-request cap (past it, requests shed)
  --supervise MS     run the shard supervisor every MS milliseconds:
                     breaker-tripped shards are quarantined (writes answer
                     a typed retry-after refusal, reads keep serving) and
                     repaired online; 0 disables (default: disabled)
  --drain-deadline MS  how long a graceful shutdown (SIGTERM/SIGINT or the
                     wire Shutdown request) waits for in-flight connections
                     before force-closing them (default 5000)

Stop it with `zoomctl --connect <addr> shutdown [--admin-token TOK]`,
SIGTERM, or ctrl-C; all three drain gracefully. Exit status is nonzero if
the drain deadline expired with sessions still open.
";

/// Set by the signal handler; polled by the main loop. Signal-handler
/// safe: a store to an atomic is async-signal-safe, and everything else
/// (the drain itself) happens back on the main thread.
static SIGNALED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SIGNALED.store(true, Ordering::SeqCst);
}

/// Installs `on_signal` for SIGTERM (15) and SIGINT (2) via the C
/// `signal()` entry point that `std` already links. No `libc` crate in
/// the dependency tree, so the two constants are spelled here; they are
/// identical on every platform this builds for (POSIX).
fn install_signal_handlers() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler: extern "C" fn(i32) = on_signal;
        unsafe {
            signal(SIGTERM, handler as usize);
            signal(SIGINT, handler as usize);
        }
    }
}

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("zoomd: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut addr = "127.0.0.1:7333".to_string();
    let mut config = DaemonConfig::default();
    let mut quotas = TenantQuotas::default();
    let mut drain_deadline = Duration::from_millis(5000);
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        match flag {
            "--help" | "-h" | "help" => {
                print!("{HELP}");
                return Ok(ExitCode::SUCCESS);
            }
            "--addr" | "--shards" | "--dir" | "--admin-token" | "--max-sessions"
            | "--max-in-flight" | "--max-queue" | "--supervise" | "--drain-deadline" => {
                i += 1;
                let val = args
                    .get(i)
                    .ok_or_else(|| format!("missing value for {flag}"))?;
                let parse_n = |what: &str| -> Result<usize, String> {
                    val.parse::<usize>()
                        .map_err(|_| format!("{flag} takes {what}, got `{val}`"))
                };
                match flag {
                    "--addr" => addr = val.clone(),
                    "--shards" => config.shards = parse_n("a shard count")?,
                    "--dir" => config.dir = Some(PathBuf::from(val)),
                    "--admin-token" => config.admin_token = Some(val.clone()),
                    "--max-sessions" => quotas.max_sessions = parse_n("a session cap")?,
                    "--max-in-flight" => quotas.max_in_flight = parse_n("a request cap")?,
                    "--max-queue" => quotas.max_queue = parse_n("a queue length")?,
                    "--supervise" => {
                        let ms = parse_n("an interval in milliseconds")?;
                        config.supervise_interval =
                            (ms > 0).then(|| Duration::from_millis(ms as u64));
                    }
                    "--drain-deadline" => {
                        drain_deadline =
                            Duration::from_millis(parse_n("a deadline in milliseconds")? as u64);
                    }
                    _ => unreachable!("outer match gated the flag set"),
                }
            }
            other => return Err(format!("unknown option `{other}` (see `zoomd --help`)")),
        }
        i += 1;
    }
    config.quotas = quotas;
    install_signal_handlers();
    let mut daemon = Daemon::spawn(&addr, config).map_err(|e| e.to_string())?;
    // Scripts parse this line; keep its shape stable.
    println!(
        "listening on {} ({} shard(s))",
        daemon.addr(),
        daemon.shard_count()
    );
    // Wait for either a wire Shutdown (the accept loop exits) or a
    // signal; both funnel into the same graceful drain.
    while daemon.is_running() && !SIGNALED.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(25));
    }
    let report = daemon.drain(drain_deadline);
    eprintln!(
        "zoomd: drained in {:.1} ms ({} conns aborted, {} sessions left, checkpoint {})",
        report.nanos as f64 / 1e6,
        report.conns_aborted,
        report.sessions_remaining,
        if report.checkpointed { "ok" } else { "failed" }
    );
    if report.drained && report.sessions_remaining == 0 {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::from(3))
    }
}
