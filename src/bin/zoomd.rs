//! `zoomd` — the sharded multi-tenant provenance daemon.
//!
//! Serves the ZOOM provenance warehouse over the framed wire protocol of
//! `zoom_warehouse::wire`, hash-partitioning runs across N independent
//! warehouse shards:
//!
//! ```sh
//! zoomd --shards 8 --addr 127.0.0.1:7333 &          # in-memory shards
//! zoomd --dir /var/lib/zoomd --shards 8 &           # durable shards
//! zoomctl --connect 127.0.0.1:7333 demo
//! zoomctl --connect 127.0.0.1:7333 query phylogenomic 0 UAdmin "deep d15"
//! zoomctl --connect 127.0.0.1:7333 shutdown
//! ```
//!
//! The daemon prints `listening on <addr>` once the socket is bound (so
//! scripts binding port 0 can scrape the ephemeral port) and exits when a
//! client sends `Shutdown`.

use std::path::PathBuf;
use std::process::ExitCode;
use zoom::core::{Daemon, DaemonConfig};
use zoom::warehouse::TenantQuotas;

const HELP: &str = "\
zoomd — ZOOM*UserViews provenance daemon

usage:
  zoomd [--addr HOST:PORT] [--shards N] [--dir PATH] [--admin-token TOK]
        [--max-sessions N] [--max-in-flight N] [--max-queue N]

  --addr HOST:PORT   bind address (default 127.0.0.1:7333; port 0 = ephemeral)
  --shards N         warehouse shards (default: one per core; pinned at
                     creation for durable dirs — reopen with the same N)
  --dir PATH         durable shards under PATH/shard-<i> (default: in-memory)
  --admin-token TOK  require TOK for remote shutdown; without it, shutdown
                     is honoured only from loopback clients
  --max-sessions N   per-tenant open-session cap
  --max-in-flight N  per-tenant in-flight request cap
  --max-queue N      per-tenant queued-request cap (past it, requests shed)

Stop it with `zoomctl --connect <addr> shutdown [--admin-token TOK]`.
";

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("zoomd: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut addr = "127.0.0.1:7333".to_string();
    let mut config = DaemonConfig::default();
    let mut quotas = TenantQuotas::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        match flag {
            "--help" | "-h" | "help" => {
                print!("{HELP}");
                return Ok(());
            }
            "--addr" | "--shards" | "--dir" | "--admin-token" | "--max-sessions"
            | "--max-in-flight" | "--max-queue" => {
                i += 1;
                let val = args
                    .get(i)
                    .ok_or_else(|| format!("missing value for {flag}"))?;
                let parse_n = |what: &str| -> Result<usize, String> {
                    val.parse::<usize>()
                        .map_err(|_| format!("{flag} takes {what}, got `{val}`"))
                };
                match flag {
                    "--addr" => addr = val.clone(),
                    "--shards" => config.shards = parse_n("a shard count")?,
                    "--dir" => config.dir = Some(PathBuf::from(val)),
                    "--admin-token" => config.admin_token = Some(val.clone()),
                    "--max-sessions" => quotas.max_sessions = parse_n("a session cap")?,
                    "--max-in-flight" => quotas.max_in_flight = parse_n("a request cap")?,
                    "--max-queue" => quotas.max_queue = parse_n("a queue length")?,
                    _ => unreachable!("outer match gated the flag set"),
                }
            }
            other => return Err(format!("unknown option `{other}` (see `zoomd --help`)")),
        }
        i += 1;
    }
    config.quotas = quotas;
    let mut daemon = Daemon::spawn(&addr, config).map_err(|e| e.to_string())?;
    // Scripts parse this line; keep its shape stable.
    println!(
        "listening on {} ({} shard(s))",
        daemon.addr(),
        daemon.shard_count()
    );
    daemon.join();
    Ok(())
}
