/root/repo/target/release/deps/serde_derive-1cfecca116f64717.d: vendored/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-1cfecca116f64717.so: vendored/serde_derive/src/lib.rs

vendored/serde_derive/src/lib.rs:
