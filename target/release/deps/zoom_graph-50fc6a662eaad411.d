/root/repo/target/release/deps/zoom_graph-50fc6a662eaad411.d: crates/graph/src/lib.rs crates/graph/src/bitset.rs crates/graph/src/digraph.rs crates/graph/src/dot.rs crates/graph/src/traversal.rs crates/graph/src/algo/cycles.rs crates/graph/src/algo/paths.rs crates/graph/src/algo/reach.rs crates/graph/src/algo/scc.rs crates/graph/src/algo/topo.rs

/root/repo/target/release/deps/libzoom_graph-50fc6a662eaad411.rlib: crates/graph/src/lib.rs crates/graph/src/bitset.rs crates/graph/src/digraph.rs crates/graph/src/dot.rs crates/graph/src/traversal.rs crates/graph/src/algo/cycles.rs crates/graph/src/algo/paths.rs crates/graph/src/algo/reach.rs crates/graph/src/algo/scc.rs crates/graph/src/algo/topo.rs

/root/repo/target/release/deps/libzoom_graph-50fc6a662eaad411.rmeta: crates/graph/src/lib.rs crates/graph/src/bitset.rs crates/graph/src/digraph.rs crates/graph/src/dot.rs crates/graph/src/traversal.rs crates/graph/src/algo/cycles.rs crates/graph/src/algo/paths.rs crates/graph/src/algo/reach.rs crates/graph/src/algo/scc.rs crates/graph/src/algo/topo.rs

crates/graph/src/lib.rs:
crates/graph/src/bitset.rs:
crates/graph/src/digraph.rs:
crates/graph/src/dot.rs:
crates/graph/src/traversal.rs:
crates/graph/src/algo/cycles.rs:
crates/graph/src/algo/paths.rs:
crates/graph/src/algo/reach.rs:
crates/graph/src/algo/scc.rs:
crates/graph/src/algo/topo.rs:
