/root/repo/target/release/deps/parking_lot-660bab3fff2cdabb.d: vendored/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-660bab3fff2cdabb.rlib: vendored/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-660bab3fff2cdabb.rmeta: vendored/parking_lot/src/lib.rs

vendored/parking_lot/src/lib.rs:
