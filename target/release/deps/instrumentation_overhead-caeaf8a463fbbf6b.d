/root/repo/target/release/deps/instrumentation_overhead-caeaf8a463fbbf6b.d: crates/bench/benches/instrumentation_overhead.rs

/root/repo/target/release/deps/instrumentation_overhead-caeaf8a463fbbf6b: crates/bench/benches/instrumentation_overhead.rs

crates/bench/benches/instrumentation_overhead.rs:
