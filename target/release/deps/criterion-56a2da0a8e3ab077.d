/root/repo/target/release/deps/criterion-56a2da0a8e3ab077.d: vendored/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-56a2da0a8e3ab077.rlib: vendored/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-56a2da0a8e3ab077.rmeta: vendored/criterion/src/lib.rs

vendored/criterion/src/lib.rs:
