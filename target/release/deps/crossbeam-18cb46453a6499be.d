/root/repo/target/release/deps/crossbeam-18cb46453a6499be.d: vendored/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-18cb46453a6499be.rlib: vendored/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-18cb46453a6499be.rmeta: vendored/crossbeam/src/lib.rs

vendored/crossbeam/src/lib.rs:
