/root/repo/target/release/deps/zoom_model-231968e528097435.d: crates/model/src/lib.rs crates/model/src/composite.rs crates/model/src/error.rs crates/model/src/ids.rs crates/model/src/induced.rs crates/model/src/log.rs crates/model/src/run.rs crates/model/src/spec.rs crates/model/src/view.rs

/root/repo/target/release/deps/libzoom_model-231968e528097435.rlib: crates/model/src/lib.rs crates/model/src/composite.rs crates/model/src/error.rs crates/model/src/ids.rs crates/model/src/induced.rs crates/model/src/log.rs crates/model/src/run.rs crates/model/src/spec.rs crates/model/src/view.rs

/root/repo/target/release/deps/libzoom_model-231968e528097435.rmeta: crates/model/src/lib.rs crates/model/src/composite.rs crates/model/src/error.rs crates/model/src/ids.rs crates/model/src/induced.rs crates/model/src/log.rs crates/model/src/run.rs crates/model/src/spec.rs crates/model/src/view.rs

crates/model/src/lib.rs:
crates/model/src/composite.rs:
crates/model/src/error.rs:
crates/model/src/ids.rs:
crates/model/src/induced.rs:
crates/model/src/log.rs:
crates/model/src/run.rs:
crates/model/src/spec.rs:
crates/model/src/view.rs:
