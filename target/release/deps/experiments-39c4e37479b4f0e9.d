/root/repo/target/release/deps/experiments-39c4e37479b4f0e9.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-39c4e37479b4f0e9: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
