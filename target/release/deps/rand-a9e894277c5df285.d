/root/repo/target/release/deps/rand-a9e894277c5df285.d: vendored/rand/src/lib.rs

/root/repo/target/release/deps/librand-a9e894277c5df285.rlib: vendored/rand/src/lib.rs

/root/repo/target/release/deps/librand-a9e894277c5df285.rmeta: vendored/rand/src/lib.rs

vendored/rand/src/lib.rs:
