/root/repo/target/release/deps/provenance_query-86f97922d0af86ff.d: crates/bench/benches/provenance_query.rs

/root/repo/target/release/deps/provenance_query-86f97922d0af86ff: crates/bench/benches/provenance_query.rs

crates/bench/benches/provenance_query.rs:
