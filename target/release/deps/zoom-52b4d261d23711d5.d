/root/repo/target/release/deps/zoom-52b4d261d23711d5.d: src/lib.rs

/root/repo/target/release/deps/libzoom-52b4d261d23711d5.rlib: src/lib.rs

/root/repo/target/release/deps/libzoom-52b4d261d23711d5.rmeta: src/lib.rs

src/lib.rs:
