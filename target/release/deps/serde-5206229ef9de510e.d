/root/repo/target/release/deps/serde-5206229ef9de510e.d: vendored/serde/src/lib.rs vendored/serde/src/de.rs vendored/serde/src/ser.rs vendored/serde/src/impls.rs

/root/repo/target/release/deps/libserde-5206229ef9de510e.rlib: vendored/serde/src/lib.rs vendored/serde/src/de.rs vendored/serde/src/ser.rs vendored/serde/src/impls.rs

/root/repo/target/release/deps/libserde-5206229ef9de510e.rmeta: vendored/serde/src/lib.rs vendored/serde/src/de.rs vendored/serde/src/ser.rs vendored/serde/src/impls.rs

vendored/serde/src/lib.rs:
vendored/serde/src/de.rs:
vendored/serde/src/ser.rs:
vendored/serde/src/impls.rs:
