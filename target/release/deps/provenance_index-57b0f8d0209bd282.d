/root/repo/target/release/deps/provenance_index-57b0f8d0209bd282.d: crates/bench/benches/provenance_index.rs

/root/repo/target/release/deps/provenance_index-57b0f8d0209bd282: crates/bench/benches/provenance_index.rs

crates/bench/benches/provenance_index.rs:
