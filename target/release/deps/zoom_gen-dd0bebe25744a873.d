/root/repo/target/release/deps/zoom_gen-dd0bebe25744a873.d: crates/gen/src/lib.rs crates/gen/src/classes.rs crates/gen/src/library.rs crates/gen/src/rungen.rs crates/gen/src/specgen.rs crates/gen/src/stats.rs

/root/repo/target/release/deps/libzoom_gen-dd0bebe25744a873.rlib: crates/gen/src/lib.rs crates/gen/src/classes.rs crates/gen/src/library.rs crates/gen/src/rungen.rs crates/gen/src/specgen.rs crates/gen/src/stats.rs

/root/repo/target/release/deps/libzoom_gen-dd0bebe25744a873.rmeta: crates/gen/src/lib.rs crates/gen/src/classes.rs crates/gen/src/library.rs crates/gen/src/rungen.rs crates/gen/src/specgen.rs crates/gen/src/stats.rs

crates/gen/src/lib.rs:
crates/gen/src/classes.rs:
crates/gen/src/library.rs:
crates/gen/src/rungen.rs:
crates/gen/src/specgen.rs:
crates/gen/src/stats.rs:
