/root/repo/target/release/deps/zoom_core-b0fc0c63883d1ee8.d: crates/core/src/lib.rs crates/core/src/compare.rs crates/core/src/queries.rs crates/core/src/render.rs crates/core/src/session.rs crates/core/src/system.rs

/root/repo/target/release/deps/libzoom_core-b0fc0c63883d1ee8.rlib: crates/core/src/lib.rs crates/core/src/compare.rs crates/core/src/queries.rs crates/core/src/render.rs crates/core/src/session.rs crates/core/src/system.rs

/root/repo/target/release/deps/libzoom_core-b0fc0c63883d1ee8.rmeta: crates/core/src/lib.rs crates/core/src/compare.rs crates/core/src/queries.rs crates/core/src/render.rs crates/core/src/session.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/compare.rs:
crates/core/src/queries.rs:
crates/core/src/render.rs:
crates/core/src/session.rs:
crates/core/src/system.rs:
