/root/repo/target/release/deps/zoom_views-e3d8d0b11b136948.d: crates/views/src/lib.rs crates/views/src/builder.rs crates/views/src/compose.rs crates/views/src/interactive.rs crates/views/src/minimal.rs crates/views/src/minimum.rs crates/views/src/nrpath.rs crates/views/src/paper.rs crates/views/src/properties.rs

/root/repo/target/release/deps/libzoom_views-e3d8d0b11b136948.rlib: crates/views/src/lib.rs crates/views/src/builder.rs crates/views/src/compose.rs crates/views/src/interactive.rs crates/views/src/minimal.rs crates/views/src/minimum.rs crates/views/src/nrpath.rs crates/views/src/paper.rs crates/views/src/properties.rs

/root/repo/target/release/deps/libzoom_views-e3d8d0b11b136948.rmeta: crates/views/src/lib.rs crates/views/src/builder.rs crates/views/src/compose.rs crates/views/src/interactive.rs crates/views/src/minimal.rs crates/views/src/minimum.rs crates/views/src/nrpath.rs crates/views/src/paper.rs crates/views/src/properties.rs

crates/views/src/lib.rs:
crates/views/src/builder.rs:
crates/views/src/compose.rs:
crates/views/src/interactive.rs:
crates/views/src/minimal.rs:
crates/views/src/minimum.rs:
crates/views/src/nrpath.rs:
crates/views/src/paper.rs:
crates/views/src/properties.rs:
