/root/repo/target/release/deps/zoomctl-e74d8c1a8210c0be.d: src/bin/zoomctl.rs

/root/repo/target/release/deps/zoomctl-e74d8c1a8210c0be: src/bin/zoomctl.rs

src/bin/zoomctl.rs:
