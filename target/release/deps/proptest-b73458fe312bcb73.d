/root/repo/target/release/deps/proptest-b73458fe312bcb73.d: vendored/proptest/src/lib.rs vendored/proptest/src/strategy.rs

/root/repo/target/release/deps/libproptest-b73458fe312bcb73.rlib: vendored/proptest/src/lib.rs vendored/proptest/src/strategy.rs

/root/repo/target/release/deps/libproptest-b73458fe312bcb73.rmeta: vendored/proptest/src/lib.rs vendored/proptest/src/strategy.rs

vendored/proptest/src/lib.rs:
vendored/proptest/src/strategy.rs:
