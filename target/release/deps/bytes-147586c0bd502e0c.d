/root/repo/target/release/deps/bytes-147586c0bd502e0c.d: vendored/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-147586c0bd502e0c.rlib: vendored/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-147586c0bd502e0c.rmeta: vendored/bytes/src/lib.rs

vendored/bytes/src/lib.rs:
