/root/repo/target/release/examples/__tmp_mk_durable-2bc5e1bec0f1e73e.d: examples/__tmp_mk_durable.rs

/root/repo/target/release/examples/__tmp_mk_durable-2bc5e1bec0f1e73e: examples/__tmp_mk_durable.rs

examples/__tmp_mk_durable.rs:
