/root/repo/target/debug/deps/experiments-5bd425f39665e2b4.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-5bd425f39665e2b4: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
