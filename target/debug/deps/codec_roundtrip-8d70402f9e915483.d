/root/repo/target/debug/deps/codec_roundtrip-8d70402f9e915483.d: crates/warehouse/tests/codec_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libcodec_roundtrip-8d70402f9e915483.rmeta: crates/warehouse/tests/codec_roundtrip.rs Cargo.toml

crates/warehouse/tests/codec_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
