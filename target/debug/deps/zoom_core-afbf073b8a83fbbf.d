/root/repo/target/debug/deps/zoom_core-afbf073b8a83fbbf.d: crates/core/src/lib.rs crates/core/src/compare.rs crates/core/src/queries.rs crates/core/src/render.rs crates/core/src/session.rs crates/core/src/system.rs

/root/repo/target/debug/deps/zoom_core-afbf073b8a83fbbf: crates/core/src/lib.rs crates/core/src/compare.rs crates/core/src/queries.rs crates/core/src/render.rs crates/core/src/session.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/compare.rs:
crates/core/src/queries.rs:
crates/core/src/render.rs:
crates/core/src/session.rs:
crates/core/src/system.rs:
