/root/repo/target/debug/deps/proptest-de2e2501bc4139d1.d: vendored/proptest/src/lib.rs vendored/proptest/src/strategy.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-de2e2501bc4139d1.rmeta: vendored/proptest/src/lib.rs vendored/proptest/src/strategy.rs Cargo.toml

vendored/proptest/src/lib.rs:
vendored/proptest/src/strategy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
