/root/repo/target/debug/deps/proptest-e8c0f0573633837c.d: vendored/proptest/src/lib.rs vendored/proptest/src/strategy.rs

/root/repo/target/debug/deps/proptest-e8c0f0573633837c: vendored/proptest/src/lib.rs vendored/proptest/src/strategy.rs

vendored/proptest/src/lib.rs:
vendored/proptest/src/strategy.rs:
