/root/repo/target/debug/deps/warehouse_e2e-3c4067a42c2a4f0e.d: tests/warehouse_e2e.rs

/root/repo/target/debug/deps/warehouse_e2e-3c4067a42c2a4f0e: tests/warehouse_e2e.rs

tests/warehouse_e2e.rs:
