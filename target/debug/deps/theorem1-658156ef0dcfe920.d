/root/repo/target/debug/deps/theorem1-658156ef0dcfe920.d: crates/views/tests/theorem1.rs Cargo.toml

/root/repo/target/debug/deps/libtheorem1-658156ef0dcfe920.rmeta: crates/views/tests/theorem1.rs Cargo.toml

crates/views/tests/theorem1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
