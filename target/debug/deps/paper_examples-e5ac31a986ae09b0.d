/root/repo/target/debug/deps/paper_examples-e5ac31a986ae09b0.d: tests/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-e5ac31a986ae09b0: tests/paper_examples.rs

tests/paper_examples.rs:
