/root/repo/target/debug/deps/rand-0f366fe03e0b1bb3.d: vendored/rand/src/lib.rs

/root/repo/target/debug/deps/rand-0f366fe03e0b1bb3: vendored/rand/src/lib.rs

vendored/rand/src/lib.rs:
