/root/repo/target/debug/deps/zoom-cb11af1f036affd8.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libzoom-cb11af1f036affd8.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
