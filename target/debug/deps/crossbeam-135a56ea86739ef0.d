/root/repo/target/debug/deps/crossbeam-135a56ea86739ef0.d: vendored/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-135a56ea86739ef0.rlib: vendored/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-135a56ea86739ef0.rmeta: vendored/crossbeam/src/lib.rs

vendored/crossbeam/src/lib.rs:
