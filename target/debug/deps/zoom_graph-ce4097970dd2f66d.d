/root/repo/target/debug/deps/zoom_graph-ce4097970dd2f66d.d: crates/graph/src/lib.rs crates/graph/src/bitset.rs crates/graph/src/digraph.rs crates/graph/src/dot.rs crates/graph/src/traversal.rs crates/graph/src/algo/cycles.rs crates/graph/src/algo/paths.rs crates/graph/src/algo/reach.rs crates/graph/src/algo/scc.rs crates/graph/src/algo/topo.rs

/root/repo/target/debug/deps/libzoom_graph-ce4097970dd2f66d.rlib: crates/graph/src/lib.rs crates/graph/src/bitset.rs crates/graph/src/digraph.rs crates/graph/src/dot.rs crates/graph/src/traversal.rs crates/graph/src/algo/cycles.rs crates/graph/src/algo/paths.rs crates/graph/src/algo/reach.rs crates/graph/src/algo/scc.rs crates/graph/src/algo/topo.rs

/root/repo/target/debug/deps/libzoom_graph-ce4097970dd2f66d.rmeta: crates/graph/src/lib.rs crates/graph/src/bitset.rs crates/graph/src/digraph.rs crates/graph/src/dot.rs crates/graph/src/traversal.rs crates/graph/src/algo/cycles.rs crates/graph/src/algo/paths.rs crates/graph/src/algo/reach.rs crates/graph/src/algo/scc.rs crates/graph/src/algo/topo.rs

crates/graph/src/lib.rs:
crates/graph/src/bitset.rs:
crates/graph/src/digraph.rs:
crates/graph/src/dot.rs:
crates/graph/src/traversal.rs:
crates/graph/src/algo/cycles.rs:
crates/graph/src/algo/paths.rs:
crates/graph/src/algo/reach.rs:
crates/graph/src/algo/scc.rs:
crates/graph/src/algo/topo.rs:
