/root/repo/target/debug/deps/parking_lot-5e959bc9dfc090f9.d: vendored/parking_lot/src/lib.rs

/root/repo/target/debug/deps/parking_lot-5e959bc9dfc090f9: vendored/parking_lot/src/lib.rs

vendored/parking_lot/src/lib.rs:
