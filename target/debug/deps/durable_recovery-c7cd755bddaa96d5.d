/root/repo/target/debug/deps/durable_recovery-c7cd755bddaa96d5.d: crates/warehouse/tests/durable_recovery.rs

/root/repo/target/debug/deps/durable_recovery-c7cd755bddaa96d5: crates/warehouse/tests/durable_recovery.rs

crates/warehouse/tests/durable_recovery.rs:
