/root/repo/target/debug/deps/zoomctl-197877935afe9dbd.d: src/bin/zoomctl.rs

/root/repo/target/debug/deps/zoomctl-197877935afe9dbd: src/bin/zoomctl.rs

src/bin/zoomctl.rs:
