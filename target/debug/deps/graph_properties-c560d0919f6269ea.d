/root/repo/target/debug/deps/graph_properties-c560d0919f6269ea.d: crates/graph/tests/graph_properties.rs Cargo.toml

/root/repo/target/debug/deps/libgraph_properties-c560d0919f6269ea.rmeta: crates/graph/tests/graph_properties.rs Cargo.toml

crates/graph/tests/graph_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
