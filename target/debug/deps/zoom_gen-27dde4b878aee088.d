/root/repo/target/debug/deps/zoom_gen-27dde4b878aee088.d: crates/gen/src/lib.rs crates/gen/src/classes.rs crates/gen/src/library.rs crates/gen/src/rungen.rs crates/gen/src/specgen.rs crates/gen/src/stats.rs

/root/repo/target/debug/deps/zoom_gen-27dde4b878aee088: crates/gen/src/lib.rs crates/gen/src/classes.rs crates/gen/src/library.rs crates/gen/src/rungen.rs crates/gen/src/specgen.rs crates/gen/src/stats.rs

crates/gen/src/lib.rs:
crates/gen/src/classes.rs:
crates/gen/src/library.rs:
crates/gen/src/rungen.rs:
crates/gen/src/specgen.rs:
crates/gen/src/stats.rs:
