/root/repo/target/debug/deps/zoom_warehouse-111469290a1eb4c1.d: crates/warehouse/src/lib.rs crates/warehouse/src/cache.rs crates/warehouse/src/codec.rs crates/warehouse/src/durable.rs crates/warehouse/src/fxhash.rs crates/warehouse/src/index.rs crates/warehouse/src/io.rs crates/warehouse/src/journal.rs crates/warehouse/src/metrics.rs crates/warehouse/src/persist.rs crates/warehouse/src/query.rs crates/warehouse/src/schema.rs crates/warehouse/src/store.rs crates/warehouse/src/table.rs

/root/repo/target/debug/deps/libzoom_warehouse-111469290a1eb4c1.rlib: crates/warehouse/src/lib.rs crates/warehouse/src/cache.rs crates/warehouse/src/codec.rs crates/warehouse/src/durable.rs crates/warehouse/src/fxhash.rs crates/warehouse/src/index.rs crates/warehouse/src/io.rs crates/warehouse/src/journal.rs crates/warehouse/src/metrics.rs crates/warehouse/src/persist.rs crates/warehouse/src/query.rs crates/warehouse/src/schema.rs crates/warehouse/src/store.rs crates/warehouse/src/table.rs

/root/repo/target/debug/deps/libzoom_warehouse-111469290a1eb4c1.rmeta: crates/warehouse/src/lib.rs crates/warehouse/src/cache.rs crates/warehouse/src/codec.rs crates/warehouse/src/durable.rs crates/warehouse/src/fxhash.rs crates/warehouse/src/index.rs crates/warehouse/src/io.rs crates/warehouse/src/journal.rs crates/warehouse/src/metrics.rs crates/warehouse/src/persist.rs crates/warehouse/src/query.rs crates/warehouse/src/schema.rs crates/warehouse/src/store.rs crates/warehouse/src/table.rs

crates/warehouse/src/lib.rs:
crates/warehouse/src/cache.rs:
crates/warehouse/src/codec.rs:
crates/warehouse/src/durable.rs:
crates/warehouse/src/fxhash.rs:
crates/warehouse/src/index.rs:
crates/warehouse/src/io.rs:
crates/warehouse/src/journal.rs:
crates/warehouse/src/metrics.rs:
crates/warehouse/src/persist.rs:
crates/warehouse/src/query.rs:
crates/warehouse/src/schema.rs:
crates/warehouse/src/store.rs:
crates/warehouse/src/table.rs:
