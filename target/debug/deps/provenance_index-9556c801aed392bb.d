/root/repo/target/debug/deps/provenance_index-9556c801aed392bb.d: crates/bench/benches/provenance_index.rs

/root/repo/target/debug/deps/provenance_index-9556c801aed392bb: crates/bench/benches/provenance_index.rs

crates/bench/benches/provenance_index.rs:
