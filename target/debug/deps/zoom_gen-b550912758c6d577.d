/root/repo/target/debug/deps/zoom_gen-b550912758c6d577.d: crates/gen/src/lib.rs crates/gen/src/classes.rs crates/gen/src/library.rs crates/gen/src/rungen.rs crates/gen/src/specgen.rs crates/gen/src/stats.rs

/root/repo/target/debug/deps/libzoom_gen-b550912758c6d577.rlib: crates/gen/src/lib.rs crates/gen/src/classes.rs crates/gen/src/library.rs crates/gen/src/rungen.rs crates/gen/src/specgen.rs crates/gen/src/stats.rs

/root/repo/target/debug/deps/libzoom_gen-b550912758c6d577.rmeta: crates/gen/src/lib.rs crates/gen/src/classes.rs crates/gen/src/library.rs crates/gen/src/rungen.rs crates/gen/src/specgen.rs crates/gen/src/stats.rs

crates/gen/src/lib.rs:
crates/gen/src/classes.rs:
crates/gen/src/library.rs:
crates/gen/src/rungen.rs:
crates/gen/src/specgen.rs:
crates/gen/src/stats.rs:
