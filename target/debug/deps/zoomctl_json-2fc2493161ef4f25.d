/root/repo/target/debug/deps/zoomctl_json-2fc2493161ef4f25.d: tests/zoomctl_json.rs

/root/repo/target/debug/deps/zoomctl_json-2fc2493161ef4f25: tests/zoomctl_json.rs

tests/zoomctl_json.rs:

# env-dep:CARGO_BIN_EXE_zoomctl=/root/repo/target/debug/zoomctl
