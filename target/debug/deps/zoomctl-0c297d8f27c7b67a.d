/root/repo/target/debug/deps/zoomctl-0c297d8f27c7b67a.d: src/bin/zoomctl.rs

/root/repo/target/debug/deps/zoomctl-0c297d8f27c7b67a: src/bin/zoomctl.rs

src/bin/zoomctl.rs:
