/root/repo/target/debug/deps/warehouse_e2e-1dcfd6126819a987.d: tests/warehouse_e2e.rs

/root/repo/target/debug/deps/warehouse_e2e-1dcfd6126819a987: tests/warehouse_e2e.rs

tests/warehouse_e2e.rs:
