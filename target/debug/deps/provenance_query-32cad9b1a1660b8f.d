/root/repo/target/debug/deps/provenance_query-32cad9b1a1660b8f.d: crates/bench/benches/provenance_query.rs Cargo.toml

/root/repo/target/debug/deps/libprovenance_query-32cad9b1a1660b8f.rmeta: crates/bench/benches/provenance_query.rs Cargo.toml

crates/bench/benches/provenance_query.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
