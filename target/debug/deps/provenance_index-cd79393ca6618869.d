/root/repo/target/debug/deps/provenance_index-cd79393ca6618869.d: crates/bench/benches/provenance_index.rs Cargo.toml

/root/repo/target/debug/deps/libprovenance_index-cd79393ca6618869.rmeta: crates/bench/benches/provenance_index.rs Cargo.toml

crates/bench/benches/provenance_index.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
