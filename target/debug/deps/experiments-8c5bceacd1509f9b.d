/root/repo/target/debug/deps/experiments-8c5bceacd1509f9b.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-8c5bceacd1509f9b: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
