/root/repo/target/debug/deps/durable_recovery-df32d646a297cea9.d: crates/warehouse/tests/durable_recovery.rs Cargo.toml

/root/repo/target/debug/deps/libdurable_recovery-df32d646a297cea9.rmeta: crates/warehouse/tests/durable_recovery.rs Cargo.toml

crates/warehouse/tests/durable_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
