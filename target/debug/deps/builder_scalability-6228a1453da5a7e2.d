/root/repo/target/debug/deps/builder_scalability-6228a1453da5a7e2.d: crates/bench/benches/builder_scalability.rs Cargo.toml

/root/repo/target/debug/deps/libbuilder_scalability-6228a1453da5a7e2.rmeta: crates/bench/benches/builder_scalability.rs Cargo.toml

crates/bench/benches/builder_scalability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
