/root/repo/target/debug/deps/concurrent_queries-a66660b57ef80f22.d: tests/concurrent_queries.rs

/root/repo/target/debug/deps/concurrent_queries-a66660b57ef80f22: tests/concurrent_queries.rs

tests/concurrent_queries.rs:
