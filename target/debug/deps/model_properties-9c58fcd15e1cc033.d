/root/repo/target/debug/deps/model_properties-9c58fcd15e1cc033.d: crates/model/tests/model_properties.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_properties-9c58fcd15e1cc033.rmeta: crates/model/tests/model_properties.rs Cargo.toml

crates/model/tests/model_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
