/root/repo/target/debug/deps/zoom_warehouse-1a8225e31f4bd622.d: crates/warehouse/src/lib.rs crates/warehouse/src/cache.rs crates/warehouse/src/codec.rs crates/warehouse/src/fxhash.rs crates/warehouse/src/journal.rs crates/warehouse/src/persist.rs crates/warehouse/src/query.rs crates/warehouse/src/schema.rs crates/warehouse/src/store.rs crates/warehouse/src/table.rs

/root/repo/target/debug/deps/zoom_warehouse-1a8225e31f4bd622: crates/warehouse/src/lib.rs crates/warehouse/src/cache.rs crates/warehouse/src/codec.rs crates/warehouse/src/fxhash.rs crates/warehouse/src/journal.rs crates/warehouse/src/persist.rs crates/warehouse/src/query.rs crates/warehouse/src/schema.rs crates/warehouse/src/store.rs crates/warehouse/src/table.rs

crates/warehouse/src/lib.rs:
crates/warehouse/src/cache.rs:
crates/warehouse/src/codec.rs:
crates/warehouse/src/fxhash.rs:
crates/warehouse/src/journal.rs:
crates/warehouse/src/persist.rs:
crates/warehouse/src/query.rs:
crates/warehouse/src/schema.rs:
crates/warehouse/src/store.rs:
crates/warehouse/src/table.rs:
