/root/repo/target/debug/deps/zoom_gen-f8c8f90e78ada948.d: crates/gen/src/lib.rs crates/gen/src/classes.rs crates/gen/src/library.rs crates/gen/src/rungen.rs crates/gen/src/specgen.rs crates/gen/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libzoom_gen-f8c8f90e78ada948.rmeta: crates/gen/src/lib.rs crates/gen/src/classes.rs crates/gen/src/library.rs crates/gen/src/rungen.rs crates/gen/src/specgen.rs crates/gen/src/stats.rs Cargo.toml

crates/gen/src/lib.rs:
crates/gen/src/classes.rs:
crates/gen/src/library.rs:
crates/gen/src/rungen.rs:
crates/gen/src/specgen.rs:
crates/gen/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
