/root/repo/target/debug/deps/zoom_model-b6bb3b97a2116e87.d: crates/model/src/lib.rs crates/model/src/composite.rs crates/model/src/error.rs crates/model/src/ids.rs crates/model/src/induced.rs crates/model/src/log.rs crates/model/src/run.rs crates/model/src/spec.rs crates/model/src/view.rs

/root/repo/target/debug/deps/zoom_model-b6bb3b97a2116e87: crates/model/src/lib.rs crates/model/src/composite.rs crates/model/src/error.rs crates/model/src/ids.rs crates/model/src/induced.rs crates/model/src/log.rs crates/model/src/run.rs crates/model/src/spec.rs crates/model/src/view.rs

crates/model/src/lib.rs:
crates/model/src/composite.rs:
crates/model/src/error.rs:
crates/model/src/ids.rs:
crates/model/src/induced.rs:
crates/model/src/log.rs:
crates/model/src/run.rs:
crates/model/src/spec.rs:
crates/model/src/view.rs:
