/root/repo/target/debug/deps/graph_properties-aca9e48b5406debe.d: crates/graph/tests/graph_properties.rs

/root/repo/target/debug/deps/graph_properties-aca9e48b5406debe: crates/graph/tests/graph_properties.rs

crates/graph/tests/graph_properties.rs:
