/root/repo/target/debug/deps/zoom-6bbbcc685de89627.d: src/lib.rs

/root/repo/target/debug/deps/zoom-6bbbcc685de89627: src/lib.rs

src/lib.rs:
