/root/repo/target/debug/deps/zoom_views-bf0470942f9dc4f4.d: crates/views/src/lib.rs crates/views/src/builder.rs crates/views/src/compose.rs crates/views/src/interactive.rs crates/views/src/minimal.rs crates/views/src/minimum.rs crates/views/src/nrpath.rs crates/views/src/paper.rs crates/views/src/properties.rs

/root/repo/target/debug/deps/libzoom_views-bf0470942f9dc4f4.rlib: crates/views/src/lib.rs crates/views/src/builder.rs crates/views/src/compose.rs crates/views/src/interactive.rs crates/views/src/minimal.rs crates/views/src/minimum.rs crates/views/src/nrpath.rs crates/views/src/paper.rs crates/views/src/properties.rs

/root/repo/target/debug/deps/libzoom_views-bf0470942f9dc4f4.rmeta: crates/views/src/lib.rs crates/views/src/builder.rs crates/views/src/compose.rs crates/views/src/interactive.rs crates/views/src/minimal.rs crates/views/src/minimum.rs crates/views/src/nrpath.rs crates/views/src/paper.rs crates/views/src/properties.rs

crates/views/src/lib.rs:
crates/views/src/builder.rs:
crates/views/src/compose.rs:
crates/views/src/interactive.rs:
crates/views/src/minimal.rs:
crates/views/src/minimum.rs:
crates/views/src/nrpath.rs:
crates/views/src/paper.rs:
crates/views/src/properties.rs:
