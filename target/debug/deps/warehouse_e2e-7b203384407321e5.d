/root/repo/target/debug/deps/warehouse_e2e-7b203384407321e5.d: tests/warehouse_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libwarehouse_e2e-7b203384407321e5.rmeta: tests/warehouse_e2e.rs Cargo.toml

tests/warehouse_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
