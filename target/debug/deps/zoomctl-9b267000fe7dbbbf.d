/root/repo/target/debug/deps/zoomctl-9b267000fe7dbbbf.d: src/bin/zoomctl.rs Cargo.toml

/root/repo/target/debug/deps/libzoomctl-9b267000fe7dbbbf.rmeta: src/bin/zoomctl.rs Cargo.toml

src/bin/zoomctl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
