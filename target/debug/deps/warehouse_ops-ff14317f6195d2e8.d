/root/repo/target/debug/deps/warehouse_ops-ff14317f6195d2e8.d: crates/bench/benches/warehouse_ops.rs

/root/repo/target/debug/deps/warehouse_ops-ff14317f6195d2e8: crates/bench/benches/warehouse_ops.rs

crates/bench/benches/warehouse_ops.rs:
