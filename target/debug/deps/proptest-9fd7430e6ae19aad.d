/root/repo/target/debug/deps/proptest-9fd7430e6ae19aad.d: vendored/proptest/src/lib.rs vendored/proptest/src/strategy.rs

/root/repo/target/debug/deps/libproptest-9fd7430e6ae19aad.rlib: vendored/proptest/src/lib.rs vendored/proptest/src/strategy.rs

/root/repo/target/debug/deps/libproptest-9fd7430e6ae19aad.rmeta: vendored/proptest/src/lib.rs vendored/proptest/src/strategy.rs

vendored/proptest/src/lib.rs:
vendored/proptest/src/strategy.rs:
