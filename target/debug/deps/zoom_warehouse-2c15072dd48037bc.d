/root/repo/target/debug/deps/zoom_warehouse-2c15072dd48037bc.d: crates/warehouse/src/lib.rs crates/warehouse/src/cache.rs crates/warehouse/src/codec.rs crates/warehouse/src/durable.rs crates/warehouse/src/fxhash.rs crates/warehouse/src/index.rs crates/warehouse/src/io.rs crates/warehouse/src/journal.rs crates/warehouse/src/metrics.rs crates/warehouse/src/persist.rs crates/warehouse/src/query.rs crates/warehouse/src/schema.rs crates/warehouse/src/store.rs crates/warehouse/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libzoom_warehouse-2c15072dd48037bc.rmeta: crates/warehouse/src/lib.rs crates/warehouse/src/cache.rs crates/warehouse/src/codec.rs crates/warehouse/src/durable.rs crates/warehouse/src/fxhash.rs crates/warehouse/src/index.rs crates/warehouse/src/io.rs crates/warehouse/src/journal.rs crates/warehouse/src/metrics.rs crates/warehouse/src/persist.rs crates/warehouse/src/query.rs crates/warehouse/src/schema.rs crates/warehouse/src/store.rs crates/warehouse/src/table.rs Cargo.toml

crates/warehouse/src/lib.rs:
crates/warehouse/src/cache.rs:
crates/warehouse/src/codec.rs:
crates/warehouse/src/durable.rs:
crates/warehouse/src/fxhash.rs:
crates/warehouse/src/index.rs:
crates/warehouse/src/io.rs:
crates/warehouse/src/journal.rs:
crates/warehouse/src/metrics.rs:
crates/warehouse/src/persist.rs:
crates/warehouse/src/query.rs:
crates/warehouse/src/schema.rs:
crates/warehouse/src/store.rs:
crates/warehouse/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
