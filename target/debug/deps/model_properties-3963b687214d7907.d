/root/repo/target/debug/deps/model_properties-3963b687214d7907.d: crates/model/tests/model_properties.rs

/root/repo/target/debug/deps/model_properties-3963b687214d7907: crates/model/tests/model_properties.rs

crates/model/tests/model_properties.rs:
