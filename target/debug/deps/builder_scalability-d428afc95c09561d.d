/root/repo/target/debug/deps/builder_scalability-d428afc95c09561d.d: crates/bench/benches/builder_scalability.rs

/root/repo/target/debug/deps/builder_scalability-d428afc95c09561d: crates/bench/benches/builder_scalability.rs

crates/bench/benches/builder_scalability.rs:
