/root/repo/target/debug/deps/zoomctl-e6a2407d15147765.d: src/bin/zoomctl.rs Cargo.toml

/root/repo/target/debug/deps/libzoomctl-e6a2407d15147765.rmeta: src/bin/zoomctl.rs Cargo.toml

src/bin/zoomctl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
