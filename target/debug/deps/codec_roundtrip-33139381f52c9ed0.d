/root/repo/target/debug/deps/codec_roundtrip-33139381f52c9ed0.d: crates/warehouse/tests/codec_roundtrip.rs

/root/repo/target/debug/deps/codec_roundtrip-33139381f52c9ed0: crates/warehouse/tests/codec_roundtrip.rs

crates/warehouse/tests/codec_roundtrip.rs:
