/root/repo/target/debug/deps/parking_lot-ed3dbd6089e53b98.d: vendored/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparking_lot-ed3dbd6089e53b98.rmeta: vendored/parking_lot/src/lib.rs Cargo.toml

vendored/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
