/root/repo/target/debug/deps/warehouse_ops-1dec164772373c4e.d: crates/bench/benches/warehouse_ops.rs Cargo.toml

/root/repo/target/debug/deps/libwarehouse_ops-1dec164772373c4e.rmeta: crates/bench/benches/warehouse_ops.rs Cargo.toml

crates/bench/benches/warehouse_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
