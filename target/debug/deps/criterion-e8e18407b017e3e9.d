/root/repo/target/debug/deps/criterion-e8e18407b017e3e9.d: vendored/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-e8e18407b017e3e9.rmeta: vendored/criterion/src/lib.rs Cargo.toml

vendored/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
