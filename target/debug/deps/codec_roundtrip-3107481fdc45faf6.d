/root/repo/target/debug/deps/codec_roundtrip-3107481fdc45faf6.d: crates/warehouse/tests/codec_roundtrip.rs

/root/repo/target/debug/deps/codec_roundtrip-3107481fdc45faf6: crates/warehouse/tests/codec_roundtrip.rs

crates/warehouse/tests/codec_roundtrip.rs:
