/root/repo/target/debug/deps/proptest-2dc7843b7e22ab31.d: vendored/proptest/src/lib.rs vendored/proptest/src/strategy.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-2dc7843b7e22ab31.rmeta: vendored/proptest/src/lib.rs vendored/proptest/src/strategy.rs Cargo.toml

vendored/proptest/src/lib.rs:
vendored/proptest/src/strategy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
