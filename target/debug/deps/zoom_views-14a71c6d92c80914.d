/root/repo/target/debug/deps/zoom_views-14a71c6d92c80914.d: crates/views/src/lib.rs crates/views/src/builder.rs crates/views/src/compose.rs crates/views/src/interactive.rs crates/views/src/minimal.rs crates/views/src/minimum.rs crates/views/src/nrpath.rs crates/views/src/paper.rs crates/views/src/properties.rs Cargo.toml

/root/repo/target/debug/deps/libzoom_views-14a71c6d92c80914.rmeta: crates/views/src/lib.rs crates/views/src/builder.rs crates/views/src/compose.rs crates/views/src/interactive.rs crates/views/src/minimal.rs crates/views/src/minimum.rs crates/views/src/nrpath.rs crates/views/src/paper.rs crates/views/src/properties.rs Cargo.toml

crates/views/src/lib.rs:
crates/views/src/builder.rs:
crates/views/src/compose.rs:
crates/views/src/interactive.rs:
crates/views/src/minimal.rs:
crates/views/src/minimum.rs:
crates/views/src/nrpath.rs:
crates/views/src/paper.rs:
crates/views/src/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
