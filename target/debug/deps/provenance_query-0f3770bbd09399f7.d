/root/repo/target/debug/deps/provenance_query-0f3770bbd09399f7.d: crates/bench/benches/provenance_query.rs

/root/repo/target/debug/deps/provenance_query-0f3770bbd09399f7: crates/bench/benches/provenance_query.rs

crates/bench/benches/provenance_query.rs:
