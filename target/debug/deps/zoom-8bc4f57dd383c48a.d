/root/repo/target/debug/deps/zoom-8bc4f57dd383c48a.d: src/lib.rs

/root/repo/target/debug/deps/libzoom-8bc4f57dd383c48a.rlib: src/lib.rs

/root/repo/target/debug/deps/libzoom-8bc4f57dd383c48a.rmeta: src/lib.rs

src/lib.rs:
