/root/repo/target/debug/deps/zoomctl-843ce4a421e59932.d: src/bin/zoomctl.rs

/root/repo/target/debug/deps/zoomctl-843ce4a421e59932: src/bin/zoomctl.rs

src/bin/zoomctl.rs:
