/root/repo/target/debug/deps/bytes-21c90d9a342db893.d: vendored/bytes/src/lib.rs

/root/repo/target/debug/deps/bytes-21c90d9a342db893: vendored/bytes/src/lib.rs

vendored/bytes/src/lib.rs:
