/root/repo/target/debug/deps/instrumentation_overhead-e54e09b694ea5e36.d: crates/bench/benches/instrumentation_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libinstrumentation_overhead-e54e09b694ea5e36.rmeta: crates/bench/benches/instrumentation_overhead.rs Cargo.toml

crates/bench/benches/instrumentation_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
