/root/repo/target/debug/deps/zoom_core-4f8bf8b75f6e008d.d: crates/core/src/lib.rs crates/core/src/compare.rs crates/core/src/queries.rs crates/core/src/render.rs crates/core/src/session.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libzoom_core-4f8bf8b75f6e008d.rlib: crates/core/src/lib.rs crates/core/src/compare.rs crates/core/src/queries.rs crates/core/src/render.rs crates/core/src/session.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libzoom_core-4f8bf8b75f6e008d.rmeta: crates/core/src/lib.rs crates/core/src/compare.rs crates/core/src/queries.rs crates/core/src/render.rs crates/core/src/session.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/compare.rs:
crates/core/src/queries.rs:
crates/core/src/render.rs:
crates/core/src/session.rs:
crates/core/src/system.rs:
