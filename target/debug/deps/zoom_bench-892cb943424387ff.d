/root/repo/target/debug/deps/zoom_bench-892cb943424387ff.d: crates/bench/src/lib.rs crates/bench/src/experiments/fig10.rs crates/bench/src/experiments/fig11.rs crates/bench/src/experiments/open_problem.rs crates/bench/src/experiments/optimality.rs crates/bench/src/experiments/response.rs crates/bench/src/experiments/scalability.rs crates/bench/src/experiments/switching.rs crates/bench/src/experiments/table1.rs crates/bench/src/experiments/table2.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libzoom_bench-892cb943424387ff.rlib: crates/bench/src/lib.rs crates/bench/src/experiments/fig10.rs crates/bench/src/experiments/fig11.rs crates/bench/src/experiments/open_problem.rs crates/bench/src/experiments/optimality.rs crates/bench/src/experiments/response.rs crates/bench/src/experiments/scalability.rs crates/bench/src/experiments/switching.rs crates/bench/src/experiments/table1.rs crates/bench/src/experiments/table2.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libzoom_bench-892cb943424387ff.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/fig10.rs crates/bench/src/experiments/fig11.rs crates/bench/src/experiments/open_problem.rs crates/bench/src/experiments/optimality.rs crates/bench/src/experiments/response.rs crates/bench/src/experiments/scalability.rs crates/bench/src/experiments/switching.rs crates/bench/src/experiments/table1.rs crates/bench/src/experiments/table2.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/fig10.rs:
crates/bench/src/experiments/fig11.rs:
crates/bench/src/experiments/open_problem.rs:
crates/bench/src/experiments/optimality.rs:
crates/bench/src/experiments/response.rs:
crates/bench/src/experiments/scalability.rs:
crates/bench/src/experiments/switching.rs:
crates/bench/src/experiments/table1.rs:
crates/bench/src/experiments/table2.rs:
crates/bench/src/workloads.rs:
