/root/repo/target/debug/deps/zoom-35aad982b7ddf787.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libzoom-35aad982b7ddf787.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
