/root/repo/target/debug/deps/paper_examples-2eee2600cdad030a.d: tests/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-2eee2600cdad030a: tests/paper_examples.rs

tests/paper_examples.rs:
