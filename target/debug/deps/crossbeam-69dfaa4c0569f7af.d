/root/repo/target/debug/deps/crossbeam-69dfaa4c0569f7af.d: vendored/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrossbeam-69dfaa4c0569f7af.rmeta: vendored/crossbeam/src/lib.rs Cargo.toml

vendored/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
