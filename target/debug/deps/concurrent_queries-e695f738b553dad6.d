/root/repo/target/debug/deps/concurrent_queries-e695f738b553dad6.d: tests/concurrent_queries.rs Cargo.toml

/root/repo/target/debug/deps/libconcurrent_queries-e695f738b553dad6.rmeta: tests/concurrent_queries.rs Cargo.toml

tests/concurrent_queries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
