/root/repo/target/debug/deps/zoom_graph-f0ca750b2a4b9385.d: crates/graph/src/lib.rs crates/graph/src/bitset.rs crates/graph/src/digraph.rs crates/graph/src/dot.rs crates/graph/src/traversal.rs crates/graph/src/algo/cycles.rs crates/graph/src/algo/paths.rs crates/graph/src/algo/reach.rs crates/graph/src/algo/scc.rs crates/graph/src/algo/topo.rs Cargo.toml

/root/repo/target/debug/deps/libzoom_graph-f0ca750b2a4b9385.rmeta: crates/graph/src/lib.rs crates/graph/src/bitset.rs crates/graph/src/digraph.rs crates/graph/src/dot.rs crates/graph/src/traversal.rs crates/graph/src/algo/cycles.rs crates/graph/src/algo/paths.rs crates/graph/src/algo/reach.rs crates/graph/src/algo/scc.rs crates/graph/src/algo/topo.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/bitset.rs:
crates/graph/src/digraph.rs:
crates/graph/src/dot.rs:
crates/graph/src/traversal.rs:
crates/graph/src/algo/cycles.rs:
crates/graph/src/algo/paths.rs:
crates/graph/src/algo/reach.rs:
crates/graph/src/algo/scc.rs:
crates/graph/src/algo/topo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
