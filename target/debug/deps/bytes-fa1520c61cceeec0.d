/root/repo/target/debug/deps/bytes-fa1520c61cceeec0.d: vendored/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-fa1520c61cceeec0.rmeta: vendored/bytes/src/lib.rs Cargo.toml

vendored/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
