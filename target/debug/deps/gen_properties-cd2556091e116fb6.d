/root/repo/target/debug/deps/gen_properties-cd2556091e116fb6.d: crates/gen/tests/gen_properties.rs

/root/repo/target/debug/deps/gen_properties-cd2556091e116fb6: crates/gen/tests/gen_properties.rs

crates/gen/tests/gen_properties.rs:
