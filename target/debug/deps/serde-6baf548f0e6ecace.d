/root/repo/target/debug/deps/serde-6baf548f0e6ecace.d: vendored/serde/src/lib.rs vendored/serde/src/de.rs vendored/serde/src/ser.rs vendored/serde/src/impls.rs Cargo.toml

/root/repo/target/debug/deps/libserde-6baf548f0e6ecace.rmeta: vendored/serde/src/lib.rs vendored/serde/src/de.rs vendored/serde/src/ser.rs vendored/serde/src/impls.rs Cargo.toml

vendored/serde/src/lib.rs:
vendored/serde/src/de.rs:
vendored/serde/src/ser.rs:
vendored/serde/src/impls.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
