/root/repo/target/debug/deps/index_equivalence-7318f99de75557c7.d: tests/index_equivalence.rs

/root/repo/target/debug/deps/index_equivalence-7318f99de75557c7: tests/index_equivalence.rs

tests/index_equivalence.rs:
