/root/repo/target/debug/deps/concurrent_queries-011449730427cae9.d: tests/concurrent_queries.rs

/root/repo/target/debug/deps/concurrent_queries-011449730427cae9: tests/concurrent_queries.rs

tests/concurrent_queries.rs:
