/root/repo/target/debug/deps/parking_lot-4c2752f9e8525149.d: vendored/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparking_lot-4c2752f9e8525149.rmeta: vendored/parking_lot/src/lib.rs Cargo.toml

vendored/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
