/root/repo/target/debug/deps/zoom-ffb1abee0c02d422.d: src/lib.rs

/root/repo/target/debug/deps/libzoom-ffb1abee0c02d422.rlib: src/lib.rs

/root/repo/target/debug/deps/libzoom-ffb1abee0c02d422.rmeta: src/lib.rs

src/lib.rs:
