/root/repo/target/debug/deps/zoomctl_json-a3d6d8cf028b3608.d: tests/zoomctl_json.rs Cargo.toml

/root/repo/target/debug/deps/libzoomctl_json-a3d6d8cf028b3608.rmeta: tests/zoomctl_json.rs Cargo.toml

tests/zoomctl_json.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_zoomctl=placeholder:zoomctl
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
