/root/repo/target/debug/deps/bytes-cf5748976e65a8ec.d: vendored/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-cf5748976e65a8ec.rlib: vendored/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-cf5748976e65a8ec.rmeta: vendored/bytes/src/lib.rs

vendored/bytes/src/lib.rs:
