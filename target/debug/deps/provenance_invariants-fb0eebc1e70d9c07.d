/root/repo/target/debug/deps/provenance_invariants-fb0eebc1e70d9c07.d: tests/provenance_invariants.rs

/root/repo/target/debug/deps/provenance_invariants-fb0eebc1e70d9c07: tests/provenance_invariants.rs

tests/provenance_invariants.rs:
