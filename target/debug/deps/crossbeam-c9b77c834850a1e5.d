/root/repo/target/debug/deps/crossbeam-c9b77c834850a1e5.d: vendored/crossbeam/src/lib.rs

/root/repo/target/debug/deps/crossbeam-c9b77c834850a1e5: vendored/crossbeam/src/lib.rs

vendored/crossbeam/src/lib.rs:
