/root/repo/target/debug/deps/instrumentation_overhead-4c6d83146b109afb.d: crates/bench/benches/instrumentation_overhead.rs

/root/repo/target/debug/deps/instrumentation_overhead-4c6d83146b109afb: crates/bench/benches/instrumentation_overhead.rs

crates/bench/benches/instrumentation_overhead.rs:
