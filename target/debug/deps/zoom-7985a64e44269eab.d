/root/repo/target/debug/deps/zoom-7985a64e44269eab.d: src/lib.rs

/root/repo/target/debug/deps/zoom-7985a64e44269eab: src/lib.rs

src/lib.rs:
