/root/repo/target/debug/deps/criterion-704309903acb5507.d: vendored/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-704309903acb5507: vendored/criterion/src/lib.rs

vendored/criterion/src/lib.rs:
