/root/repo/target/debug/deps/zoom_core-292493fc9e62ebcb.d: crates/core/src/lib.rs crates/core/src/compare.rs crates/core/src/queries.rs crates/core/src/render.rs crates/core/src/session.rs crates/core/src/system.rs Cargo.toml

/root/repo/target/debug/deps/libzoom_core-292493fc9e62ebcb.rmeta: crates/core/src/lib.rs crates/core/src/compare.rs crates/core/src/queries.rs crates/core/src/render.rs crates/core/src/session.rs crates/core/src/system.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/compare.rs:
crates/core/src/queries.rs:
crates/core/src/render.rs:
crates/core/src/session.rs:
crates/core/src/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
