/root/repo/target/debug/deps/cli_smoke-84d618bf03422419.d: tests/cli_smoke.rs

/root/repo/target/debug/deps/cli_smoke-84d618bf03422419: tests/cli_smoke.rs

tests/cli_smoke.rs:

# env-dep:CARGO_BIN_EXE_zoomctl=/root/repo/target/debug/zoomctl
