/root/repo/target/debug/deps/zoom_bench-e9f3964b53f2ff65.d: crates/bench/src/lib.rs crates/bench/src/experiments/fig10.rs crates/bench/src/experiments/fig11.rs crates/bench/src/experiments/index_speedup.rs crates/bench/src/experiments/open_problem.rs crates/bench/src/experiments/optimality.rs crates/bench/src/experiments/response.rs crates/bench/src/experiments/scalability.rs crates/bench/src/experiments/switching.rs crates/bench/src/experiments/table1.rs crates/bench/src/experiments/table2.rs crates/bench/src/workloads.rs Cargo.toml

/root/repo/target/debug/deps/libzoom_bench-e9f3964b53f2ff65.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/fig10.rs crates/bench/src/experiments/fig11.rs crates/bench/src/experiments/index_speedup.rs crates/bench/src/experiments/open_problem.rs crates/bench/src/experiments/optimality.rs crates/bench/src/experiments/response.rs crates/bench/src/experiments/scalability.rs crates/bench/src/experiments/switching.rs crates/bench/src/experiments/table1.rs crates/bench/src/experiments/table2.rs crates/bench/src/workloads.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments/fig10.rs:
crates/bench/src/experiments/fig11.rs:
crates/bench/src/experiments/index_speedup.rs:
crates/bench/src/experiments/open_problem.rs:
crates/bench/src/experiments/optimality.rs:
crates/bench/src/experiments/response.rs:
crates/bench/src/experiments/scalability.rs:
crates/bench/src/experiments/switching.rs:
crates/bench/src/experiments/table1.rs:
crates/bench/src/experiments/table2.rs:
crates/bench/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
