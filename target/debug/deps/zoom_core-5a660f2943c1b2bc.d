/root/repo/target/debug/deps/zoom_core-5a660f2943c1b2bc.d: crates/core/src/lib.rs crates/core/src/compare.rs crates/core/src/queries.rs crates/core/src/render.rs crates/core/src/session.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libzoom_core-5a660f2943c1b2bc.rlib: crates/core/src/lib.rs crates/core/src/compare.rs crates/core/src/queries.rs crates/core/src/render.rs crates/core/src/session.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libzoom_core-5a660f2943c1b2bc.rmeta: crates/core/src/lib.rs crates/core/src/compare.rs crates/core/src/queries.rs crates/core/src/render.rs crates/core/src/session.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/compare.rs:
crates/core/src/queries.rs:
crates/core/src/render.rs:
crates/core/src/session.rs:
crates/core/src/system.rs:
