/root/repo/target/debug/deps/crossbeam-18a0ebba079e990f.d: vendored/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrossbeam-18a0ebba079e990f.rmeta: vendored/crossbeam/src/lib.rs Cargo.toml

vendored/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
