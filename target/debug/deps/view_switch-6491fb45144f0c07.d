/root/repo/target/debug/deps/view_switch-6491fb45144f0c07.d: crates/bench/benches/view_switch.rs Cargo.toml

/root/repo/target/debug/deps/libview_switch-6491fb45144f0c07.rmeta: crates/bench/benches/view_switch.rs Cargo.toml

crates/bench/benches/view_switch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
