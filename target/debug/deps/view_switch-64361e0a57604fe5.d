/root/repo/target/debug/deps/view_switch-64361e0a57604fe5.d: crates/bench/benches/view_switch.rs

/root/repo/target/debug/deps/view_switch-64361e0a57604fe5: crates/bench/benches/view_switch.rs

crates/bench/benches/view_switch.rs:
