/root/repo/target/debug/deps/gen_properties-7c58d47c738eac67.d: crates/gen/tests/gen_properties.rs Cargo.toml

/root/repo/target/debug/deps/libgen_properties-7c58d47c738eac67.rmeta: crates/gen/tests/gen_properties.rs Cargo.toml

crates/gen/tests/gen_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
