/root/repo/target/debug/deps/graph_algos-35152a98215f8ede.d: crates/bench/benches/graph_algos.rs

/root/repo/target/debug/deps/graph_algos-35152a98215f8ede: crates/bench/benches/graph_algos.rs

crates/bench/benches/graph_algos.rs:
