/root/repo/target/debug/deps/zoom_model-a8ff09a7a5593f6a.d: crates/model/src/lib.rs crates/model/src/composite.rs crates/model/src/error.rs crates/model/src/ids.rs crates/model/src/induced.rs crates/model/src/log.rs crates/model/src/run.rs crates/model/src/spec.rs crates/model/src/view.rs Cargo.toml

/root/repo/target/debug/deps/libzoom_model-a8ff09a7a5593f6a.rmeta: crates/model/src/lib.rs crates/model/src/composite.rs crates/model/src/error.rs crates/model/src/ids.rs crates/model/src/induced.rs crates/model/src/log.rs crates/model/src/run.rs crates/model/src/spec.rs crates/model/src/view.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/composite.rs:
crates/model/src/error.rs:
crates/model/src/ids.rs:
crates/model/src/induced.rs:
crates/model/src/log.rs:
crates/model/src/run.rs:
crates/model/src/spec.rs:
crates/model/src/view.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
