/root/repo/target/debug/deps/zoom_model-6157094a6f16f462.d: crates/model/src/lib.rs crates/model/src/composite.rs crates/model/src/error.rs crates/model/src/ids.rs crates/model/src/induced.rs crates/model/src/log.rs crates/model/src/run.rs crates/model/src/spec.rs crates/model/src/view.rs

/root/repo/target/debug/deps/libzoom_model-6157094a6f16f462.rlib: crates/model/src/lib.rs crates/model/src/composite.rs crates/model/src/error.rs crates/model/src/ids.rs crates/model/src/induced.rs crates/model/src/log.rs crates/model/src/run.rs crates/model/src/spec.rs crates/model/src/view.rs

/root/repo/target/debug/deps/libzoom_model-6157094a6f16f462.rmeta: crates/model/src/lib.rs crates/model/src/composite.rs crates/model/src/error.rs crates/model/src/ids.rs crates/model/src/induced.rs crates/model/src/log.rs crates/model/src/run.rs crates/model/src/spec.rs crates/model/src/view.rs

crates/model/src/lib.rs:
crates/model/src/composite.rs:
crates/model/src/error.rs:
crates/model/src/ids.rs:
crates/model/src/induced.rs:
crates/model/src/log.rs:
crates/model/src/run.rs:
crates/model/src/spec.rs:
crates/model/src/view.rs:
