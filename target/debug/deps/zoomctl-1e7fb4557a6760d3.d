/root/repo/target/debug/deps/zoomctl-1e7fb4557a6760d3.d: src/bin/zoomctl.rs

/root/repo/target/debug/deps/zoomctl-1e7fb4557a6760d3: src/bin/zoomctl.rs

src/bin/zoomctl.rs:
