/root/repo/target/debug/deps/index_equivalence-a270116fd112704f.d: tests/index_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libindex_equivalence-a270116fd112704f.rmeta: tests/index_equivalence.rs Cargo.toml

tests/index_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
