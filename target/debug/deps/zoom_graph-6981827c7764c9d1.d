/root/repo/target/debug/deps/zoom_graph-6981827c7764c9d1.d: crates/graph/src/lib.rs crates/graph/src/bitset.rs crates/graph/src/digraph.rs crates/graph/src/dot.rs crates/graph/src/traversal.rs crates/graph/src/algo/cycles.rs crates/graph/src/algo/paths.rs crates/graph/src/algo/reach.rs crates/graph/src/algo/scc.rs crates/graph/src/algo/topo.rs

/root/repo/target/debug/deps/zoom_graph-6981827c7764c9d1: crates/graph/src/lib.rs crates/graph/src/bitset.rs crates/graph/src/digraph.rs crates/graph/src/dot.rs crates/graph/src/traversal.rs crates/graph/src/algo/cycles.rs crates/graph/src/algo/paths.rs crates/graph/src/algo/reach.rs crates/graph/src/algo/scc.rs crates/graph/src/algo/topo.rs

crates/graph/src/lib.rs:
crates/graph/src/bitset.rs:
crates/graph/src/digraph.rs:
crates/graph/src/dot.rs:
crates/graph/src/traversal.rs:
crates/graph/src/algo/cycles.rs:
crates/graph/src/algo/paths.rs:
crates/graph/src/algo/reach.rs:
crates/graph/src/algo/scc.rs:
crates/graph/src/algo/topo.rs:
