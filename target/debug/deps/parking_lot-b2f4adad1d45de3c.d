/root/repo/target/debug/deps/parking_lot-b2f4adad1d45de3c.d: vendored/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-b2f4adad1d45de3c.rlib: vendored/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-b2f4adad1d45de3c.rmeta: vendored/parking_lot/src/lib.rs

vendored/parking_lot/src/lib.rs:
