/root/repo/target/debug/deps/experiments-ccf3bb826807f6ab.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-ccf3bb826807f6ab: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
