/root/repo/target/debug/deps/theorem1-0b736d3d70a6e81b.d: crates/views/tests/theorem1.rs

/root/repo/target/debug/deps/theorem1-0b736d3d70a6e81b: crates/views/tests/theorem1.rs

crates/views/tests/theorem1.rs:
