/root/repo/target/debug/deps/provenance_invariants-ecd383870d844dd6.d: tests/provenance_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libprovenance_invariants-ecd383870d844dd6.rmeta: tests/provenance_invariants.rs Cargo.toml

tests/provenance_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
