/root/repo/target/debug/deps/serde-3cc95d33e44e6a32.d: vendored/serde/src/lib.rs vendored/serde/src/de.rs vendored/serde/src/ser.rs vendored/serde/src/impls.rs

/root/repo/target/debug/deps/serde-3cc95d33e44e6a32: vendored/serde/src/lib.rs vendored/serde/src/de.rs vendored/serde/src/ser.rs vendored/serde/src/impls.rs

vendored/serde/src/lib.rs:
vendored/serde/src/de.rs:
vendored/serde/src/ser.rs:
vendored/serde/src/impls.rs:
