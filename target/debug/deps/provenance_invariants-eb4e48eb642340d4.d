/root/repo/target/debug/deps/provenance_invariants-eb4e48eb642340d4.d: tests/provenance_invariants.rs

/root/repo/target/debug/deps/provenance_invariants-eb4e48eb642340d4: tests/provenance_invariants.rs

tests/provenance_invariants.rs:
