/root/repo/target/debug/deps/cli_smoke-ecdaf2bde351b284.d: tests/cli_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libcli_smoke-ecdaf2bde351b284.rmeta: tests/cli_smoke.rs Cargo.toml

tests/cli_smoke.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_zoomctl=placeholder:zoomctl
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
