/root/repo/target/debug/deps/bytes-0a4f644e677bcb98.d: vendored/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-0a4f644e677bcb98.rmeta: vendored/bytes/src/lib.rs Cargo.toml

vendored/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
