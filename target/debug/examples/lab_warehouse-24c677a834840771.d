/root/repo/target/debug/examples/lab_warehouse-24c677a834840771.d: examples/lab_warehouse.rs Cargo.toml

/root/repo/target/debug/examples/liblab_warehouse-24c677a834840771.rmeta: examples/lab_warehouse.rs Cargo.toml

examples/lab_warehouse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
