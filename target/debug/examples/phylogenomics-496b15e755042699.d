/root/repo/target/debug/examples/phylogenomics-496b15e755042699.d: examples/phylogenomics.rs Cargo.toml

/root/repo/target/debug/examples/libphylogenomics-496b15e755042699.rmeta: examples/phylogenomics.rs Cargo.toml

examples/phylogenomics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
