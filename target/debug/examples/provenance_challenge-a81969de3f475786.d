/root/repo/target/debug/examples/provenance_challenge-a81969de3f475786.d: examples/provenance_challenge.rs

/root/repo/target/debug/examples/provenance_challenge-a81969de3f475786: examples/provenance_challenge.rs

examples/provenance_challenge.rs:
