/root/repo/target/debug/examples/phylogenomics-f4b1c47a1b96fb6e.d: examples/phylogenomics.rs

/root/repo/target/debug/examples/phylogenomics-f4b1c47a1b96fb6e: examples/phylogenomics.rs

examples/phylogenomics.rs:
