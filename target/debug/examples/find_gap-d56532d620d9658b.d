/root/repo/target/debug/examples/find_gap-d56532d620d9658b.d: crates/views/examples/find_gap.rs

/root/repo/target/debug/examples/find_gap-d56532d620d9658b: crates/views/examples/find_gap.rs

crates/views/examples/find_gap.rs:
