/root/repo/target/debug/examples/lab_warehouse-476d2f8ae4e9a710.d: examples/lab_warehouse.rs

/root/repo/target/debug/examples/lab_warehouse-476d2f8ae4e9a710: examples/lab_warehouse.rs

examples/lab_warehouse.rs:
