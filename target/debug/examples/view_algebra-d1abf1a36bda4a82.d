/root/repo/target/debug/examples/view_algebra-d1abf1a36bda4a82.d: examples/view_algebra.rs

/root/repo/target/debug/examples/view_algebra-d1abf1a36bda4a82: examples/view_algebra.rs

examples/view_algebra.rs:
