/root/repo/target/debug/examples/provenance_challenge-a630fe048cb4f8b5.d: examples/provenance_challenge.rs Cargo.toml

/root/repo/target/debug/examples/libprovenance_challenge-a630fe048cb4f8b5.rmeta: examples/provenance_challenge.rs Cargo.toml

examples/provenance_challenge.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
