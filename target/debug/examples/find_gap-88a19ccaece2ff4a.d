/root/repo/target/debug/examples/find_gap-88a19ccaece2ff4a.d: crates/views/examples/find_gap.rs Cargo.toml

/root/repo/target/debug/examples/libfind_gap-88a19ccaece2ff4a.rmeta: crates/views/examples/find_gap.rs Cargo.toml

crates/views/examples/find_gap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
