/root/repo/target/debug/examples/view_algebra-b2018da8a5413ac0.d: examples/view_algebra.rs Cargo.toml

/root/repo/target/debug/examples/libview_algebra-b2018da8a5413ac0.rmeta: examples/view_algebra.rs Cargo.toml

examples/view_algebra.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
