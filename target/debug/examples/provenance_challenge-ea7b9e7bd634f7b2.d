/root/repo/target/debug/examples/provenance_challenge-ea7b9e7bd634f7b2.d: examples/provenance_challenge.rs

/root/repo/target/debug/examples/provenance_challenge-ea7b9e7bd634f7b2: examples/provenance_challenge.rs

examples/provenance_challenge.rs:
