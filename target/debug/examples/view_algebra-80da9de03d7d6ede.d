/root/repo/target/debug/examples/view_algebra-80da9de03d7d6ede.d: examples/view_algebra.rs

/root/repo/target/debug/examples/view_algebra-80da9de03d7d6ede: examples/view_algebra.rs

examples/view_algebra.rs:
