/root/repo/target/debug/examples/quickstart-8705a10fd1d51ec9.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-8705a10fd1d51ec9: examples/quickstart.rs

examples/quickstart.rs:
