/root/repo/target/debug/examples/phylogenomics-9e88e87e422e3847.d: examples/phylogenomics.rs

/root/repo/target/debug/examples/phylogenomics-9e88e87e422e3847: examples/phylogenomics.rs

examples/phylogenomics.rs:
