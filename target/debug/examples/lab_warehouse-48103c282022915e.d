/root/repo/target/debug/examples/lab_warehouse-48103c282022915e.d: examples/lab_warehouse.rs

/root/repo/target/debug/examples/lab_warehouse-48103c282022915e: examples/lab_warehouse.rs

examples/lab_warehouse.rs:
