/root/repo/target/debug/examples/quickstart-f7c74679c34ced5a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f7c74679c34ced5a: examples/quickstart.rs

examples/quickstart.rs:
