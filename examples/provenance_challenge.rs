//! The First Provenance Challenge, through user views.
//!
//! The paper's provenance model was the authors' entry to the First
//! Provenance Challenge (references [5], [6]). This example loads the
//! challenge's fMRI workflow — four anatomy images aligned, resliced,
//! averaged, sliced along three axes, and converted to atlas graphics —
//! and answers challenge-style queries at three view levels, including the
//! challenge's signature Query 1: *"find the process that led to Atlas X
//! Graphic"*.
//!
//! ```sh
//! cargo run --example provenance_challenge
//! ```

use zoom::core::{execute_canned, CannedQuery};
use zoom::model::DataId;
use zoom::Zoom;
use zoom_gen::library::{provenance_challenge, provenance_challenge_run};

fn main() {
    let spec = provenance_challenge();
    let run = provenance_challenge_run(&spec);
    println!(
        "challenge workflow: {} modules; canonical run: {} steps, {} data objects\n",
        spec.module_count(),
        run.step_count(),
        run.data_count()
    );

    let mut zoom = Zoom::new();
    let sid = zoom.register_workflow(spec.clone()).expect("fresh");
    let admin = zoom.admin_view(sid).expect("admin");
    // A neuroscientist's view: alignment details are plumbing; what matters
    // is the averaging and the slicing.
    let science = zoom
        .build_view(sid, &["Softmean", "Slicer"])
        .expect("good view");
    let blackbox = zoom.black_box_view(sid).expect("blackbox");
    let rid = zoom.load_run(sid, run).expect("loads");

    let view_of = |v| zoom.warehouse().view(v).expect("registered");
    println!("views:");
    for v in [admin, science, blackbox] {
        let view = view_of(v);
        println!("  {:<12} size {}", view.name(), view.size());
    }

    // Challenge Query 1: the process that led to Atlas X Graphic (d21).
    println!("\nQ1 — everything that led to Atlas X Graphic (d21):");
    for (who, v) in [
        ("admin", admin),
        ("science", science),
        ("blackbox", blackbox),
    ] {
        let res = zoom.deep_provenance(rid, v, DataId(21)).expect("visible");
        println!(
            "  {who:<9}: {} tuples, {} execution(s)",
            res.tuples(),
            res.exec_count()
        );
    }

    // At the science view, alignment and reslicing collapse into the
    // Softmean composite: the answer names the averaged atlas and the raw
    // inputs, not the warp parameters.
    let vr = zoom
        .warehouse()
        .view_run(rid, science)
        .expect("materialized");
    let res = zoom
        .deep_provenance(rid, science, DataId(21))
        .expect("visible");
    println!("\nthe science-level provenance graph of d21:");
    print!(
        "{}",
        zoom::core::provenance_to_text(&vr, view_of(science), &res)
    );

    // Challenge-style forward query: everything affected by the second
    // anatomy image (d3).
    let q = CannedQuery::parse("dependents d3").expect("parses");
    let ans = execute_canned(&zoom, rid, admin, &q).expect("answers");
    println!("\neverything derived from anatomy image d3:\n  {ans}");

    // Edge inspection: what flowed from Softmean's execution to the first
    // slicer at the admin level? (S9 is the softmean step.)
    let q = CannedQuery::parse("between S9 S10").expect("parses");
    let ans = execute_canned(&zoom, rid, admin, &q).expect("answers");
    println!("\ndata from softmean (S9) to the first slicer (S10):\n  {ans}");
}
