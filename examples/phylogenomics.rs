//! A domain walkthrough: a biologist explores provenance interactively.
//!
//! Simulates the Section IV user experience on the phylogenomic workflow:
//! flag/unflag relevant modules and watch the view evolve; run the workflow
//! several times (the generator unrolls the alignment loop differently per
//! run); focus a data object; switch between views and observe how much
//! provenance each level reveals; and ask the canned forward query.
//!
//! ```sh
//! cargo run --example phylogenomics
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use zoom::model::DataId;
use zoom::{QuerySession, Zoom};
use zoom_gen::library::phylogenomic;
use zoom_gen::{generate_run, RunGenConfig, RunKind};
use zoom_views::InteractiveViewBuilder;

fn main() {
    let spec = phylogenomic();

    // --- 1. Interactive view building: the user flags modules one by one
    // and the good view is rebuilt each time (Section IV).
    println!("== Interactive view building ==");
    let mut builder = InteractiveViewBuilder::new(&spec);
    for label in ["M3", "M7", "M2"] {
        builder.flag(label).expect("module exists");
        let built = builder.current().expect("builder succeeds");
        println!(
            "flag {label:<3} -> view of size {} ({} non-relevant composite(s))",
            built.view.size(),
            built.non_relevant_composites
        );
    }
    // A second thought: unflag M2 again.
    builder.unflag("M2").expect("module exists");
    let built = builder.current().expect("builder succeeds");
    println!("unflag M2 -> view of size {}", built.view.size());
    builder.flag("M2").expect("module exists");

    // --- 2. Register everything with ZOOM.
    let mut zoom = Zoom::new();
    let sid = zoom.register_workflow(spec.clone()).expect("fresh spec");
    let joe = zoom
        .build_view(sid, &["M2", "M3", "M7"])
        .expect("good view");
    let mary = zoom
        .build_view(sid, &["M2", "M3", "M5", "M7"])
        .expect("good view");
    let admin = zoom.admin_view(sid).expect("admin");
    let blackbox = zoom.black_box_view(sid).expect("blackbox");

    // --- 3. Execute the workflow three times ("workflows may be executed
    // several times a month"): simulated runs with different loop counts.
    let mut rng = StdRng::seed_from_u64(2008);
    let mut runs = Vec::new();
    for i in 0..3 {
        let run = generate_run(&spec, &RunGenConfig::for_kind(RunKind::Medium), &mut rng)
            .expect("valid run");
        println!(
            "\nrun {}: {} steps, {} data objects",
            i + 1,
            run.step_count(),
            run.data_count()
        );
        runs.push(zoom.load_run(sid, run).expect("loads"));
    }

    // --- 4. A query session on the latest run: focus the final tree and
    // zoom through the view levels.
    println!("\n== Query session on the latest run ==");
    let rid = *runs.last().expect("three runs");
    let mut session = QuerySession::new(&zoom, rid, admin);
    let res = session.focus_final_output().expect("final output visible");
    println!(
        "UAdmin   : {} tuples, {} executions",
        res.tuples(),
        res.exec_count()
    );
    for (name, v) in [("Joe", joe), ("Mary", mary), ("UBlackBox", blackbox)] {
        let res = session.switch_view(v).expect("final output always visible");
        println!(
            "{name:<9}: {} tuples, {} executions",
            res.tuples(),
            res.exec_count()
        );
    }
    println!(
        "query timings: {:?}",
        session
            .history()
            .iter()
            .map(|(_, d)| format!("{d:.1?}"))
            .collect::<Vec<_>>()
    );

    // --- 5. The canned forward query: what depends on the alignment?
    println!("\n== Forward provenance ==");
    let vr = zoom.warehouse().view_run(rid, admin).expect("materialized");
    // Pick the first data object produced by an M3 (alignment) step.
    let run = zoom.warehouse().run(rid).expect("loaded");
    let m3 = spec.module("M3").expect("exists");
    let alignment_datum: DataId = run
        .steps()
        .filter(|&(_, m)| m == m3)
        .filter_map(|(s, _)| run.outputs_of(s).ok())
        .flatten()
        .find(|&d| vr.is_visible(d))
        .expect("some alignment output is visible");
    let dependents = zoom
        .dependents_of(rid, admin, alignment_datum)
        .expect("visible");
    println!(
        "{} data object(s) depend on alignment output {alignment_datum}",
        dependents.len()
    );

    // --- 5b. Reproducibility check: compare two runs at two view levels.
    // The runs differ in loop iterations; Joe's view (which folds the
    // alignment loop into one composite) may hide exactly that difference.
    println!("\n== Run comparison (reproducibility) ==");
    let (ra, rb) = (runs[0], runs[1]);
    for (name, v) in [("UAdmin", admin), ("Joe", joe)] {
        let vra = zoom.warehouse().view_run(ra, v).expect("materializes");
        let vrb = zoom.warehouse().view_run(rb, v).expect("materializes");
        let cmp = zoom::core::compare_view_runs(&vra, &vrb);
        println!(
            "{name:<7}: {} aligned, {} divergence(s){}",
            cmp.matched.len(),
            cmp.divergences(),
            if cmp.identical_shape() {
                " — indistinguishable at this level"
            } else {
                ""
            }
        );
    }

    // --- 6. Immediate provenance of a user input resolves to metadata.
    let ui = run.user_inputs()[0];
    match zoom
        .immediate_provenance(rid, admin, ui)
        .expect("user input visible")
    {
        zoom::core::ImmediateAnswer::UserInput { meta } => {
            let meta = meta.expect("recorded");
            println!("{ui} was provided by `{}` at {}", meta.user, meta.time);
        }
        other => panic!("unexpected {other:?}"),
    }
}
