//! A simulated laboratory's provenance warehouse.
//!
//! Section V sizes the evaluation as "what would happen in a large
//! laboratory with 40 workflows, each of which is executed about twice a
//! week". This example builds that lab: 10 real (curated) workflows plus 30
//! synthetic ones across the Table I classes, eight runs each, a UBio view
//! per workflow, everything persisted to a snapshot and reloaded.
//!
//! ```sh
//! cargo run --release --example lab_warehouse
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use zoom::model::ModuleKind;
use zoom::Zoom;
use zoom_gen::{
    generate_run, generate_spec, library, RunGenConfig, RunKind, SpecGenConfig, WorkflowClass,
};

fn main() {
    let mut rng = StdRng::seed_from_u64(40);
    let mut zoom = Zoom::new();

    // --- 1. Forty workflows: ten from the curated library plus 10 per
    // synthetic class.
    let mut specs: Vec<_> = library::real_workflows().into_iter().take(10).collect();
    for class in [
        WorkflowClass::Linear,
        WorkflowClass::Parallel,
        WorkflowClass::Loop,
    ] {
        for i in 0..10 {
            specs.push(generate_spec(
                &format!("{}-{}", class.label(), i + 1),
                &SpecGenConfig::new(class, 20),
                &mut rng,
            ));
        }
    }
    assert_eq!(specs.len(), 40);

    let mut total_runs = 0usize;
    for spec in specs {
        let sid = zoom.register_workflow(spec.clone()).expect("unique names");

        // A UBio view: the biologist flags the analysis (non-formatting)
        // modules as relevant.
        let relevant: Vec<&str> = spec
            .module_ids()
            .filter(|&m| spec.kind(m) == ModuleKind::Analysis)
            .map(|m| spec.label(m))
            .collect();
        zoom.build_view(sid, &relevant).expect("good view");
        zoom.admin_view(sid).expect("admin");
        zoom.black_box_view(sid).expect("blackbox");

        // Eight runs (about a month at twice a week), mixed sizes.
        for r in 0..8 {
            let kind = match r % 3 {
                0 => RunKind::Small,
                1 => RunKind::Medium,
                _ => RunKind::Large,
            };
            let run =
                generate_run(&spec, &RunGenConfig::for_kind(kind), &mut rng).expect("valid run");
            zoom.load_run(sid, run).expect("loads");
            total_runs += 1;
        }
    }

    let stats = zoom.warehouse().stats();
    println!("lab warehouse loaded:");
    println!("  workflows    : {}", stats.specs);
    println!("  user views   : {}", stats.views);
    println!("  runs         : {} (loaded {total_runs})", stats.runs);
    println!("  steps        : {}", stats.steps);
    println!("  data objects : {}", stats.data_objects);

    // --- 2. Query every run's final output through its UBio view.
    let mut tuples_admin = 0usize;
    let mut tuples_bio = 0usize;
    let mut tuples_bb = 0usize;
    for sid in (0..stats.specs as u32).map(zoom::core::SpecId) {
        let spec_name = zoom
            .warehouse()
            .spec(sid)
            .expect("registered")
            .name()
            .to_string();
        let bio = zoom
            .warehouse()
            .views_of_spec(sid)
            .iter()
            .copied()
            .find(|&v| {
                zoom.warehouse()
                    .view(v)
                    .is_ok_and(|vw| vw.name().starts_with("UV("))
            })
            .unwrap_or_else(|| panic!("UBio view registered for {spec_name}"));
        let admin = zoom.warehouse().find_view(sid, "UAdmin").expect("admin");
        let bb = zoom
            .warehouse()
            .find_view(sid, "UBlackBox")
            .expect("blackbox");
        for &rid in zoom.warehouse().runs_of_spec(sid) {
            tuples_admin += zoom
                .deep_provenance_of_final_output(rid, admin)
                .expect("visible")
                .tuples();
            tuples_bio += zoom
                .deep_provenance_of_final_output(rid, bio)
                .expect("visible")
                .tuples();
            tuples_bb += zoom
                .deep_provenance_of_final_output(rid, bb)
                .expect("visible")
                .tuples();
        }
    }
    println!("\ndeep provenance of every final output ({total_runs} runs):");
    println!("  UAdmin    tuples: {tuples_admin}");
    println!("  UBio      tuples: {tuples_bio}");
    println!("  UBlackBox tuples: {tuples_bb}");
    let (hits, misses) = zoom.warehouse().cache_counters();
    println!("  view-run cache: {hits} hits / {misses} misses");

    // --- 3. Persist and reload; answers survive.
    let mut path = std::env::temp_dir();
    path.push("zoom-lab-warehouse.snapshot");
    zoom.save(&path).expect("snapshot saved");
    let size = std::fs::metadata(&path).expect("exists").len();
    println!("\nsnapshot: {} ({size} bytes)", path.display());

    // --- 3b. Incremental durability: the same lab can journal each
    // mutation as it happens instead of re-snapshotting; a crash only ever
    // loses the torn tail record.
    let mut jpath = std::env::temp_dir();
    jpath.push("zoom-lab-warehouse.journal");
    {
        let mut journal =
            zoom::warehouse::JournaledWarehouse::create(&jpath).expect("journal created");
        let spec = zoom_gen::library::phylogenomic();
        let sid = journal.register_spec(spec.clone()).expect("registers");
        journal
            .register_view(sid, zoom::model::UserView::admin(&spec))
            .expect("registers");
        journal
            .load_run(sid, zoom_gen::library::figure2_run(&spec))
            .expect("loads");
        println!(
            "journal: {} records at {}",
            journal.record_count(),
            jpath.display()
        );
    }
    let replayed = zoom::warehouse::JournaledWarehouse::open(&jpath).expect("replays");
    assert_eq!(replayed.warehouse().stats().runs, 1);
    println!(
        "journal replayed: {} records intact",
        replayed.record_count()
    );
    std::fs::remove_file(&jpath).ok();

    let reloaded = Zoom::load(&path).expect("snapshot loads");
    std::fs::remove_file(&path).ok();
    let rstats = reloaded.warehouse().stats();
    assert_eq!(rstats.specs, stats.specs);
    assert_eq!(rstats.runs, stats.runs);
    assert_eq!(rstats.data_objects, stats.data_objects);
    // Spot-check a reloaded query.
    let sid = reloaded
        .warehouse()
        .spec_by_name("phylogenomic")
        .expect("library spec present");
    let admin = reloaded
        .warehouse()
        .find_view(sid, "UAdmin")
        .expect("still registered");
    let rid = reloaded.warehouse().runs_of_spec(sid)[0];
    let res = reloaded
        .deep_provenance_of_final_output(rid, admin)
        .expect("visible");
    println!(
        "reloaded warehouse answers queries (phylogenomic run: {} tuples)",
        res.tuples()
    );
}
