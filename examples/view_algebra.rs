//! The view theory of Section III on the paper's own figures.
//!
//! Walks through Figure 4 (why Properties 2 and 3 matter), Figure 6 (the
//! `RelevUserViewBuilder` running example, step by step), and Figure 7
//! (a minimal view that is not minimum, settled by exhaustive search).
//!
//! ```sh
//! cargo run --example view_algebra
//! ```

use zoom::model::{CompositeModule, UserView};
use zoom::views::{check_view, is_minimal, minimum_view, relev_user_view_builder, NrContext};
use zoom_views::paper::{figure4, figure6, figure7};

fn show_view(spec: &zoom::WorkflowSpec, view: &UserView) {
    for c in view.composites() {
        let members: Vec<&str> = c.members.iter().map(|&m| spec.label(m)).collect();
        println!("    {} = {members:?}", c.name);
    }
}

fn main() {
    // ---------------------------------------------------------------
    println!("== Figure 4: a well-formed view can still lie ==");
    let (spec, relevant, parts) = figure4();
    let bad = UserView::new(
        "bad",
        &spec,
        parts
            .into_iter()
            .enumerate()
            .map(|(i, p)| CompositeModule::new(format!("C{}", i + 1), p))
            .collect(),
    )
    .expect("a partition, just not a good one");
    println!("  the view:");
    show_view(&spec, &bad);
    match check_view(&spec, &bad, &relevant) {
        Err(v) => println!("  rejected: {v}"),
        Ok(()) => unreachable!("figure 4's view violates properties 2 and 3"),
    }

    // ---------------------------------------------------------------
    println!("\n== Figure 6: RelevUserViewBuilder, step by step ==");
    let (spec, relevant) = figure6();
    let ctx = NrContext::of_spec(&spec, &relevant);
    println!("  rpred / rsucc of each module:");
    for m in spec.module_ids() {
        let show = |nodes: Vec<zoom::graph::NodeId>| {
            nodes
                .iter()
                .map(|&n| spec.label(n))
                .collect::<Vec<_>>()
                .join(",")
        };
        println!(
            "    {:<3} rpred={{{}}} rsucc={{{}}}",
            spec.label(m),
            show(ctx.rpred_nodes(m)),
            show(ctx.rsucc_nodes(m)),
        );
    }
    let built = relev_user_view_builder(&spec, &relevant).expect("builds");
    println!(
        "  result (size {} = {} relevant + {} non-relevant):",
        built.view.size(),
        built.relevant_composites,
        built.non_relevant_composites
    );
    show_view(&spec, &built.view);
    println!(
        "  properties hold: {}; minimal: {}",
        check_view(&spec, &built.view, &relevant).is_ok(),
        is_minimal(&spec, &built.view, &relevant)
    );

    // ---------------------------------------------------------------
    println!("\n== Figure 7: minimal is not minimum ==");
    let (spec, relevant) = figure7();
    let built = relev_user_view_builder(&spec, &relevant).expect("builds");
    println!(
        "  the algorithm's (minimal) view, size {}:",
        built.view.size()
    );
    show_view(&spec, &built.view);
    let min = minimum_view(&spec, &relevant, 9).expect("small enough to search");
    println!("  the minimum good view, size {}:", min.size());
    show_view(&spec, &min);
    println!(
        "  both satisfy Properties 1-3: {} / {}",
        check_view(&spec, &built.view, &relevant).is_ok(),
        check_view(&spec, &min, &relevant).is_ok()
    );
    println!(
        "  whether a polynomial algorithm can always find the minimum is \
         the paper's open problem."
    );
}
