//! Quickstart: the paper's running example, end to end.
//!
//! Builds the Figure 1 phylogenomic workflow and its Figure 2 run, derives
//! Joe's and Mary's user views with `RelevUserViewBuilder`, loads everything
//! into the provenance warehouse, and asks the paper's provenance questions.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use zoom::core::ImmediateAnswer;
use zoom::model::DataId;
use zoom::Zoom;
use zoom_gen::library::{figure2_run, phylogenomic};

fn main() {
    // --- 1. The workflow specification (Figure 1).
    let spec = phylogenomic();
    println!(
        "Workflow `{}` with {} modules:",
        spec.name(),
        spec.module_count()
    );

    // --- 2. Register it and build the two user views of the introduction.
    let mut zoom = Zoom::new();
    let sid = zoom.register_workflow(spec.clone()).expect("fresh spec");
    // Joe finds annotation checking, alignment, and tree building relevant.
    let joe = zoom
        .build_view(sid, &["M2", "M3", "M7"])
        .expect("good view");
    // Mary also cares about rectification (M5).
    let mary = zoom
        .build_view(sid, &["M2", "M3", "M5", "M7"])
        .expect("good view");
    let admin = zoom.admin_view(sid).expect("admin view");

    for (who, v) in [("Joe", joe), ("Mary", mary)] {
        let view = zoom.warehouse().view(v).expect("registered");
        println!("{who}'s view (size {}):", view.size());
        for c in view.composites() {
            let members: Vec<&str> = c.members.iter().map(|&m| spec.label(m)).collect();
            println!("  {} = {members:?}", c.name);
        }
    }

    // Render Figure 1 itself: Joe's composites as dotted boxes, his
    // relevant modules shaded.
    let joe_view = zoom.warehouse().view(joe).expect("registered").clone();
    let rel: Vec<_> = ["M2", "M3", "M7"]
        .iter()
        .map(|l| spec.module(l).expect("exists"))
        .collect();
    println!("\nFigure 1 with Joe's view overlaid (DOT):");
    println!(
        "{}",
        zoom::core::view_on_spec_to_dot(&spec, &joe_view, &rel)
    );

    // --- 3. Load the Figure 2 run (steps S1..S10, data d1..d447).
    let run = figure2_run(&spec);
    let rid = zoom.load_run(sid, run).expect("valid run");

    // --- 4. The paper's provenance questions.
    println!("\nImmediate provenance of d413:");
    for (who, v) in [("Joe", joe), ("Mary", mary)] {
        match zoom
            .immediate_provenance(rid, v, DataId(413))
            .expect("d413 visible")
        {
            ImmediateAnswer::Produced { exec, inputs, .. } => {
                println!(
                    "  {who}: produced by {exec} from {} input object(s) [{}..{}]",
                    inputs.len(),
                    inputs.first().expect("nonempty"),
                    inputs.last().expect("nonempty"),
                );
            }
            ImmediateAnswer::UserInput { .. } => unreachable!("d413 is produced"),
        }
    }

    println!("\nDeep provenance of the final tree d447:");
    for (who, v) in [("admin", admin), ("Joe", joe), ("Mary", mary)] {
        let res = zoom
            .deep_provenance(rid, v, DataId(447))
            .expect("final output visible");
        println!(
            "  {who:>5}: {} tuples across {} execution(s)",
            res.tuples(),
            res.exec_count()
        );
    }

    // --- 5. Render Joe's provenance graph (the Figure 9 analog).
    let vr = zoom.warehouse().view_run(rid, joe).expect("materialized");
    let view = zoom.warehouse().view(joe).expect("registered");
    let res = zoom
        .deep_provenance(rid, joe, DataId(447))
        .expect("visible");
    println!("\nJoe's provenance graph of d447 (DOT):");
    println!("{}", zoom::core::provenance_to_dot(&vr, view, &res));
    println!("Joe's provenance of d447 as a tree:");
    println!("{}", zoom::core::provenance_to_text(&vr, view, &res));
}
