//! Minimal, offline subset of the criterion API used by this workspace's
//! benches: `criterion_group!`/`criterion_main!`, `Criterion`,
//! `benchmark_group` with `throughput`/`bench_function`/`bench_with_input`,
//! `BenchmarkId`, and `black_box`.
//!
//! Measurement is a simple warmup + timed-batch loop printing mean
//! nanoseconds per iteration. `--test` (as passed by the CI smoke step
//! `cargo bench -- --test`) runs every benchmark body exactly once and
//! skips measurement, so benches double as smoke tests.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Criterion {
    /// Applies the subset of criterion CLI flags we understand: `--test`
    /// switches to run-once smoke mode; `--bench` (added by cargo) is
    /// ignored; the first bare argument is a substring filter.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--test" => self.test_mode = true,
                "--bench" | "--verbose" | "--quiet" | "-n" | "--noplot" => {}
                "--save-baseline" | "--baseline" | "--measurement-time" | "--warm-up-time"
                | "--sample-size" => {
                    let _ = args.next();
                }
                s if s.starts_with('-') => {}
                s => {
                    if self.filter.is_none() {
                        self.filter = Some(s.to_string());
                    }
                }
            }
        }
        self
    }

    fn enabled(&self, id: &str) -> bool {
        match &self.filter {
            Some(f) => id.contains(f.as_str()),
            None => true,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.enabled(id) {
            run_one(id, self.test_mode, &mut f);
        }
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn final_summary(&mut self) {
        if self.test_mode {
            eprintln!("criterion: smoke mode (--test) complete");
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        if self.criterion.enabled(&full) {
            run_one(&full, self.criterion.test_mode, &mut f);
        }
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        if self.criterion.enabled(&full) {
            run_one(&full, self.criterion.test_mode, &mut |b: &mut Bencher| {
                f(b, input)
            });
        }
        self
    }

    pub fn finish(self) {}
}

/// An identifier for a single benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Declared throughput of a benchmark (accepted, not reported).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Passed to each benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    test_mode: bool,
    mean_ns: Option<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Warm up for ~50ms, then size batches to ~100ms of measurement.
        let warm_until = Instant::now() + Duration::from_millis(50);
        let mut warm_iters: u64 = 0;
        let warm_start = Instant::now();
        while Instant::now() < warm_until {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((0.1 / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);
        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        let total = start.elapsed();
        self.mean_ns = Some(total.as_nanos() as f64 / batch as f64);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, test_mode: bool, f: &mut F) {
    let mut b = Bencher {
        test_mode,
        mean_ns: None,
    };
    f(&mut b);
    if test_mode {
        println!("{id}: ok (smoke)");
    } else {
        match b.mean_ns {
            Some(ns) if ns >= 1_000_000.0 => {
                println!("{id}: {:.3} ms/iter", ns / 1_000_000.0)
            }
            Some(ns) if ns >= 1_000.0 => println!("{id}: {:.3} us/iter", ns / 1_000.0),
            Some(ns) => println!("{id}: {ns:.1} ns/iter"),
            None => println!("{id}: (no iter call)"),
        }
    }
}

/// Bundles benchmark functions into a group callable by `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            let _ = $config;
            $($target(c);)+
        }
    };
}

/// Generates `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut calls = 0u32;
        let mut b = Bencher {
            test_mode: true,
            mean_ns: None,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).0, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }
}
