//! Minimal `#[derive(Serialize, Deserialize)]` without syn/quote, for the
//! offline vendored serde in this workspace.
//!
//! Supports exactly the shapes the workspace uses:
//! - structs with named fields, tuple structs, unit structs
//! - enums with unit, newtype, tuple, and struct variants (no explicit
//!   discriminants)
//! - plain type parameters (`Digraph<N, E>`), no lifetimes, const params,
//!   bounds, defaults, or `where` clauses
//! - no `#[serde(...)]` attributes (attributes and doc comments are skipped)
//!
//! Enums are serialized positionally: variant index as `u32` plus the
//! variant payload, matching `serialize_unit_variant` and friends in the
//! serde data model. Structs serialize all fields in declaration order.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// A tiny token model
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Tok {
    Ident(String),
    Punct(char),
    Literal(String),
    Group(Delimiter, Vec<Tok>),
}

fn lex(ts: TokenStream) -> Vec<Tok> {
    ts.into_iter()
        .map(|tt| match tt {
            TokenTree::Ident(i) => Tok::Ident(i.to_string()),
            TokenTree::Punct(p) => Tok::Punct(p.as_char()),
            TokenTree::Literal(l) => Tok::Literal(l.to_string()),
            TokenTree::Group(g) => Tok::Group(g.delimiter(), lex(g.stream())),
        })
        .collect()
}

/// Renders tokens back to source text (valid for type positions).
fn render(toks: &[Tok]) -> String {
    let mut s = String::new();
    for t in toks {
        match t {
            Tok::Ident(i) => {
                s.push(' ');
                s.push_str(i);
            }
            Tok::Punct(c) => s.push(*c),
            Tok::Literal(l) => {
                s.push(' ');
                s.push_str(l);
            }
            Tok::Group(d, inner) => {
                let (open, close) = match d {
                    Delimiter::Parenthesis => ('(', ')'),
                    Delimiter::Brace => ('{', '}'),
                    Delimiter::Bracket => ('[', ']'),
                    Delimiter::None => (' ', ' '),
                };
                s.push(open);
                s.push_str(&render(inner));
                s.push(close);
            }
        }
    }
    s
}

/// Splits on commas at angle-bracket depth zero (groups are atomic tokens,
/// so parens/braces/brackets need no tracking).
fn split_commas(toks: &[Tok]) -> Vec<Vec<Tok>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut depth = 0i32;
    for t in toks {
        match t {
            Tok::Punct('<') => {
                depth += 1;
                cur.push(t.clone());
            }
            Tok::Punct('>') => {
                depth -= 1;
                cur.push(t.clone());
            }
            Tok::Punct(',') if depth == 0 => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(t.clone()),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Skips leading `#[...]` attributes (including doc comments).
fn skip_attrs(toks: &[Tok]) -> &[Tok] {
    let mut rest = toks;
    while let [Tok::Punct('#'), Tok::Group(Delimiter::Bracket, _), tail @ ..] = rest {
        rest = tail;
    }
    rest
}

/// Skips a leading visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(toks: &[Tok]) -> &[Tok] {
    match toks {
        [Tok::Ident(kw), Tok::Group(Delimiter::Parenthesis, _), tail @ ..] if kw == "pub" => tail,
        [Tok::Ident(kw), tail @ ..] if kw == "pub" => tail,
        _ => toks,
    }
}

// ---------------------------------------------------------------------------
// Item model and parser
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    /// Plain type-parameter names, in order.
    generics: Vec<String>,
    kind: Kind,
}

enum Kind {
    UnitStruct,
    TupleStruct(Vec<String>),
    NamedStruct(Vec<(String, String)>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(Vec<String>),
    Named(Vec<(String, String)>),
}

fn parse(input: TokenStream) -> Item {
    let toks = lex(input);
    let mut rest: &[Tok] = skip_vis(skip_attrs(&toks));

    let is_enum = match rest {
        [Tok::Ident(kw), tail @ ..] if kw == "struct" || kw == "enum" => {
            let e = kw == "enum";
            rest = tail;
            e
        }
        _ => panic!("derive(Serialize/Deserialize): expected `struct` or `enum`"),
    };

    let name = match rest {
        [Tok::Ident(n), tail @ ..] => {
            rest = tail;
            n.clone()
        }
        _ => panic!("derive: expected item name"),
    };

    let mut generics = Vec::new();
    if let [Tok::Punct('<'), tail @ ..] = rest {
        let mut depth = 1i32;
        let mut inner = Vec::new();
        let mut i = 0;
        for t in tail {
            match t {
                Tok::Punct('<') => depth += 1,
                Tok::Punct('>') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            inner.push(t.clone());
            i += 1;
        }
        rest = &tail[i + 1..];
        for param in split_commas(&inner) {
            match param.first() {
                Some(Tok::Ident(p)) if p != "const" => generics.push(p.clone()),
                Some(Tok::Punct('\'')) => {
                    panic!("derive: lifetime parameters are not supported")
                }
                other => panic!("derive: unsupported generic parameter {other:?}"),
            }
        }
    }

    if matches!(rest.first(), Some(Tok::Ident(kw)) if kw == "where") {
        panic!("derive: `where` clauses are not supported");
    }

    let kind = if is_enum {
        let body = match rest {
            [Tok::Group(Delimiter::Brace, body)] => body,
            _ => panic!("derive: expected enum body"),
        };
        let mut variants = Vec::new();
        for chunk in split_commas(body) {
            let chunk = skip_attrs(&chunk);
            if chunk.is_empty() {
                continue;
            }
            let (vname, vrest) = match chunk {
                [Tok::Ident(n), tail @ ..] => (n.clone(), tail),
                _ => panic!("derive: expected variant name"),
            };
            let fields = match vrest {
                [] => VariantFields::Unit,
                [Tok::Group(Delimiter::Parenthesis, inner)] => {
                    VariantFields::Tuple(parse_tuple_fields(inner))
                }
                [Tok::Group(Delimiter::Brace, inner)] => {
                    VariantFields::Named(parse_named_fields(inner))
                }
                _ => panic!("derive: unsupported variant shape for {vname}"),
            };
            variants.push(Variant {
                name: vname,
                fields,
            });
        }
        Kind::Enum(variants)
    } else {
        match rest {
            [Tok::Group(Delimiter::Brace, body)] => Kind::NamedStruct(parse_named_fields(body)),
            [Tok::Group(Delimiter::Parenthesis, body), Tok::Punct(';')]
            | [Tok::Group(Delimiter::Parenthesis, body)] => {
                Kind::TupleStruct(parse_tuple_fields(body))
            }
            [Tok::Punct(';')] | [] => Kind::UnitStruct,
            _ => panic!("derive: unsupported struct body"),
        }
    };

    Item {
        name,
        generics,
        kind,
    }
}

fn parse_named_fields(toks: &[Tok]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for chunk in split_commas(toks) {
        let chunk = skip_vis(skip_attrs(&chunk));
        if chunk.is_empty() {
            continue;
        }
        match chunk {
            [Tok::Ident(fname), Tok::Punct(':'), ty @ ..] => {
                out.push((fname.clone(), render(ty)));
            }
            _ => panic!("derive: unsupported named field {chunk:?}"),
        }
    }
    out
}

fn parse_tuple_fields(toks: &[Tok]) -> Vec<String> {
    split_commas(toks)
        .iter()
        .map(|chunk| render(skip_vis(skip_attrs(chunk))))
        .filter(|ty| !ty.trim().is_empty())
        .collect()
}

// ---------------------------------------------------------------------------
// Shared codegen helpers
// ---------------------------------------------------------------------------

impl Item {
    /// `<N, E>` (or empty).
    fn ty_generics(&self) -> String {
        if self.generics.is_empty() {
            String::new()
        } else {
            format!("<{}>", self.generics.join(", "))
        }
    }

    /// `<N: {bound}, E: {bound}>` (or empty), with an optional extra leading
    /// parameter such as `'de`.
    fn impl_generics(&self, lead: &str, bound: &str) -> String {
        let mut parts: Vec<String> = Vec::new();
        if !lead.is_empty() {
            parts.push(lead.to_string());
        }
        for p in &self.generics {
            parts.push(format!("{p}: {bound}"));
        }
        if parts.is_empty() {
            String::new()
        } else {
            format!("<{}>", parts.join(", "))
        }
    }

    /// A `PhantomData` carrier tuple for visitor structs: `(N, E,)` or `()`.
    fn phantom_tuple(&self) -> String {
        if self.generics.is_empty() {
            "()".to_string()
        } else {
            format!("({},)", self.generics.join(", "))
        }
    }
}

// ---------------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let mut body = String::new();

    match &item.kind {
        Kind::UnitStruct => {
            let _ = write!(
                body,
                "::serde::Serializer::serialize_unit_struct(__serializer, \"{name}\")"
            );
        }
        Kind::TupleStruct(fields) => {
            let _ = write!(
                body,
                "let mut __st = ::serde::Serializer::serialize_tuple_struct(__serializer, \
                 \"{name}\", {}usize)?;",
                fields.len()
            );
            for i in 0..fields.len() {
                let _ = write!(
                    body,
                    "::serde::ser::SerializeTupleStruct::serialize_field(&mut __st, &self.{i})?;"
                );
            }
            body.push_str("::serde::ser::SerializeTupleStruct::end(__st)");
        }
        Kind::NamedStruct(fields) => {
            let _ = write!(
                body,
                "let mut __st = ::serde::Serializer::serialize_struct(__serializer, \
                 \"{name}\", {}usize)?;",
                fields.len()
            );
            for (fname, _) in fields {
                let _ = write!(
                    body,
                    "::serde::ser::SerializeStruct::serialize_field(&mut __st, \"{fname}\", \
                     &self.{fname})?;"
                );
            }
            body.push_str("::serde::ser::SerializeStruct::end(__st)");
        }
        Kind::Enum(variants) => {
            body.push_str("match self {");
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.fields {
                    VariantFields::Unit => {
                        let _ = write!(
                            body,
                            "{name}::{vname} => ::serde::Serializer::serialize_unit_variant(\
                             __serializer, \"{name}\", {idx}u32, \"{vname}\"),"
                        );
                    }
                    VariantFields::Tuple(tys) if tys.len() == 1 => {
                        let _ = write!(
                            body,
                            "{name}::{vname}(__f0) => \
                             ::serde::Serializer::serialize_newtype_variant(\
                             __serializer, \"{name}\", {idx}u32, \"{vname}\", __f0),"
                        );
                    }
                    VariantFields::Tuple(tys) => {
                        let binders: Vec<String> =
                            (0..tys.len()).map(|i| format!("__f{i}")).collect();
                        let _ = write!(
                            body,
                            "{name}::{vname}({binds}) => {{ let mut __st = \
                             ::serde::Serializer::serialize_tuple_variant(__serializer, \
                             \"{name}\", {idx}u32, \"{vname}\", {len}usize)?;",
                            binds = binders.join(", "),
                            len = tys.len()
                        );
                        for b in &binders {
                            let _ = write!(
                                body,
                                "::serde::ser::SerializeTupleVariant::serialize_field(\
                                 &mut __st, {b})?;"
                            );
                        }
                        body.push_str("::serde::ser::SerializeTupleVariant::end(__st) }");
                    }
                    VariantFields::Named(fields) => {
                        let binders: Vec<&str> = fields.iter().map(|(f, _)| f.as_str()).collect();
                        let _ = write!(
                            body,
                            "{name}::{vname} {{ {binds} }} => {{ let mut __st = \
                             ::serde::Serializer::serialize_struct_variant(__serializer, \
                             \"{name}\", {idx}u32, \"{vname}\", {len}usize)?;",
                            binds = binders.join(", "),
                            len = fields.len()
                        );
                        for b in &binders {
                            let _ = write!(
                                body,
                                "::serde::ser::SerializeStructVariant::serialize_field(\
                                 &mut __st, \"{b}\", {b})?;"
                            );
                        }
                        body.push_str("::serde::ser::SerializeStructVariant::end(__st) }");
                    }
                }
            }
            body.push('}');
        }
    }

    format!(
        "#[automatically_derived]\n\
         impl {impl_g} ::serde::Serialize for {name} {ty_g} {{\n\
             fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) \
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}",
        impl_g = item.impl_generics("", "::serde::Serialize"),
        ty_g = item.ty_generics(),
    )
}

// ---------------------------------------------------------------------------
// Deserialize
// ---------------------------------------------------------------------------

/// Emits a `visit_seq` body that reads `fields` positionally and finishes
/// with `construct` applied to the binders `__f0..`.
fn seq_body(expect: &str, tys: &[String], construct: &dyn Fn(&[String]) -> String) -> String {
    let mut s = String::new();
    let binders: Vec<String> = (0..tys.len()).map(|i| format!("__f{i}")).collect();
    for (i, (b, ty)) in binders.iter().zip(tys).enumerate() {
        let _ = write!(
            s,
            "let {b}: {ty} = match ::serde::de::SeqAccess::next_element(&mut __seq)? {{\
                 ::core::option::Option::Some(__v) => __v,\
                 ::core::option::Option::None => return ::core::result::Result::Err(\
                     ::serde::de::Error::invalid_length({i}usize, \"{expect}\")),\
             }};"
        );
    }
    let _ = write!(s, "::core::result::Result::Ok({})", construct(&binders));
    s
}

/// Emits one complete visitor struct + `Visitor` impl with the given
/// `visit_*` methods, and an expression constructing it.
struct VisitorGen<'a> {
    item: &'a Item,
    /// Suffix distinguishing multiple visitors in one fn body.
    tag: String,
    /// `type Value` of the visitor (includes generics).
    value: String,
    expecting: String,
    methods: String,
}

impl VisitorGen<'_> {
    fn emit(&self) -> (String, String) {
        let vis_name = format!("__Visitor{}", self.tag);
        let def = format!(
            "struct {vis_name} {ty_g} (::core::marker::PhantomData<fn() -> {phantom}>);\n\
             #[automatically_derived]\n\
             impl {impl_g} ::serde::de::Visitor<'de> for {vis_name} {ty_g} {{\n\
                 type Value = {value};\n\
                 fn expecting(&self, __f: &mut ::core::fmt::Formatter) -> ::core::fmt::Result {{\n\
                     __f.write_str(\"{expecting}\")\n\
                 }}\n\
                 {methods}\n\
             }}",
            ty_g = self.item.ty_generics(),
            phantom = self.item.phantom_tuple(),
            impl_g = self.item.impl_generics("'de", "::serde::Deserialize<'de>"),
            value = self.value,
            expecting = self.expecting,
            methods = self.methods,
        );
        let construct = format!("{vis_name}(::core::marker::PhantomData)");
        (def, construct)
    }
}

#[allow(clippy::needless_late_init)]
fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let ty_g = item.ty_generics();
    let value = format!("{name} {ty_g}");
    let mut defs = String::new();
    let driver;

    match &item.kind {
        Kind::UnitStruct => {
            let (def, construct) = VisitorGen {
                item,
                tag: String::new(),
                value: value.clone(),
                expecting: format!("unit struct {name}"),
                methods: format!(
                    "fn visit_unit<__E: ::serde::de::Error>(self) \
                         -> ::core::result::Result<Self::Value, __E> {{\
                         ::core::result::Result::Ok({name})\
                     }}"
                ),
            }
            .emit();
            defs.push_str(&def);
            driver = format!(
                "::serde::Deserializer::deserialize_unit_struct(__deserializer, \"{name}\", \
                 {construct})"
            );
        }
        Kind::TupleStruct(tys) => {
            let expect = format!("tuple struct {name}");
            let body = seq_body(&expect, tys, &|binders| {
                format!("{name}({})", binders.join(", "))
            });
            let (def, construct) = VisitorGen {
                item,
                tag: String::new(),
                value: value.clone(),
                expecting: expect,
                methods: format!(
                    "fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A) \
                         -> ::core::result::Result<Self::Value, __A::Error> {{ {body} }}"
                ),
            }
            .emit();
            defs.push_str(&def);
            driver = format!(
                "::serde::Deserializer::deserialize_tuple_struct(__deserializer, \"{name}\", \
                 {}usize, {construct})",
                tys.len()
            );
        }
        Kind::NamedStruct(fields) => {
            let expect = format!("struct {name}");
            let tys: Vec<String> = fields.iter().map(|(_, t)| t.clone()).collect();
            let fnames: Vec<&str> = fields.iter().map(|(f, _)| f.as_str()).collect();
            let body = seq_body(&expect, &tys, &|binders| {
                let inits: Vec<String> = fnames
                    .iter()
                    .zip(binders)
                    .map(|(f, b)| format!("{f}: {b}"))
                    .collect();
                format!("{name} {{ {} }}", inits.join(", "))
            });
            let (def, construct) = VisitorGen {
                item,
                tag: String::new(),
                value: value.clone(),
                expecting: expect,
                methods: format!(
                    "fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A) \
                         -> ::core::result::Result<Self::Value, __A::Error> {{ {body} }}"
                ),
            }
            .emit();
            defs.push_str(&def);
            let field_names: Vec<String> = fnames.iter().map(|f| format!("\"{f}\"")).collect();
            driver = format!(
                "::serde::Deserializer::deserialize_struct(__deserializer, \"{name}\", \
                 &[{}], {construct})",
                field_names.join(", ")
            );
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.fields {
                    VariantFields::Unit => {
                        let _ = write!(
                            arms,
                            "{idx}u32 => {{ \
                             ::serde::de::VariantAccess::unit_variant(__variant)?; \
                             ::core::result::Result::Ok({name}::{vname}) }}"
                        );
                    }
                    VariantFields::Tuple(tys) if tys.len() == 1 => {
                        let _ = write!(
                            arms,
                            "{idx}u32 => ::core::result::Result::Ok({name}::{vname}(\
                             ::serde::de::VariantAccess::newtype_variant(__variant)?)),"
                        );
                    }
                    VariantFields::Tuple(tys) => {
                        let expect = format!("tuple variant {name}::{vname}");
                        let body = seq_body(&expect, tys, &|binders| {
                            format!("{name}::{vname}({})", binders.join(", "))
                        });
                        let (def, construct) = VisitorGen {
                            item,
                            tag: format!("V{idx}"),
                            value: value.clone(),
                            expecting: expect,
                            methods: format!(
                                "fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, \
                                     mut __seq: __A) \
                                     -> ::core::result::Result<Self::Value, __A::Error> \
                                     {{ {body} }}"
                            ),
                        }
                        .emit();
                        let _ = write!(
                            arms,
                            "{idx}u32 => {{ {def} \
                             ::serde::de::VariantAccess::tuple_variant(__variant, {len}usize, \
                             {construct}) }}",
                            len = tys.len()
                        );
                    }
                    VariantFields::Named(fields) => {
                        let expect = format!("struct variant {name}::{vname}");
                        let tys: Vec<String> = fields.iter().map(|(_, t)| t.clone()).collect();
                        let fnames: Vec<&str> = fields.iter().map(|(f, _)| f.as_str()).collect();
                        let body = seq_body(&expect, &tys, &|binders| {
                            let inits: Vec<String> = fnames
                                .iter()
                                .zip(binders)
                                .map(|(f, b)| format!("{f}: {b}"))
                                .collect();
                            format!("{name}::{vname} {{ {} }}", inits.join(", "))
                        });
                        let (def, construct) = VisitorGen {
                            item,
                            tag: format!("V{idx}"),
                            value: value.clone(),
                            expecting: expect,
                            methods: format!(
                                "fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, \
                                     mut __seq: __A) \
                                     -> ::core::result::Result<Self::Value, __A::Error> \
                                     {{ {body} }}"
                            ),
                        }
                        .emit();
                        let field_names: Vec<String> =
                            fnames.iter().map(|f| format!("\"{f}\"")).collect();
                        let _ = write!(
                            arms,
                            "{idx}u32 => {{ {def} \
                             ::serde::de::VariantAccess::struct_variant(__variant, \
                             &[{}], {construct}) }}",
                            field_names.join(", ")
                        );
                    }
                }
            }
            let (def, construct) = VisitorGen {
                item,
                tag: String::new(),
                value: value.clone(),
                expecting: format!("enum {name}"),
                methods: format!(
                    "fn visit_enum<__A: ::serde::de::EnumAccess<'de>>(self, __data: __A) \
                         -> ::core::result::Result<Self::Value, __A::Error> {{\
                         let (__idx, __variant): (u32, __A::Variant) = \
                             ::serde::de::EnumAccess::variant(__data)?;\
                         match __idx {{\
                             {arms}\
                             _ => ::core::result::Result::Err(::serde::de::Error::custom(\
                                 \"invalid variant index for enum {name}\")),\
                         }}\
                     }}"
                ),
            }
            .emit();
            defs.push_str(&def);
            let variant_names: Vec<String> =
                variants.iter().map(|v| format!("\"{}\"", v.name)).collect();
            driver = format!(
                "::serde::Deserializer::deserialize_enum(__deserializer, \"{name}\", \
                 &[{}], {construct})",
                variant_names.join(", ")
            );
        }
    }

    format!(
        "#[automatically_derived]\n\
         impl {impl_g} ::serde::Deserialize<'de> for {name} {ty_g} {{\n\
             fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D) \
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 {defs}\n\
                 {driver}\n\
             }}\n\
         }}",
        impl_g = item.impl_generics("'de", "::serde::Deserialize<'de>"),
    )
}
