//! Minimal, offline re-implementation of the subset of `parking_lot` this
//! workspace uses: `RwLock` and `Mutex` with non-poisoning, non-`Result`
//! guard APIs. Backed by the std primitives; a poisoned std lock (a panic
//! while holding the guard) is transparently recovered, which matches
//! parking_lot's "no poisoning" semantics closely enough for our callers.

use std::sync::{self, PoisonError};

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A mutex with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1u32);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(String::from("a"));
        m.lock().push('b');
        assert_eq!(m.into_inner(), "ab");
    }
}
