//! `Serialize`/`Deserialize` impls for the std types that appear in this
//! workspace's models: primitives, strings, `Vec`, `Option`, `Box`, tuples,
//! maps, and sets.

use crate::de::{Deserialize, Deserializer, Error as DeError, MapAccess, SeqAccess, Visitor};
use crate::ser::{
    Serialize, SerializeMap as _, SerializeSeq as _, SerializeTuple as _, Serializer,
};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasher, Hash};
use std::marker::PhantomData;

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

macro_rules! primitive {
    ($($ty:ty, $ser:ident, $de:ident, $visit:ident;)*) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$ser(*self)
            }
        }

        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V;
                impl<'de> Visitor<'de> for V {
                    type Value = $ty;
                    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                        f.write_str(stringify!($ty))
                    }
                    fn $visit<E: DeError>(self, v: $ty) -> Result<$ty, E> {
                        Ok(v)
                    }
                }
                deserializer.$de(V)
            }
        }
    )*};
}

primitive! {
    bool, serialize_bool, deserialize_bool, visit_bool;
    i8, serialize_i8, deserialize_i8, visit_i8;
    i16, serialize_i16, deserialize_i16, visit_i16;
    i32, serialize_i32, deserialize_i32, visit_i32;
    i64, serialize_i64, deserialize_i64, visit_i64;
    u8, serialize_u8, deserialize_u8, visit_u8;
    u16, serialize_u16, deserialize_u16, visit_u16;
    u32, serialize_u32, deserialize_u32, visit_u32;
    u64, serialize_u64, deserialize_u64, visit_u64;
    f32, serialize_f32, deserialize_f32, visit_f32;
    f64, serialize_f64, deserialize_f64, visit_f64;
    char, serialize_char, deserialize_char, visit_char;
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = u64::deserialize(deserializer)?;
        usize::try_from(v).map_err(|_| D::Error::custom("u64 does not fit in usize"))
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = i64::deserialize(deserializer)?;
        isize::try_from(v).map_err(|_| D::Error::custom("i64 does not fit in isize"))
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("unit")
            }
            fn visit_unit<E: DeError>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(V)
    }
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: DeError>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: DeError>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(V)
    }
}

// ---------------------------------------------------------------------------
// References and boxes
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

// ---------------------------------------------------------------------------
// Option
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("an option")
            }
            fn visit_none<E: DeError>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
            fn visit_unit<E: DeError>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Self::Value, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
        }
        deserializer.deserialize_option(V(PhantomData))
    }
}

// ---------------------------------------------------------------------------
// Sequences
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(V(PhantomData))
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut tup = serializer.serialize_tuple(N)?;
        for item in self {
            tup.serialize_element(item)?;
        }
        tup.end()
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T, const N: usize>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>, const N: usize> Visitor<'de> for V<T, N> {
            type Value = [T; N];
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                write!(f, "an array of length {N}")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = Vec::with_capacity(N);
                for i in 0..N {
                    match seq.next_element()? {
                        Some(item) => out.push(item),
                        None => return Err(A::Error::invalid_length(i, "a full array")),
                    }
                }
                out.try_into()
                    .map_err(|_| A::Error::custom("array length mismatch"))
            }
        }
        deserializer.deserialize_tuple(N, V::<T, N>(PhantomData))
    }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! tuple_impls {
    ($($len:expr => ($($n:tt $t:ident)+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut tup = serializer.serialize_tuple($len)?;
                $(tup.serialize_element(&self.$n)?;)+
                tup.end()
            }
        }

        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V<$($t),+>(PhantomData<($($t,)+)>);
                impl<'de, $($t: Deserialize<'de>),+> Visitor<'de> for V<$($t),+> {
                    type Value = ($($t,)+);
                    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                        write!(f, "a tuple of length {}", $len)
                    }
                    #[allow(non_snake_case)]
                    fn visit_seq<A: SeqAccess<'de>>(
                        self,
                        mut seq: A,
                    ) -> Result<Self::Value, A::Error> {
                        let mut __count = 0usize;
                        $(
                            let $t: $t = match seq.next_element()? {
                                Some(v) => v,
                                None => return Err(A::Error::invalid_length(
                                    __count, "a full tuple",
                                )),
                            };
                            __count += 1;
                        )+
                        let _ = __count;
                        Ok(($($t,)+))
                    }
                }
                deserializer.deserialize_tuple($len, V(PhantomData))
            }
        }
    )*};
}

tuple_impls! {
    1 => (0 T0),
    2 => (0 T0 1 T1),
    3 => (0 T0 1 T1 2 T2),
    4 => (0 T0 1 T1 2 T2 3 T3),
    5 => (0 T0 1 T1 2 T2 3 T3 4 T4),
    6 => (0 T0 1 T1 2 T2 3 T3 4 T4 5 T5),
    7 => (0 T0 1 T1 2 T2 3 T3 4 T4 5 T5 6 T6),
    8 => (0 T0 1 T1 2 T2 3 T3 4 T4 5 T5 6 T6 7 T7),
}

// ---------------------------------------------------------------------------
// Maps and sets
// ---------------------------------------------------------------------------

impl<K: Serialize, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn serialize<Se: Serializer>(&self, serializer: Se) -> Result<Se::Ok, Se::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<'de, K, V, S> Deserialize<'de> for HashMap<K, V, S>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
    S: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Vis<K, V, S>(PhantomData<HashMap<K, V, S>>);
        impl<'de, K, V, S> Visitor<'de> for Vis<K, V, S>
        where
            K: Deserialize<'de> + Eq + Hash,
            V: Deserialize<'de>,
            S: BuildHasher + Default,
        {
            type Value = HashMap<K, V, S>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let cap = map.size_hint().unwrap_or(0).min(4096);
                let mut out = HashMap::with_capacity_and_hasher(cap, S::default());
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(Vis(PhantomData))
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Vis<K, V>(PhantomData<BTreeMap<K, V>>);
        impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Visitor<'de> for Vis<K, V> {
            type Value = BTreeMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = BTreeMap::new();
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(Vis(PhantomData))
    }
}

impl<T: Serialize, S: BuildHasher> Serialize for HashSet<T, S> {
    fn serialize<Se: Serializer>(&self, serializer: Se) -> Result<Se::Ok, Se::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<'de, T, S> Deserialize<'de> for HashSet<T, S>
where
    T: Deserialize<'de> + Eq + Hash,
    S: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Vis<T, S>(PhantomData<HashSet<T, S>>);
        impl<'de, T, S> Visitor<'de> for Vis<T, S>
        where
            T: Deserialize<'de> + Eq + Hash,
            S: BuildHasher + Default,
        {
            type Value = HashSet<T, S>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a set")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let cap = seq.size_hint().unwrap_or(0).min(4096);
                let mut out = HashSet::with_capacity_and_hasher(cap, S::default());
                while let Some(item) = seq.next_element()? {
                    out.insert(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(Vis(PhantomData))
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Vis<T>(PhantomData<BTreeSet<T>>);
        impl<'de, T: Deserialize<'de> + Ord> Visitor<'de> for Vis<T> {
            type Value = BTreeSet<T>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a set")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = BTreeSet::new();
                while let Some(item) = seq.next_element()? {
                    out.insert(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(Vis(PhantomData))
    }
}
