//! Minimal, offline re-implementation of the subset of the serde data model
//! this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the serde trait surface its hand-written binary codec
//! (`zoom-warehouse::codec`) and `#[derive(Serialize, Deserialize)]` types
//! program against: the `ser`/`de` trait families, impls for the std types
//! that appear in the model (integers, floats, `bool`, `char`, `String`,
//! `Vec`, `Option`, `Box`, tuples, `HashMap`, `BTreeMap`, sets), and the
//! derive macros re-exported from the companion `serde_derive` crate.
//!
//! Not a general serde: `deserialize_any`-style self-describing formats,
//! `#[serde(...)]` attributes, and zero-copy `&str` fields are out of scope.

pub mod de;
pub mod ser;

mod impls;

pub use de::{Deserialize, DeserializeOwned, Deserializer};
pub use ser::{Serialize, Serializer};

pub use serde_derive::{Deserialize, Serialize};
