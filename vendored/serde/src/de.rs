//! Deserialization half of the data model: `Deserialize`, `Deserializer`,
//! `Visitor`, the access traits, and `IntoDeserializer` for primitive keys
//! (used by binary formats to dispatch enum variant indices).

use std::fmt::{self, Display};
use std::marker::PhantomData;

/// Error constraint for deserializers.
pub trait Error: Sized + std::error::Error {
    fn custom<T: Display>(msg: T) -> Self;

    fn invalid_length(len: usize, expected: &str) -> Self {
        Self::custom(format_args!("invalid length {len}, expected {expected}"))
    }
}

/// A data structure deserializable from any serde format.
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A `Deserialize` that does not borrow from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// A stateful seed driving one deserialization; `PhantomData<T>` is the
/// stateless seed for any `T: Deserialize`.
pub trait DeserializeSeed<'de>: Sized {
    type Value;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<T, D::Error> {
        T::deserialize(deserializer)
    }
}

/// A format that can deserialize the serde data model.
pub trait Deserializer<'de>: Sized {
    type Error: Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    fn is_human_readable(&self) -> bool {
        true
    }
}

macro_rules! default_visit {
    ($($name:ident: $ty:ty => $what:expr;)*) => {$(
        fn $name<E: Error>(self, v: $ty) -> Result<Self::Value, E> {
            let _ = v;
            Err(E::custom(format_args!(
                "unexpected {}, expected {}", $what, self.expecting_string()
            )))
        }
    )*};
}

/// Drives construction of a value from whatever the format found.
pub trait Visitor<'de>: Sized {
    type Value;

    /// Describes what this visitor expects, for error messages.
    fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result;

    #[doc(hidden)]
    fn expecting_string(&self) -> String {
        struct Help<'a, V>(&'a V);
        impl<'de, V: Visitor<'de>> fmt::Display for Help<'_, V> {
            fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
                self.0.expecting(f)
            }
        }
        Help(self).to_string()
    }

    default_visit! {
        visit_bool: bool => "bool";
        visit_i64: i64 => "integer";
        visit_u64: u64 => "unsigned integer";
        visit_f64: f64 => "float";
        visit_char: char => "char";
    }

    fn visit_i8<E: Error>(self, v: i8) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    fn visit_i16<E: Error>(self, v: i16) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    fn visit_i32<E: Error>(self, v: i32) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    fn visit_u8<E: Error>(self, v: u8) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    fn visit_u16<E: Error>(self, v: u16) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    fn visit_u32<E: Error>(self, v: u32) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    fn visit_f32<E: Error>(self, v: f32) -> Result<Self::Value, E> {
        self.visit_f64(v as f64)
    }

    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom(format_args!(
            "unexpected string, expected {}",
            self.expecting_string()
        )))
    }
    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }

    fn visit_bytes<E: Error>(self, v: &[u8]) -> Result<Self::Value, E> {
        let _ = v;
        Err(E::custom(format_args!(
            "unexpected bytes, expected {}",
            self.expecting_string()
        )))
    }
    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }

    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom(format_args!(
            "unexpected none, expected {}",
            self.expecting_string()
        )))
    }
    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(D::Error::custom(format_args!(
            "unexpected some, expected {}",
            self.expecting_string()
        )))
    }
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom(format_args!(
            "unexpected unit, expected {}",
            self.expecting_string()
        )))
    }
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(D::Error::custom(format_args!(
            "unexpected newtype struct, expected {}",
            self.expecting_string()
        )))
    }
    fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
        let _ = seq;
        Err(A::Error::custom(format_args!(
            "unexpected sequence, expected {}",
            self.expecting_string()
        )))
    }
    fn visit_map<A: MapAccess<'de>>(self, map: A) -> Result<Self::Value, A::Error> {
        let _ = map;
        Err(A::Error::custom(format_args!(
            "unexpected map, expected {}",
            self.expecting_string()
        )))
    }
    fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
        let _ = data;
        Err(A::Error::custom(format_args!(
            "unexpected enum, expected {}",
            self.expecting_string()
        )))
    }
}

/// Element-by-element access to a sequence being deserialized.
pub trait SeqAccess<'de> {
    type Error: Error;

    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;

    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }

    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Entry-by-entry access to a map being deserialized.
pub trait MapAccess<'de> {
    type Error: Error;

    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;

    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, Self::Error>;

    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }

    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }

    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, Self::Error> {
        match self.next_key()? {
            Some(k) => Ok(Some((k, self.next_value()?))),
            None => Ok(None),
        }
    }

    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant tag of an enum being deserialized.
pub trait EnumAccess<'de>: Sized {
    type Error: Error;
    type Variant: VariantAccess<'de, Error = Self::Error>;

    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;

    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to the contents of the selected enum variant.
pub trait VariantAccess<'de>: Sized {
    type Error: Error;

    fn unit_variant(self) -> Result<(), Self::Error>;

    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;

    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }

    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// Conversion of a plain value into a `Deserializer`, used by formats to
/// feed primitive tags (enum variant indices) back through seeds.
pub trait IntoDeserializer<'de, E: Error> {
    type Deserializer: Deserializer<'de, Error = E>;
    fn into_deserializer(self) -> Self::Deserializer;
}

/// Deserializer over a plain `u32` (every request visits the number).
pub struct U32Deserializer<E> {
    value: u32,
    marker: PhantomData<E>,
}

impl<'de, E: Error> IntoDeserializer<'de, E> for u32 {
    type Deserializer = U32Deserializer<E>;
    fn into_deserializer(self) -> U32Deserializer<E> {
        U32Deserializer {
            value: self,
            marker: PhantomData,
        }
    }
}

macro_rules! forward_to_visit_u32 {
    ($($name:ident,)*) => {$(
        fn $name<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
    )*};
}

impl<'de, E: Error> Deserializer<'de> for U32Deserializer<E> {
    type Error = E;

    forward_to_visit_u32! {
        deserialize_any, deserialize_bool,
        deserialize_i8, deserialize_i16, deserialize_i32, deserialize_i64,
        deserialize_u8, deserialize_u16, deserialize_u32, deserialize_u64,
        deserialize_f32, deserialize_f64, deserialize_char,
        deserialize_str, deserialize_string,
        deserialize_bytes, deserialize_byte_buf,
        deserialize_option, deserialize_unit,
        deserialize_seq, deserialize_map,
        deserialize_identifier, deserialize_ignored_any,
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_tuple<V: Visitor<'de>>(self, _len: usize, visitor: V) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
}
