//! Minimal, offline re-implementation of the subset of the `bytes` crate API
//! this workspace uses: `Buf` for little-endian reads off `&[u8]`, `BufMut`
//! for little-endian writes into `BytesMut`, and a `Bytes`/`BytesMut` pair
//! backed by a plain `Vec<u8>`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the handful of third-party APIs it consumes. This is a
//! behavioural subset, not a performance clone: `Bytes` here is not
//! reference-counted-slice magic, just an immutable byte buffer.

use std::ops::Deref;

/// Read access to a byte cursor. Implemented for `&[u8]`, advancing the
/// slice as values are consumed. All `get_*` methods panic if the source has
/// too few bytes remaining, matching the real crate's contract.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Consumes and returns the next `N` bytes.
    fn take_array<const N: usize>(&mut self) -> [u8; N];

    fn get_u8(&mut self) -> u8 {
        u8::from_le_bytes(self.take_array())
    }
    fn get_i8(&mut self) -> i8 {
        i8::from_le_bytes(self.take_array())
    }
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_array())
    }
    fn get_i16_le(&mut self) -> i16 {
        i16::from_le_bytes(self.take_array())
    }
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }
    fn get_i32_le(&mut self) -> i32 {
        i32::from_le_bytes(self.take_array())
    }
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }
    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take_array())
    }
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take_array())
    }
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_array())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(self.len() >= N, "buffer underflow: {} < {}", self.len(), N);
        let (head, tail) = self.split_at(N);
        *self = tail;
        head.try_into().expect("split_at returned N bytes")
    }
}

/// Write access to a growable byte buffer, little-endian.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_i8(&mut self, v: i8) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_i16_le(&mut self, v: i16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// A mutable, growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts into an immutable `Bytes` without copying.
    pub fn freeze(self) -> Bytes {
        Bytes { buf: self.buf }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// An immutable byte buffer. Dereferences to `[u8]`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    buf: Vec<u8>,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes { buf: Vec::new() }
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { buf: data.to_vec() }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(buf: Vec<u8>) -> Self {
        Bytes { buf }
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_little_endian() {
        let mut out = BytesMut::with_capacity(64);
        out.put_u8(7);
        out.put_i8(-7);
        out.put_u16_le(0xBEEF);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u64_le(u64::MAX - 1);
        out.put_i64_le(i64::MIN);
        out.put_f64_le(3.25);
        out.put_slice(b"tail");
        let frozen = out.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_i8(), -7);
        assert_eq!(cur.get_u16_le(), 0xBEEF);
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64_le(), u64::MAX - 1);
        assert_eq!(cur.get_i64_le(), i64::MIN);
        assert_eq!(cur.get_f64_le(), 3.25);
        assert_eq!(cur, b"tail");
        assert_eq!(cur.remaining(), 4);
    }
}
