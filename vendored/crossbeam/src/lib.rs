//! Minimal, offline re-implementation of the subset of `crossbeam` this
//! workspace uses: `crossbeam::thread::scope` with scoped spawn/join. The
//! implementation delegates to `std::thread::scope` (stable since 1.63) and
//! only adapts the call shapes: crossbeam's `scope` returns a `Result`, and
//! its spawn closures receive the scope as an argument so spawned threads
//! can themselves spawn.

pub mod thread {
    use std::any::Any;

    /// Result type of [`scope`]: `Err` carries a captured panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A handle to a scope, passed both to the `scope` closure and to every
    /// spawned closure (crossbeam's signature — spawned closures usually
    /// ignore it with `|_|`).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope so it can
        /// spawn further threads.
        pub fn spawn<F, T>(self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(Scope { inner })),
            }
        }
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish; `Err` carries its panic payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Creates a scope in which threads borrowing from the environment can
    /// be spawned; all spawned threads are joined before `scope` returns.
    ///
    /// Unlike crossbeam, a panic in an *unjoined* child propagates out of
    /// the enclosing `std::thread::scope` instead of being folded into the
    /// `Err` value — our callers join every handle, so the difference is
    /// unobservable here.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(Scope { inner: s })))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let n = crate::thread::scope(|s| {
            let h = s.spawn(|inner| inner.spawn(|_| 21u32).join().unwrap() * 2);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
