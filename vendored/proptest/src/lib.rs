//! Minimal, offline re-implementation of the subset of the proptest API this
//! workspace uses: the `proptest!` macro, `Strategy` with the
//! `prop_map`/`prop_flat_map`/`prop_filter`/`prop_recursive` adapters,
//! `any::<T>()`, ranges, tuples, `Just`, simple `.{m,n}` string patterns,
//! `prop_oneof!`, and the `collection`/`option`/`num` strategy modules.
//!
//! Differences from real proptest, deliberately accepted:
//! - **No shrinking.** A failing case panics with the generated inputs
//!   fixed by the deterministic per-test seed, which is reproducible.
//! - String "regex" strategies support only the `.{m,n}` shapes the
//!   workspace uses; anything else is emitted literally.
//! - `prop_assume!` skips the case rather than tracking a rejection quota.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};

/// Per-run configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

#[doc(hidden)]
pub fn __seed_from_name(name: &str) -> u64 {
    // FNV-1a over the test name, xored with an env override if present so a
    // failing corpus can be re-explored with PROPTEST_RNG_SEED=n.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    match std::env::var("PROPTEST_RNG_SEED") {
        Ok(v) => h ^ v.parse::<u64>().unwrap_or(0),
        Err(_) => h,
    }
}

#[doc(hidden)]
pub fn __new_test_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Outcome of a single generated case; test bodies may `return Ok(())` to
/// accept a case early, and `prop_assume!` rejects via `Err(Reject)`.
#[derive(Debug)]
pub enum TestCaseError {
    Reject(String),
    Fail(String),
}

/// Strategies for generating collections.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;
    use std::collections::BTreeMap;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's size.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        pub(crate) fn sample(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.lo..=self.hi)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec`s of `elem`-generated values with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    #[derive(Clone, Debug)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// `BTreeMap`s with up to `size` entries (duplicate keys collapse).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

/// Strategies over `Option`.
pub mod option {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S>(S);

    /// `Some` roughly three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            if rng.random_bool(0.75) {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Numeric strategy constants (`prop::num::f64::NORMAL` and friends).
pub mod num {
    pub mod f64 {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::RngCore;

        /// Normal (finite, non-zero-exponent-class) `f64`s of either sign.
        #[derive(Clone, Copy, Debug)]
        pub struct Normal;

        pub const NORMAL: Normal = Normal;

        impl Strategy for Normal {
            type Value = f64;
            fn generate(&self, rng: &mut StdRng) -> f64 {
                loop {
                    let v = f64::from_bits(rng.next_u64());
                    if v.is_normal() {
                        return v;
                    }
                }
            }
        }
    }
}

/// Types which have a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        use rand::RngCore;
        f32::from_bits(rng.next_u32())
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        use rand::RngCore;
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut StdRng) -> Self {
        use rand::RngExt;
        loop {
            // Mostly ASCII (keeps failure output readable), sometimes any
            // valid scalar value.
            let c = if rng.random_bool(0.8) {
                char::from_u32(rng.random_range(0x20u32..0x7f))
            } else {
                char::from_u32(rng.random_range(0u32..=0x10_FFFF))
            };
            if let Some(c) = c {
                return c;
            }
        }
    }
}

/// The canonical strategy for `T`.
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Everything tests usually import, plus the `prop` module alias.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, ProptestConfig,
    };

    /// Mirror of proptest's `prop` facade module.
    pub mod prop {
        pub use crate::{collection, num, option};
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property tests. Each case regenerates all bound inputs from a
/// deterministic per-test rng and runs the body; panics fail the test.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr)
        $($(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __rng =
                    $crate::__new_test_rng($crate::__seed_from_name(stringify!($name)));
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    // The body runs in a closure so `return Ok(())` accepts a
                    // case early and `prop_assume!` can reject one.
                    #[allow(unreachable_code)]
                    let __outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                            panic!("proptest case failed: {}", __msg)
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current generated case when its inputs are uninteresting.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Chooses uniformly among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}
