//! The `Strategy` trait and the combinators this workspace uses.

use rand::rngs::StdRng;
use rand::RngExt;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A generator of values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking; `generate`
/// produces one value per invocation from the shared test rng.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Builds a recursive strategy: `self` generates leaves and `branch`
    /// wraps an inner strategy into one more level of structure. `depth`
    /// bounds nesting; the size/branch hints are accepted but unused.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            let deeper = branch(strat.clone()).boxed();
            strat = Union::new(vec![strat, deeper]).boxed();
        }
        strat
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy(..)")
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among strategies with a common value type
/// (the expansion of `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let idx = rng.random_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 1024 candidates in a row",
            self.whence
        );
    }
}

// --- ranges ---------------------------------------------------------------

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }
}

// --- tuples ---------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($S:ident),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($S,)+) = self;
                ($($S.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, G);
tuple_strategy!(A, B, C, D, E, G, H);
tuple_strategy!(A, B, C, D, E, G, H, I);

// --- string patterns ------------------------------------------------------

/// `&'static str` is interpreted as a (tiny) regex subset: `.{m,n}` produces
/// `m..=n` printable ASCII chars. Any other pattern is produced literally.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        if let Some((lo, hi)) = parse_dot_repeat(self) {
            let n = rng.random_range(lo..=hi);
            (0..n)
                .map(|_| rng.random_range(0x20u8..0x7f) as char)
                .collect()
        } else {
            (*self).to_string()
        }
    }
}

fn parse_dot_repeat(pat: &str) -> Option<(usize, usize)> {
    let rest = pat.strip_prefix(".{")?;
    let rest = rest.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    let lo: usize = lo.trim().parse().ok()?;
    let hi: usize = hi.trim().parse().ok()?;
    (lo <= hi).then_some((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn ranges_and_map() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (3usize..15).generate(&mut r);
            assert!((3..15).contains(&v));
            let w = (1u8..=255).generate(&mut r);
            assert!(w >= 1);
            let s = (0i64..10).prop_map(|x| x * 2).generate(&mut r);
            assert!(s % 2 == 0 && (0..20).contains(&s));
        }
    }

    #[test]
    fn union_filter_recursive() {
        let mut r = rng();
        let u = crate::prop_oneof![Just(1u32), Just(2u32), 5u32..8];
        for _ in 0..100 {
            let v = u.generate(&mut r);
            assert!(v == 1 || v == 2 || (5..8).contains(&v));
        }
        let f = (0u32..100).prop_filter("even", |x| x % 2 == 0);
        for _ in 0..50 {
            assert!(f.generate(&mut r) % 2 == 0);
        }
        let rec = Just(0usize).prop_recursive(4, 32, 4, |inner| inner.prop_map(|d| d + 1));
        for _ in 0..50 {
            assert!(rec.generate(&mut r) <= 4);
        }
    }

    #[test]
    fn string_patterns() {
        let mut r = rng();
        for _ in 0..100 {
            let s = ".{0,12}".generate(&mut r);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
        assert_eq!("literal".generate(&mut r), "literal");
    }
}
