//! Minimal, offline re-implementation of the subset of the `rand` API this
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the
//! `random_range`/`random_bool` extension methods.
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — not cryptographic,
//! but statistically solid and fully deterministic per seed, which is what
//! the generators, property tests, and benchmarks need.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Marker trait mirroring `rand::Rng`; all the callable surface lives on
/// [`RngExt`] so that importing both traits never creates method ambiguity.
pub trait Rng: RngCore {}

impl<T: RngCore + ?Sized> Rng for T {}

/// A type that can be sampled uniformly from a range by an rng.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough uniform integer in `[0, bound)` using Lemire's
/// widening-multiply method with a rejection loop for exactness.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    // Sample 128 random bits and reject the biased zone.
    let zone = u128::MAX - (u128::MAX - bound + 1) % bound;
    loop {
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if wide <= zone {
            return wide % bound;
        }
    }
}

/// Element types that can be drawn uniformly from a range.
///
/// The single generic `SampleRange` impl below is what lets integer-literal
/// range bounds unify with the surrounding inferred type (e.g.
/// `rng.random_range(0..100) < some_u32`), matching real rand's behaviour.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "cannot sample empty range");
                let off = uniform_below(rng, span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_in(rng, lo, hi, true)
    }
}

/// High-level sampling methods (the `rand` 0.9+ naming).
pub trait RngExt: RngCore {
    /// Uniform sample from an integer or float range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore> RngExt for T {}

/// Construction of rngs from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..=u64::MAX),
                b.random_range(0u64..=u64::MAX)
            );
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.random_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
