//! Property tests for the per-tenant privacy views of DESIGN.md §16: a
//! restricted tenant must not be able to distinguish two runs that differ
//! only *inside* the concealed composites — by any query form, by the
//! answers' exact bytes, or by error shapes (present-but-hidden data must
//! render identically to data that never existed).
//!
//! Construction: a chain workflow `M1 → … → Mn` with one hidden module H.
//! The compiled privacy view (`conceal`) places H in a composite with at
//! least one chain neighbour, so the data edge between them is internal
//! to the composite. Run A carries one datum on that edge; run B carries
//! different (and more) data ids there. Everything else is identical, so
//! the two runs differ only in the hidden module's concealed I/O — and
//! the restricted tenant's whole query matrix must agree on them, both
//! through the local [`Zoom`] facade and over the wire through
//! [`RemoteZoom`].

use proptest::prelude::*;
use zoom::core::{Daemon, DaemonConfig, QuerySession, RemoteZoom, Zoom};
use zoom::model::{DataId, SpecBuilder, UserView, WorkflowRun, WorkflowSpec};
use zoom::warehouse::{RunId, ViewId, VisibilityPolicy, WarehouseError};
use zoom_graph::NodeId;

/// A chain spec `M1 → … → Mn` and its module ids in chain order.
fn chain_spec(n: usize) -> (WorkflowSpec, Vec<NodeId>) {
    let mut b = SpecBuilder::new("chain");
    let labels: Vec<String> = (1..=n).map(|i| format!("M{i}")).collect();
    for (i, l) in labels.iter().enumerate() {
        if i % 2 == 0 {
            b.analysis(l.clone());
        } else {
            b.formatting(l.clone());
        }
    }
    b.from_input(&labels[0]);
    for w in labels.windows(2) {
        b.edge(&w[0], &w[1]);
    }
    b.to_output(&labels[n - 1]);
    let spec = b.build().expect("chains are valid workflows");
    let mods: Vec<NodeId> = labels
        .iter()
        .map(|l| spec.module(l).expect("just built"))
        .collect();
    (spec, mods)
}

/// The chain position `j` such that modules `j` and `j+1` share the
/// privacy view's composite containing `hidden` — the data edge between
/// them is internal to the concealed composite, and one endpoint is the
/// hidden module itself.
fn concealed_edge(pv: &UserView, mods: &[NodeId], hidden: usize) -> usize {
    let comp = pv
        .composites()
        .iter()
        .find(|c| c.members.contains(&mods[hidden]))
        .expect("conceal() places every hidden module in a composite");
    if hidden > 0 && comp.members.contains(&mods[hidden - 1]) {
        hidden - 1
    } else {
        assert!(
            comp.members.contains(&mods[hidden + 1]),
            "a concealing composite absorbs a chain neighbour"
        );
        hidden
    }
}

/// A chain run: input `d1`, data `d(i+1)` between positions `i` and
/// `i+1`, output `d(n+1)` — except the edge at `internal_at`, which
/// carries `internal_ids` instead.
fn chain_run(
    spec: &WorkflowSpec,
    mods: &[NodeId],
    internal_at: usize,
    internal_ids: &[u64],
) -> WorkflowRun {
    let n = mods.len();
    let mut rb = zoom::model::RunBuilder::new(spec);
    let steps: Vec<_> = mods.iter().map(|&m| rb.step(m)).collect();
    rb.input_edge(steps[0], [1]);
    for i in 0..n - 1 {
        if i == internal_at {
            rb.data_edge(steps[i], steps[i + 1], internal_ids.iter().copied());
        } else {
            rb.data_edge(steps[i], steps[i + 1], [i as u64 + 2]);
        }
    }
    rb.output_edge(steps[n - 1], [n as u64 + 1]);
    rb.build().expect("chain runs are valid")
}

/// Every answer the restricted tenant can extract locally for one run:
/// rendered to strings so byte-level differences count.
fn local_transcript(zoom: &Zoom, tenant: &str, run: RunId, view: ViewId, probes: &[u64]) -> String {
    let mut t = String::new();
    let vis = zoom.visible_data_as(tenant, run, view);
    t.push_str(&format!("visible: {vis:?}\n"));
    t.push_str(&format!(
        "finals: {:?}\n",
        zoom.final_outputs_as(tenant, run)
    ));
    for &d in probes {
        let d = DataId(d);
        t.push_str(&format!(
            "deep {d}: {:?}\n",
            zoom.deep_provenance_as(tenant, run, view, d)
                .map_err(|e| e.to_string())
        ));
        t.push_str(&format!(
            "imm {d}: {:?}\n",
            zoom.immediate_provenance_as(tenant, run, view, d)
                .map_err(|e| e.to_string())
        ));
        t.push_str(&format!(
            "deps {d}: {:?}\n",
            zoom.dependents_of_as(tenant, run, view, d)
                .map_err(|e| e.to_string())
        ));
    }
    let batch: Vec<u64> = probes.to_vec();
    let answers = zoom.query_batch_as(
        tenant,
        &batch
            .iter()
            .map(|&d| (run, view, DataId(d)))
            .collect::<Vec<_>>(),
    );
    for a in answers {
        t.push_str(&format!("batch: {:?}\n", a.map_err(|e| e.to_string())));
    }
    t
}

/// The same matrix over the wire, as the restricted tenant's own
/// connection — wire rendering included.
fn remote_transcript(rz: &mut RemoteZoom, run: RunId, view: ViewId, probes: &[u64]) -> String {
    let mut t = String::new();
    t.push_str(&format!(
        "visible: {:?}\n",
        rz.visible_data(run, view).map_err(|e| e.to_string())
    ));
    t.push_str(&format!(
        "finals: {:?}\n",
        rz.final_outputs(run).map_err(|e| e.to_string())
    ));
    for &d in probes {
        let d = DataId(d);
        t.push_str(&format!(
            "deep {d}: {:?}\n",
            rz.deep_provenance(run, view, d).map_err(|e| e.to_string())
        ));
        t.push_str(&format!(
            "imm {d}: {:?}\n",
            rz.immediate_provenance(run, view, d)
                .map(|a| format!("{a:?}"))
                .map_err(|e| e.to_string())
        ));
        t.push_str(&format!(
            "deps {d}: {:?}\n",
            rz.dependents_of(run, view, d).map_err(|e| e.to_string())
        ));
    }
    t
}

/// Strips the run id from a transcript so the two runs' transcripts are
/// directly comparable (the ids themselves legitimately differ).
fn normalized(t: &str, run: RunId) -> String {
    t.replace(&format!("{run:?}"), "RUN")
        .replace(&format!("run {}", run.0), "run RUN")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Local facade: the full tenant-scoped query matrix cannot tell the
    /// two runs apart, while an unrestricted tenant (the control) can.
    #[test]
    fn restricted_tenant_cannot_distinguish_hidden_internals(
        n in 3usize..8,
        hidden_pick in 0usize..8,
        extra in 0usize..2,
    ) {
        let extra = extra == 1;
        let hidden = hidden_pick % n;
        let (spec, mods) = chain_spec(n);
        let hidden_label = spec.label(mods[hidden]).to_string();
        let pv = zoom::warehouse::conceal(&spec, &[mods[hidden]]).expect("n >= 2");
        let j = concealed_edge(&pv, &mods, hidden);

        let mut zoom = Zoom::new();
        let sid = zoom.register_workflow(spec.clone()).unwrap();
        let admin = zoom.admin_view(sid).unwrap();
        let ids_b: Vec<u64> = if extra { vec![1000, 1001] } else { vec![1000] };
        let rid_a = zoom.load_run(sid, chain_run(&spec, &mods, j, &[j as u64 + 2])).unwrap();
        let rid_b = zoom.load_run(sid, chain_run(&spec, &mods, j, &ids_b)).unwrap();
        zoom.set_policy("alice", Some(VisibilityPolicy {
            hidden_modules: vec![hidden_label],
            hidden_workflows: vec![],
        })).unwrap();

        // Probes: every datum of either run plus a never-existed id —
        // the concealed edge's data ids included, from both runs.
        let mut probes: Vec<u64> = (1..=n as u64 + 1).collect();
        probes.extend([1000, 1001, 4242]);

        let ta = normalized(&local_transcript(&zoom, "alice", rid_a, admin, &probes), rid_a);
        let tb = normalized(&local_transcript(&zoom, "alice", rid_b, admin, &probes), rid_b);
        prop_assert_eq!(&ta, &tb, "restricted transcripts diverged");

        // Control: without a policy the same matrix distinguishes the
        // runs (otherwise this test proves nothing).
        let ca = normalized(&local_transcript(&zoom, "bob", rid_a, admin, &probes), rid_a);
        let cb = normalized(&local_transcript(&zoom, "bob", rid_b, admin, &probes), rid_b);
        prop_assert_ne!(&ca, &cb, "unrestricted control could not distinguish the runs");

        // Hidden-and-present renders exactly like absent: the concealed
        // datum of run B probed as alice vs. a never-existed id.
        let hidden_err = zoom
            .deep_provenance_as("alice", rid_b, admin, DataId(1000))
            .unwrap_err()
            .to_string();
        let absent_err = zoom
            .deep_provenance_as("alice", rid_b, admin, DataId(4242))
            .unwrap_err()
            .to_string();
        let e1 = hidden_err.replace("1000", "D");
        let e2 = absent_err.replace("4242", "D");
        prop_assert_eq!(e1, e2, "hidden datum distinguishable from absent");

        // Interactive sessions ride the same enforcement.
        let mut sa = QuerySession::open_as(&zoom, "alice", rid_a, admin);
        let mut sb = QuerySession::open_as(&zoom, "alice", rid_b, admin);
        let ra = sa.focus_final_output().unwrap();
        let rb = sb.focus_final_output().unwrap();
        prop_assert_eq!(ra.rows, rb.rows);
    }

    /// Remote facade: the wire path (daemon enforcement + error
    /// rendering) is just as blind.
    #[test]
    fn remote_restricted_tenant_cannot_distinguish_hidden_internals(
        n in 3usize..7,
        hidden_pick in 0usize..8,
    ) {
        let hidden = hidden_pick % n;
        let (spec, mods) = chain_spec(n);
        let hidden_label = spec.label(mods[hidden]).to_string();
        let pv = zoom::warehouse::conceal(&spec, &[mods[hidden]]).expect("n >= 2");
        let j = concealed_edge(&pv, &mods, hidden);

        let daemon = Daemon::spawn("127.0.0.1:0", DaemonConfig { shards: 2, ..DaemonConfig::default() })
            .expect("ephemeral port");
        let mut ctl = RemoteZoom::connect(daemon.addr(), "ctl").unwrap();
        let sid = ctl.register_workflow(spec.clone()).unwrap();
        let admin = ctl.admin_view(sid).unwrap();
        let log_a = zoom::model::EventLog::from_run(&chain_run(&spec, &mods, j, &[j as u64 + 2]), &spec);
        let log_b = zoom::model::EventLog::from_run(&chain_run(&spec, &mods, j, &[1000, 1001]), &spec);
        let rid_a = ctl.load_log(sid, &log_a).unwrap();
        let rid_b = ctl.load_log(sid, &log_b).unwrap();
        // Tokenless daemon: loopback connections are admin, so the
        // operator connection may install alice's policy.
        ctl.set_policy("alice", Some(VisibilityPolicy {
            hidden_modules: vec![hidden_label],
            hidden_workflows: vec![],
        }), None).unwrap();

        let mut alice = RemoteZoom::connect(daemon.addr(), "alice").unwrap();
        let mut probes: Vec<u64> = (1..=n as u64 + 1).collect();
        probes.extend([1000, 1001, 4242]);
        let ta = normalized(&remote_transcript(&mut alice, rid_a, admin, &probes), rid_a);
        let tb = normalized(&remote_transcript(&mut alice, rid_b, admin, &probes), rid_b);
        prop_assert_eq!(&ta, &tb, "restricted wire transcripts diverged");

        let mut bob = RemoteZoom::connect(daemon.addr(), "bob").unwrap();
        let ca = normalized(&remote_transcript(&mut bob, rid_a, admin, &probes), rid_a);
        let cb = normalized(&remote_transcript(&mut bob, rid_b, admin, &probes), rid_b);
        prop_assert_ne!(&ca, &cb, "unrestricted wire control could not distinguish the runs");

        // Hidden-and-present vs. never-existed over the wire: identical
        // error bytes modulo the probed id.
        let hidden_err = alice.deep_provenance(rid_b, admin, DataId(1000)).unwrap_err().to_string();
        let absent_err = alice.deep_provenance(rid_b, admin, DataId(4242)).unwrap_err().to_string();
        prop_assert_eq!(hidden_err.replace("1000", "D"), absent_err.replace("4242", "D"));
    }
}

/// Deterministic regression: substitution answers equal what an
/// unrestricted caller sees at the privacy view directly — enforcement
/// is view substitution, not result rewriting.
#[test]
fn substitution_matches_direct_privacy_view_query() {
    let (spec, mods) = chain_spec(5);
    let mut zoom = Zoom::new();
    let sid = zoom.register_workflow(spec.clone()).unwrap();
    let admin = zoom.admin_view(sid).unwrap();
    let rid = zoom
        .load_run(sid, chain_run(&spec, &mods, 1, &[3]))
        .unwrap();
    zoom.set_policy(
        "alice",
        Some(VisibilityPolicy {
            hidden_modules: vec!["M2".to_string()],
            hidden_workflows: vec![],
        }),
    )
    .unwrap();
    let pv_id = zoom
        .private_view(sid, &["M2"])
        .expect("satisfiable: 5 modules");
    for d in zoom.visible_data_as("alice", rid, admin).unwrap() {
        let as_alice = zoom.deep_provenance_as("alice", rid, admin, d).unwrap();
        let direct = zoom.deep_provenance(rid, pv_id, d).unwrap();
        assert_eq!(as_alice.rows, direct.rows);
    }
    // The metrics registry counted the substitutions.
    let m = zoom.metrics();
    assert!(m.privacy.substitutions > 0, "{m:?}");
}

/// An unsatisfiable policy (single-module workflow) fails at
/// administration time with the typed error, not at query time.
#[test]
fn unsatisfiable_policy_fails_at_install() {
    let mut b = SpecBuilder::new("solo");
    b.analysis("Only");
    b.from_input("Only").to_output("Only");
    let spec = b.build().unwrap();
    let mut zoom = Zoom::new();
    zoom.register_workflow(spec).unwrap();
    let err = zoom
        .set_policy(
            "alice",
            Some(VisibilityPolicy {
                hidden_modules: vec!["Only".to_string()],
                hidden_workflows: vec![],
            }),
        )
        .unwrap_err();
    assert!(
        matches!(err, WarehouseError::PolicyUnsatisfiable { .. }),
        "{err}"
    );
}
