//! End-to-end tests of the `zoomctl` binary: the demo → inspect → query →
//! render → repl pipeline, driven exactly as a user would.

use std::path::PathBuf;
use std::process::{Command, Stdio};

fn zoomctl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_zoomctl"))
}

fn temp_snapshot(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("zoomctl-test-{name}-{}", std::process::id()));
    p
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("zoomctl spawns");
    assert!(
        out.status.success(),
        "zoomctl failed: {}\n{}",
        String::from_utf8_lossy(&out.stderr),
        String::from_utf8_lossy(&out.stdout)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

#[test]
fn demo_inspect_query_render() {
    let snap = temp_snapshot("pipeline");
    let snap_s = snap.to_str().expect("utf-8 path");

    let out = run_ok(zoomctl().args(["demo", snap_s]));
    assert!(out.contains("demo warehouse written"));

    let out = run_ok(zoomctl().args(["stats", snap_s]));
    assert!(out.contains("data objects : 447"), "{out}");

    let out = run_ok(zoomctl().args(["specs", snap_s]));
    assert!(out.contains("phylogenomic"), "{out}");

    let out = run_ok(zoomctl().args(["views", snap_s, "phylogenomic"]));
    assert!(out.contains("UAdmin"));
    assert!(out.contains("UV(M2,M3,M7)"));

    let out = run_ok(zoomctl().args(["runs", snap_s, "phylogenomic"]));
    assert!(out.contains("10 steps"), "{out}");
    assert!(out.contains("d447"));

    // The paper's question through Joe's view.
    let out = run_ok(zoomctl().args([
        "query",
        snap_s,
        "phylogenomic",
        "0",
        "UV(M2,M3,M7)",
        "immediate d413",
    ]));
    assert!(out.contains("101 input(s): d308..d408"), "{out}");

    // Register Mary's view from the CLI; the snapshot is updated in place.
    let out =
        run_ok(zoomctl().args(["build-view", snap_s, "phylogenomic", "M2", "M3", "M5", "M7"]));
    assert!(out.contains("size 5"), "{out}");
    let out = run_ok(zoomctl().args([
        "query",
        snap_s,
        "phylogenomic",
        "0",
        "UV(M2,M3,M5,M7)",
        "immediate d413",
    ]));
    assert!(out.contains("1 input(s): d411"), "{out}");

    // DOT rendering.
    let out = run_ok(zoomctl().args(["render", snap_s, "phylogenomic", "0", "UAdmin", "d447"]));
    assert!(out.starts_with("digraph"));
    assert!(out.contains("S10:M7"));

    std::fs::remove_file(&snap).ok();
}

#[test]
fn repl_session_via_stdin() {
    let snap = temp_snapshot("repl");
    let snap_s = snap.to_str().expect("utf-8 path");
    run_ok(zoomctl().args(["demo", snap_s]));

    let mut child = zoomctl()
        .args(["repl", snap_s, "phylogenomic", "0"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawns");
    {
        use std::io::Write;
        let stdin = child.stdin.as_mut().expect("piped");
        stdin
            .write_all(b"flag M3\nflag M7\nimmediate d413\nview UAdmin\nfinal\nquit\n")
            .expect("writes");
    }
    let out = child.wait_with_output().expect("completes");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("rebuilt: UV(M3,M7)"), "{text}");
    assert!(text.contains("produced by"), "{text}");
    assert!(text.contains("d447"), "{text}");
    assert!(text.contains("session views saved"), "{text}");

    std::fs::remove_file(&snap).ok();
}

#[test]
fn compact_and_fsck_durable_directory() {
    let mut dir = std::env::temp_dir();
    dir.push(format!("zoomctl-test-durable-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let dir_s = dir.to_str().expect("utf-8 path");

    // Populate a durable store through the library API, as an embedding
    // application would.
    {
        use zoom::gen::library::{figure2_run, phylogenomic};
        let mut z = zoom::Zoom::open_durable(&dir).expect("durable open");
        let spec = phylogenomic();
        let sid = z.register_workflow(spec.clone()).expect("spec");
        z.admin_view(sid).expect("view");
        z.load_run(sid, figure2_run(&spec)).expect("run");
    }

    // fsck reports the journaled state without modifying it.
    let out = run_ok(zoomctl().args(["fsck", dir_s]));
    assert!(out.contains("epoch:           0"), "{out}");
    assert!(out.contains("journal records: 3"), "{out}");
    assert!(out.contains("1 specs, 1 views, 1 runs"), "{out}");
    assert!(out.contains("torn bytes:      0"), "{out}");

    // compact swings to a snapshot generation.
    let out = run_ok(zoomctl().args(["compact", dir_s]));
    assert!(out.contains("epoch 1"), "{out}");
    assert!(out.contains("journal tail : 0 records"), "{out}");

    let out = run_ok(zoomctl().args(["fsck", dir_s]));
    assert!(out.contains("epoch:           1"), "{out}");
    assert!(out.contains("snapshot:        snap-000001.zoomwh"), "{out}");
    assert!(out.contains("strays:          (none)"), "{out}");

    // compact on a non-durable path is a clean error.
    let out = zoomctl()
        .args(["compact", "/nonexistent-zoom-dir"])
        .output()
        .expect("spawns");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no MANIFEST"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn errors_are_reported_cleanly() {
    let snap = temp_snapshot("errors");
    let snap_s = snap.to_str().expect("utf-8 path");

    // Missing snapshot.
    let out = zoomctl().args(["stats", snap_s]).output().expect("spawns");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot load"));

    run_ok(zoomctl().args(["demo", snap_s]));
    // Unknown workflow.
    let out = zoomctl()
        .args(["views", snap_s, "nope"])
        .output()
        .expect("spawns");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no workflow named"));
    // Bad query form.
    let out = zoomctl()
        .args(["query", snap_s, "phylogenomic", "0", "UAdmin", "frobnicate"])
        .output()
        .expect("spawns");
    assert!(!out.status.success());

    std::fs::remove_file(&snap).ok();
}
