//! The base-closure index is an *optimization*, not a semantics change:
//! on generated workloads across all workflow classes, the indexed query
//! paths must return byte-identical answers to both the member-iterating
//! BFS path and the original whole-graph-scan reference (`*_bfs`), at
//! every view level — UAdmin, UBlackBox, and a built intermediate view.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use zoom::model::{UserView, ViewRun, WorkflowRun, WorkflowSpec};
use zoom::warehouse::{
    deep_provenance, deep_provenance_bfs, deep_provenance_indexed, dependents_of,
    dependents_of_bfs, dependents_of_indexed, ProvenanceIndex,
};
use zoom_gen::{generate_run, generate_spec, RunGenConfig, SpecGenConfig, WorkflowClass};
use zoom_views::relev_user_view_builder;

fn workload(seed: u64, class: u8, modules: usize) -> (WorkflowSpec, WorkflowRun) {
    let mut rng = StdRng::seed_from_u64(seed);
    let class = match class % 3 {
        0 => WorkflowClass::Linear,
        1 => WorkflowClass::Parallel,
        _ => WorkflowClass::Loop,
    };
    let spec = generate_spec("idx-prop", &SpecGenConfig::new(class, modules), &mut rng);
    let cfg = RunGenConfig {
        user_input: (1, 20),
        data_per_step: (1, 4),
        loop_iterations: (1, 6),
        max_nodes: 300,
        max_edges: 300,
    };
    let run = generate_run(&spec, &cfg, &mut rng).expect("valid run");
    (spec, run)
}

/// A built intermediate view from a random relevant-module mask.
fn mid_view(spec: &WorkflowSpec, mask: u64) -> UserView {
    let relevant: Vec<_> = spec
        .module_ids()
        .enumerate()
        .filter(|(i, _)| mask & (1 << (i % 64)) != 0)
        .map(|(_, m)| m)
        .collect();
    relev_user_view_builder(spec, &relevant)
        .expect("builds")
        .view
}

/// Checks all three deep-provenance forms and all three dependents forms
/// agree for every (sampled) data object of the run at one view level.
fn assert_equivalent(run: &WorkflowRun, vr: &ViewRun, index: &ProvenanceIndex) {
    let data = run.all_data();
    for &d in data.iter().step_by((data.len() / 25).max(1)) {
        let plain = deep_provenance(run, vr, d);
        let indexed = deep_provenance_indexed(run, vr, index, d);
        let oracle = deep_provenance_bfs(run, vr, d);
        assert_eq!(indexed, oracle, "indexed deep provenance of {d} diverges");
        assert_eq!(plain, oracle, "plain deep provenance of {d} diverges");

        let plain = dependents_of(run, vr, d);
        let indexed = dependents_of_indexed(run, vr, index, d);
        let oracle = dependents_of_bfs(run, vr, d);
        assert_eq!(indexed, oracle, "indexed dependents of {d} diverge");
        assert_eq!(plain, oracle, "plain dependents of {d} diverge");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One index per run answers every view level exactly like the
    /// per-query BFS and the original scan-everything reference.
    #[test]
    fn indexed_queries_match_bfs_oracles(
        seed in any::<u64>(),
        class in any::<u8>(),
        modules in 3usize..15,
        mask in any::<u64>(),
    ) {
        let (spec, run) = workload(seed, class, modules);
        let index = ProvenanceIndex::build(&run).expect("generated runs are acyclic");
        prop_assert_eq!(index.node_count(), run.graph().node_count());

        for view in [
            UserView::admin(&spec),
            UserView::black_box(&spec),
            mid_view(&spec, mask),
        ] {
            let vr = ViewRun::new(&run, &view);
            assert_equivalent(&run, &vr, &index);
        }
    }

    /// Hidden data is rejected identically by all three forms (None from
    /// each), so the facade's visible/missing error mapping is unaffected
    /// by which path answers.
    #[test]
    fn invisibility_agrees_across_forms(
        seed in any::<u64>(),
        class in any::<u8>(),
        modules in 3usize..12,
    ) {
        let (spec, run) = workload(seed, class, modules);
        let index = ProvenanceIndex::build(&run).expect("generated runs are acyclic");
        let vr = ViewRun::new(&run, &UserView::black_box(&spec));
        for &d in run.all_data().iter().take(40) {
            let visible = vr.is_visible(d);
            prop_assert_eq!(deep_provenance(&run, &vr, d).unwrap().is_some(), visible);
            prop_assert_eq!(deep_provenance_indexed(&run, &vr, &index, d).unwrap().is_some(), visible);
            prop_assert_eq!(deep_provenance_bfs(&run, &vr, d).unwrap().is_some(), visible);
            prop_assert_eq!(dependents_of(&run, &vr, d).is_some(), visible);
            prop_assert_eq!(dependents_of_indexed(&run, &vr, &index, d).is_some(), visible);
            prop_assert_eq!(dependents_of_bfs(&run, &vr, d).is_some(), visible);
        }
    }
}
