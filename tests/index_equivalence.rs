//! The reachability indexes are *optimizations*, not semantics changes:
//! on generated workloads across all workflow classes, the bitset-indexed
//! and interval-labeled query paths must return byte-identical answers to
//! both the member-iterating BFS path and the original whole-graph-scan
//! reference (`*_bfs`), at every view level — UAdmin, UBlackBox, and a
//! built intermediate view — and the incrementally-appended label index
//! must equal the from-scratch build on every pair.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use zoom::graph::{reachable_set, Digraph, Direction, NodeId};
use zoom::model::{UserView, ViewRun, WorkflowRun, WorkflowSpec};
use zoom::warehouse::{
    deep_provenance, deep_provenance_bfs, deep_provenance_indexed, deep_provenance_labeled,
    dependents_of, dependents_of_bfs, dependents_of_indexed, dependents_of_labeled, Deadline,
    LabelIndex, ProvenanceIndex, UpdateOutcome,
};
use zoom_gen::{generate_run, generate_spec, RunGenConfig, SpecGenConfig, WorkflowClass};
use zoom_views::relev_user_view_builder;

fn workload(seed: u64, class: u8, modules: usize) -> (WorkflowSpec, WorkflowRun) {
    let mut rng = StdRng::seed_from_u64(seed);
    let class = match class % 3 {
        0 => WorkflowClass::Linear,
        1 => WorkflowClass::Parallel,
        _ => WorkflowClass::Loop,
    };
    let spec = generate_spec("idx-prop", &SpecGenConfig::new(class, modules), &mut rng);
    let cfg = RunGenConfig {
        user_input: (1, 20),
        data_per_step: (1, 4),
        loop_iterations: (1, 6),
        max_nodes: 300,
        max_edges: 300,
    };
    let run = generate_run(&spec, &cfg, &mut rng).expect("valid run");
    (spec, run)
}

/// A built intermediate view from a random relevant-module mask.
fn mid_view(spec: &WorkflowSpec, mask: u64) -> UserView {
    let relevant: Vec<_> = spec
        .module_ids()
        .enumerate()
        .filter(|(i, _)| mask & (1 << (i % 64)) != 0)
        .map(|(_, m)| m)
        .collect();
    relev_user_view_builder(spec, &relevant)
        .expect("builds")
        .view
}

/// Checks all four deep-provenance forms and all four dependents forms
/// agree for every (sampled) data object of the run at one view level.
fn assert_equivalent(
    run: &WorkflowRun,
    vr: &ViewRun,
    index: &ProvenanceIndex,
    labels: &LabelIndex,
) {
    let data = run.all_data();
    for &d in data.iter().step_by((data.len() / 25).max(1)) {
        let plain = deep_provenance(run, vr, d);
        let indexed = deep_provenance_indexed(run, vr, index, d);
        let labeled = deep_provenance_labeled(run, vr, labels, d);
        let oracle = deep_provenance_bfs(run, vr, d);
        assert_eq!(indexed, oracle, "indexed deep provenance of {d} diverges");
        assert_eq!(labeled, oracle, "labeled deep provenance of {d} diverges");
        assert_eq!(plain, oracle, "plain deep provenance of {d} diverges");

        let plain = dependents_of(run, vr, d);
        let indexed = dependents_of_indexed(run, vr, index, d);
        let labeled = dependents_of_labeled(run, vr, labels, d);
        let oracle = dependents_of_bfs(run, vr, d);
        assert_eq!(indexed, oracle, "indexed dependents of {d} diverge");
        assert_eq!(labeled, oracle, "labeled dependents of {d} diverge");
        assert_eq!(plain, oracle, "plain dependents of {d} diverge");
    }
}

/// Builds a DAG from per-node predecessor lists (edges `p -> v`, `p < v`).
fn dag_from_preds(preds: &[Vec<usize>]) -> Digraph<(), ()> {
    let mut g = Digraph::new();
    for _ in 0..preds.len() {
        g.add_node(());
    }
    for (v, ps) in preds.iter().enumerate() {
        for &p in ps {
            g.add_edge(NodeId::from_index(p), NodeId::from_index(v), ());
        }
    }
    g
}

/// Random predecessor lists for an `n`-node DAG in index order: node `v`
/// draws each earlier node as a predecessor with probability ~`density`%.
fn random_preds(seed: u64, n: usize, density: u8) -> Vec<Vec<usize>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let p = f64::from(density % 50) / 100.0 + 0.02;
    (0..n)
        .map(|v| (0..v).filter(|_| rng.random_bool(p)).collect())
        .collect()
}

/// Asserts `idx` answers `reaches` exactly like a fresh build *and* like
/// the per-source BFS oracle, over every ordered pair.
fn assert_label_index_exact(idx: &LabelIndex, g: &Digraph<(), ()>) {
    let fresh = LabelIndex::build_graph(g, &mut Deadline::unlimited()).expect("acyclic");
    for u in g.node_ids() {
        let reach = reachable_set(g, u, Direction::Forward);
        for v in g.node_ids() {
            let oracle = reach.contains(v.index());
            assert_eq!(idx.reaches(u, v), oracle, "reaches({u:?},{v:?}) diverges");
            assert_eq!(fresh.reaches(u, v), oracle, "fresh reaches({u:?},{v:?})");
        }
    }
    assert_eq!(idx.node_count(), fresh.node_count());
    assert_eq!(idx.edge_count(), fresh.edge_count());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One index per run answers every view level exactly like the
    /// per-query BFS and the original scan-everything reference.
    #[test]
    fn indexed_queries_match_bfs_oracles(
        seed in any::<u64>(),
        class in any::<u8>(),
        modules in 3usize..15,
        mask in any::<u64>(),
    ) {
        let (spec, run) = workload(seed, class, modules);
        let index = ProvenanceIndex::build(&run).expect("generated runs are acyclic");
        let labels = LabelIndex::build(&run).expect("generated runs are acyclic");
        prop_assert_eq!(index.node_count(), run.graph().node_count());
        prop_assert_eq!(labels.node_count(), run.graph().node_count());

        for view in [
            UserView::admin(&spec),
            UserView::black_box(&spec),
            mid_view(&spec, mask),
        ] {
            let vr = ViewRun::new(&run, &view);
            assert_equivalent(&run, &vr, &index, &labels);
        }
    }

    /// Hidden data is rejected identically by all three forms (None from
    /// each), so the facade's visible/missing error mapping is unaffected
    /// by which path answers.
    #[test]
    fn invisibility_agrees_across_forms(
        seed in any::<u64>(),
        class in any::<u8>(),
        modules in 3usize..12,
    ) {
        let (spec, run) = workload(seed, class, modules);
        let index = ProvenanceIndex::build(&run).expect("generated runs are acyclic");
        let labels = LabelIndex::build(&run).expect("generated runs are acyclic");
        let vr = ViewRun::new(&run, &UserView::black_box(&spec));
        for &d in run.all_data().iter().take(40) {
            let visible = vr.is_visible(d);
            prop_assert_eq!(deep_provenance(&run, &vr, d).unwrap().is_some(), visible);
            prop_assert_eq!(deep_provenance_indexed(&run, &vr, &index, d).unwrap().is_some(), visible);
            prop_assert_eq!(deep_provenance_labeled(&run, &vr, &labels, d).unwrap().is_some(), visible);
            prop_assert_eq!(deep_provenance_bfs(&run, &vr, d).unwrap().is_some(), visible);
            prop_assert_eq!(dependents_of(&run, &vr, d).is_some(), visible);
            prop_assert_eq!(dependents_of_indexed(&run, &vr, &index, d).is_some(), visible);
            prop_assert_eq!(dependents_of_labeled(&run, &vr, &labels, d).is_some(), visible);
            prop_assert_eq!(dependents_of_bfs(&run, &vr, d).is_some(), visible);
        }
    }

    /// Growing the label index one appended sink at a time is exactly
    /// equivalent to rebuilding from scratch — every ordered `reaches`
    /// pair matches the fresh build and the BFS oracle.
    #[test]
    fn incremental_append_matches_scratch_build(
        seed in any::<u64>(),
        n in 1usize..32,
        density in any::<u8>(),
    ) {
        let preds = random_preds(seed, n, density);
        let g = dag_from_preds(&preds);

        let empty = Digraph::<(), ()>::new();
        let mut idx = LabelIndex::build_graph(&empty, &mut Deadline::unlimited()).expect("empty");
        for ps in &preds {
            idx.append_node(ps, &[]);
        }
        assert_label_index_exact(&idx, &g);
    }

    /// `update_to` on a pure sink-extension takes the incremental path and
    /// still answers exactly like a from-scratch build; a non-extension
    /// change (an inserted old→old edge) is detected and rebuilt, again
    /// exactly.
    #[test]
    fn update_to_matches_scratch_build(
        seed in any::<u64>(),
        n_old in 1usize..16,
        n_extra in 1usize..16,
        density in any::<u8>(),
    ) {
        let preds = random_preds(seed, n_old + n_extra, density);
        let g_old = dag_from_preds(&preds[..n_old]);
        let g_new = dag_from_preds(&preds);

        let mut idx = LabelIndex::build_graph(&g_old, &mut Deadline::unlimited()).expect("acyclic");
        let outcome = idx.update_to(&g_new, &mut Deadline::unlimited()).expect("acyclic");
        prop_assert!(
            matches!(outcome, UpdateOutcome::Appended(k) if k == n_extra)
                || matches!(outcome, UpdateOutcome::Rebuilt),
            "sink extension should append (or rebuild on fragmentation), got {outcome:?}"
        );
        assert_label_index_exact(&idx, &g_new);

        // Second update with no change is a no-op.
        prop_assert_eq!(
            idx.update_to(&g_new, &mut Deadline::unlimited()).expect("acyclic"),
            UpdateOutcome::Fresh
        );

        // An old→old edge insertion is NOT an extension: update must fall
        // back to a rebuild and stay exact.
        if n_old >= 2 {
            let mut g_edge = dag_from_preds(&preds);
            g_edge.add_edge(NodeId::from_index(0), NodeId::from_index(n_old - 1), ());
            let had_edge = g_new.has_edge(NodeId::from_index(0), NodeId::from_index(n_old - 1));
            let outcome = idx.update_to(&g_edge, &mut Deadline::unlimited()).expect("acyclic");
            if !had_edge {
                prop_assert_eq!(outcome, UpdateOutcome::Rebuilt);
            }
            assert_label_index_exact(&idx, &g_edge);
        }
    }
}

/// The deterministic adversarial shapes — including the single-step chain
/// (a 3-node run graph) — agree across all four query forms at both view
/// extremes.
#[test]
fn adversarial_shapes_and_single_node_agree() {
    let shapes = [
        zoom_gen::deep_chain(1),
        zoom_gen::deep_chain(64),
        zoom_gen::wide_fanout(48),
        zoom_gen::diamond_lattice(8, 6),
        zoom_gen::diamond_lattice(12, 1),
    ];
    for (spec, run) in &shapes {
        let index = ProvenanceIndex::build(run).expect("acyclic");
        let labels = LabelIndex::build(run).expect("acyclic");
        for view in [UserView::admin(spec), UserView::black_box(spec)] {
            let vr = ViewRun::new(run, &view);
            assert_equivalent(run, &vr, &index, &labels);
        }
    }
}

/// A single-node graph (no edges at all) round-trips through build,
/// append, and update without panicking and with reflexive reachability.
#[test]
fn single_node_graph_label_index() {
    let mut g = Digraph::<(), ()>::new();
    g.add_node(());
    let idx = LabelIndex::build_graph(&g, &mut Deadline::unlimited()).expect("acyclic");
    assert!(idx.reaches(NodeId::from_index(0), NodeId::from_index(0)));
    assert_label_index_exact(&idx, &g);

    // Grow it by one appended sink.
    let mut idx = idx;
    g.add_node(());
    g.add_edge(NodeId::from_index(0), NodeId::from_index(1), ());
    assert_eq!(
        idx.update_to(&g, &mut Deadline::unlimited())
            .expect("acyclic"),
        UpdateOutcome::Appended(1)
    );
    assert_label_index_exact(&idx, &g);
}
