//! Differential battery for streaming ingestion: a run streamed one event
//! at a time must be indistinguishable — at *every committed prefix*, not
//! just at seal — from the same prefix batch-loaded into a fresh
//! warehouse, across all three index backends, at every view level, for
//! every query form. And concurrent readers must never observe a
//! half-applied step: each answer corresponds to some committed prefix.
//!
//! Companion to `tests/index_equivalence.rs` (backends agree on static
//! runs); here the run is *growing*, so the label index's incremental
//! `update_to` appends, the per-commit cache invalidation, and the prefix
//! semantics of the model all sit in the differential loop.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::RwLock;
use zoom::model::{DataId, EventLog, LogEvent, StepId, UserView, WorkflowRun, WorkflowSpec};
use zoom::warehouse::{IndexBackend, PushOutcome, RunId, ViewId, Warehouse, WarehouseError};
use zoom_gen::{
    deep_chain, generate_run, generate_spec, interleaved_log, RunGenConfig, SpecGenConfig,
    WorkflowClass,
};

const BACKENDS: [IndexBackend; 3] = [
    IndexBackend::Labels,
    IndexBackend::Bitset,
    IndexBackend::Bfs,
];

fn workload(seed: u64, class: u8, modules: usize) -> (WorkflowSpec, WorkflowRun) {
    let mut rng = StdRng::seed_from_u64(seed);
    let class = match class % 3 {
        0 => WorkflowClass::Linear,
        1 => WorkflowClass::Parallel,
        _ => WorkflowClass::Loop,
    };
    let spec = generate_spec("stream-prop", &SpecGenConfig::new(class, modules), &mut rng);
    let cfg = RunGenConfig {
        user_input: (1, 10),
        data_per_step: (1, 3),
        loop_iterations: (1, 5),
        max_nodes: 160,
        max_edges: 160,
    };
    let run = generate_run(&spec, &cfg, &mut rng).expect("valid run");
    (spec, run)
}

/// A fresh warehouse holding `spec`, the UAdmin/UBlackBox pair, and one
/// run loaded from `events` (prefix semantics unless `complete`).
fn batch_warehouse(
    spec: &WorkflowSpec,
    events: &[LogEvent],
    backend: IndexBackend,
    complete: bool,
) -> (Warehouse, RunId, [ViewId; 2]) {
    let mut w = Warehouse::new();
    w.set_index_backend(Some(backend));
    let sid = w.register_spec(spec.clone()).unwrap();
    let admin = w.register_view(sid, UserView::admin(spec)).unwrap();
    let bb = w.register_view(sid, UserView::black_box(spec)).unwrap();
    let log = EventLog {
        spec_name: spec.name().to_string(),
        events: events.to_vec(),
    };
    let run = if complete {
        log.to_run(spec).expect("complete log reconstructs")
    } else {
        log.to_run_prefix(spec).expect("prefix log reconstructs")
    };
    let rid = w.load_run(sid, run).unwrap();
    (w, rid, [admin, bb])
}

/// The batch-side event subset for a committed prefix: user inputs plus
/// every event of a committed step. (Data written by a still-open step is
/// not yet in the streamed run graph, and neither is it here.)
fn committed_subset(events: &[LogEvent], committed: &BTreeSet<StepId>) -> Vec<LogEvent> {
    events
        .iter()
        .filter(|ev| match ev {
            LogEvent::UserInput { .. } => true,
            LogEvent::Finalized { .. } => false,
            LogEvent::Param { step, .. }
            | LogEvent::StepStarted { step, .. }
            | LogEvent::Read { step, .. }
            | LogEvent::Wrote { step, .. }
            | LogEvent::StepFinished { step, .. } => committed.contains(step),
        })
        .cloned()
        .collect()
}

/// Demands the streamed warehouse and the batch warehouse agree — deep,
/// immediate, and forward provenance, both views, sampled data objects,
/// plus one id that exists in neither (the error must match too).
fn assert_warehouses_agree(
    streamed: &Warehouse,
    srid: RunId,
    sviews: [ViewId; 2],
    batch: &Warehouse,
    brid: RunId,
    bviews: [ViewId; 2],
) {
    let sdata: Vec<DataId> = streamed.run(srid).unwrap().all_data().to_vec();
    let bdata: Vec<DataId> = batch.run(brid).unwrap().all_data().to_vec();
    assert_eq!(sdata, bdata, "committed data sets diverge");

    let mut targets: Vec<DataId> = bdata
        .iter()
        .copied()
        .step_by((bdata.len() / 15).max(1))
        .collect();
    targets.push(DataId(u64::MAX)); // present in neither: errors must agree
    for (sv, bv) in sviews.into_iter().zip(bviews) {
        for &d in &targets {
            assert_eq!(
                format!("{:?}", streamed.deep_provenance(srid, sv, d)),
                format!("{:?}", batch.deep_provenance(brid, bv, d)),
                "deep provenance of {d} diverges (view {sv})"
            );
            assert_eq!(
                format!("{:?}", streamed.immediate_provenance(srid, sv, d)),
                format!("{:?}", batch.immediate_provenance(brid, bv, d)),
                "immediate provenance of {d} diverges (view {sv})"
            );
            assert_eq!(
                format!("{:?}", streamed.dependents_of(srid, sv, d)),
                format!("{:?}", batch.dependents_of(brid, bv, d)),
                "dependents of {d} diverge (view {sv})"
            );
        }
    }
}

/// Streams `log` into a warehouse on `backend`, comparing against a fresh
/// batch load of the committed prefix at each sampled cut and after seal.
fn differential_stream(spec: &WorkflowSpec, log: &EventLog, backend: IndexBackend) {
    let mut w = Warehouse::new();
    w.set_index_backend(Some(backend));
    let sid = w.register_spec(spec.clone()).unwrap();
    let admin = w.register_view(sid, UserView::admin(spec)).unwrap();
    let bb = w.register_view(sid, UserView::black_box(spec)).unwrap();
    let rid = w.begin_stream(sid).unwrap();

    let n = log.len();
    let cuts: BTreeSet<usize> = [n / 4, n / 2, (3 * n) / 4].into_iter().collect();
    let mut committed: BTreeSet<StepId> = BTreeSet::new();
    for (i, ev) in log.events.iter().enumerate() {
        match w.stream_push(rid, ev).expect("valid logs stream cleanly") {
            PushOutcome::Buffered => {}
            PushOutcome::Committed(steps) => committed.extend(steps),
        }
        if cuts.contains(&(i + 1)) {
            let subset = committed_subset(&log.events[..=i], &committed);
            let (bw, brid, bviews) = batch_warehouse(spec, &subset, backend, false);
            assert_warehouses_agree(&w, rid, [admin, bb], &bw, brid, bviews);
        }
    }
    w.stream_seal(rid).expect("complete logs seal");
    assert!(!w.is_streaming(rid));
    assert_eq!(
        committed.len(),
        w.run(rid).unwrap().step_count(),
        "every step must commit before seal"
    );

    let (bw, brid, bviews) = batch_warehouse(spec, &log.events, backend, true);
    assert_warehouses_agree(&w, rid, [admin, bb], &bw, brid, bviews);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tentpole differential: generated workloads of every class,
    /// causally shuffled arrival orders, all three backends, prefix cuts
    /// at ¼ / ½ / ¾ and the sealed run.
    #[test]
    fn streamed_equals_batch_at_every_prefix(
        seed in any::<u64>(),
        class in any::<u8>(),
        modules in 3usize..10,
        shuffle_seed in any::<u64>(),
    ) {
        let (spec, run) = workload(seed, class, modules);
        let mut rng = StdRng::seed_from_u64(shuffle_seed);
        let log = interleaved_log(&spec, &run, &mut rng);
        for backend in BACKENDS {
            differential_stream(&spec, &log, backend);
        }
    }
}

/// The deterministic adversarial shapes stream to the same answers as
/// their batch loads on every backend — including the single-step chain.
#[test]
fn adversarial_shapes_stream_equal() {
    let shapes = [
        deep_chain(1),
        deep_chain(96),
        zoom_gen::wide_fanout(48),
        zoom_gen::diamond_lattice(10, 6),
    ];
    for (spec, run) in &shapes {
        let log = EventLog::from_run(run, spec);
        for backend in BACKENDS {
            differential_stream(spec, &log, backend);
        }
    }
}

/// Release-mode CI smoke: a 100k-step adversarial chain streamed event by
/// event through the label backend — the index grows by incremental
/// appends, and spot queries mid-stream and at seal match a batch load.
/// Debug builds run a 2k-step miniature so `cargo test` stays quick.
#[test]
fn adversarial_chain_streams_at_scale() {
    const RELEASE: bool = !cfg!(debug_assertions);
    let steps: usize = if RELEASE { 100_000 } else { 2_000 };
    let (spec, run) = deep_chain(steps);
    let log = EventLog::from_run(&run, &spec);

    let mut w = Warehouse::new();
    w.set_index_backend(Some(IndexBackend::Labels));
    let sid = w.register_spec(spec.clone()).unwrap();
    let admin = w.register_view(sid, UserView::admin(&spec)).unwrap();
    let rid = w.begin_stream(sid).unwrap();

    let mut committed = 0usize;
    let probe_every = steps / 4;
    for ev in &log.events {
        if let PushOutcome::Committed(steps) = w.stream_push(rid, ev).expect("chain streams") {
            committed += steps.len();
            // Materialize the label index on the first commit, then keep
            // probing so the per-commit `update_to` path stays exercised
            // (a cold cache would just rebuild at the end).
            if committed == 1 || committed.is_multiple_of(probe_every) {
                // Step k's output only joins the graph when step k+1
                // consumes it (or at seal), so a k-commit prefix holds
                // d1..dk and d1's dependents are the k-1 objects d2..dk.
                let deps = w.dependents_of(rid, admin, DataId(1)).unwrap();
                assert_eq!(
                    deps.len(),
                    committed - 1,
                    "chain prefix of {committed} commits"
                );
            }
        }
    }
    w.stream_seal(rid).unwrap();
    assert_eq!(committed, steps);

    let m = w.metrics();
    assert!(
        m.stream.label_appends > 0,
        "streaming a chain must extend the label index incrementally"
    );

    // Spot-check the sealed stream against a batch load.
    let (bw, brid, bviews) = batch_warehouse(&spec, &log.events, IndexBackend::Labels, true);
    let last = DataId(1 + steps as u64);
    for d in [DataId(1), DataId(2), DataId(1 + (steps as u64) / 2), last] {
        assert_eq!(
            format!("{:?}", w.deep_provenance(rid, admin, d)),
            format!("{:?}", bw.deep_provenance(brid, bviews[0], d)),
        );
    }
    assert_eq!(
        w.dependents_of(rid, admin, DataId(1)).unwrap().len(),
        bw.dependents_of(brid, bviews[0], DataId(1)).unwrap().len(),
    );
}

/// Snapshot consistency: 16 reader threads hammer forward provenance on a
/// chain while a writer streams it in, under a tight admission semaphore.
/// Every answer a reader sees must be a *contiguous* chain prefix — a gap
/// would mean a half-applied step was visible. Shed queries
/// (`Overloaded`) and not-yet-committed targets (`DataNotFound`) are the
/// only tolerated failures.
#[test]
fn concurrent_readers_never_observe_half_applied_steps() {
    const STEPS: usize = 400;
    let (spec, run) = deep_chain(STEPS);
    let log = EventLog::from_run(&run, &spec);

    let mut w = Warehouse::new();
    w.set_index_backend(Some(IndexBackend::Labels));
    w.set_admission_limits(8, 8);
    let sid = w.register_spec(spec.clone()).unwrap();
    let admin = w.register_view(sid, UserView::admin(&spec)).unwrap();
    let rid = w.begin_stream(sid).unwrap();

    let shared = RwLock::new(w);
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            for ev in &log.events {
                shared
                    .write()
                    .unwrap()
                    .stream_push(rid, ev)
                    .expect("chain streams");
            }
            shared.write().unwrap().stream_seal(rid).expect("seals");
            done.store(true, Ordering::Release);
        });
        for _ in 0..16 {
            scope.spawn(|| {
                let mut observed = 0usize;
                while !done.load(Ordering::Acquire) {
                    let g = shared.read().unwrap();
                    match g.dependents_of(rid, admin, DataId(1)) {
                        Ok(deps) => {
                            // d1's dependents on a k-step committed chain
                            // prefix are exactly {d2 .. d(k+1)}: contiguous,
                            // ascending, and never shrinking.
                            for (i, d) in deps.iter().enumerate() {
                                assert_eq!(d.0, 2 + i as u64, "torn prefix observed: {deps:?}");
                            }
                            assert!(
                                deps.len() >= observed,
                                "prefix shrank: {} then {}",
                                observed,
                                deps.len()
                            );
                            observed = deps.len();
                        }
                        Err(WarehouseError::Overloaded) => {}
                        Err(WarehouseError::DataNotFound(_)) => {}
                        Err(other) => panic!("unexpected query failure: {other:?}"),
                    }
                }
            });
        }
    });

    let w = shared.into_inner().unwrap();
    assert_eq!(
        w.dependents_of(rid, admin, DataId(1)).unwrap().len(),
        STEPS,
        "sealed chain must expose every step's output"
    );
    let m = w.metrics();
    assert_eq!(m.stream.streams_sealed, 1);
    assert_eq!(m.stream.steps_committed, STEPS as u64);
}
