//! Property-based invariants of provenance through user views, checked on
//! generated workloads across the whole stack.
//!
//! The key laws:
//!
//! 1. **Oracle agreement.** UAdmin deep provenance equals the textbook
//!    recursive definition `prov(d) = {d} ∪ ⋃ prov(inputs(producer(d)))`
//!    computed directly on the run (an independent code path).
//! 2. **Refinement monotonicity.** If view `V1` refines `V2`, everything
//!    visible at `V2` is visible at `V1`, and the deep-provenance data of a
//!    commonly-visible object at `V2` is contained in its data at `V1`,
//!    restricted to `V2`-visible objects... precisely: the `V2` answer's
//!    data set is a subset of the `V1` answer's data set *unioned with
//!    data hidden at `V1`*: we check the practical corollary —
//!    `tuples(V1) ≥ tuples(V2)` for final outputs, with UAdmin maximal.
//! 3. **Duality.** `d ∈ prov(x)` iff `x ∈ dependents(d)` (both visible).
//! 4. **Boundary law.** A composite execution's inputs/outputs are exactly
//!    the data crossing its boundary in the run.
//! 5. **Log round-trip.** Generated runs survive run → log → run with
//!    identical provenance answers.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeSet, HashMap};
use zoom::model::{DataId, EventLog, Producer, UserView, ViewRun, WorkflowRun, WorkflowSpec};
use zoom_gen::{generate_run, generate_spec, RunGenConfig, SpecGenConfig, WorkflowClass};
use zoom_views::relev_user_view_builder;

fn workload(seed: u64, class: u8, modules: usize) -> (WorkflowSpec, WorkflowRun) {
    let mut rng = StdRng::seed_from_u64(seed);
    let class = match class % 3 {
        0 => WorkflowClass::Linear,
        1 => WorkflowClass::Parallel,
        _ => WorkflowClass::Loop,
    };
    let spec = generate_spec("prop", &SpecGenConfig::new(class, modules), &mut rng);
    let cfg = RunGenConfig {
        user_input: (1, 20),
        data_per_step: (1, 4),
        loop_iterations: (1, 6),
        max_nodes: 300,
        max_edges: 300,
    };
    let run = generate_run(&spec, &cfg, &mut rng).expect("valid run");
    (spec, run)
}

/// The textbook recursive provenance definition, memoized, straight off the
/// run graph — independent of the ViewRun machinery.
fn oracle_prov(
    run: &WorkflowRun,
    d: DataId,
    memo: &mut HashMap<DataId, BTreeSet<DataId>>,
) -> BTreeSet<DataId> {
    if let Some(hit) = memo.get(&d) {
        return hit.clone();
    }
    let mut acc: BTreeSet<DataId> = BTreeSet::new();
    acc.insert(d);
    if let Some(Producer::Step(s)) = run.producer_of(d) {
        for x in run.inputs_of(s).expect("step exists") {
            acc.extend(oracle_prov(run, x, memo));
        }
    }
    memo.insert(d, acc.clone());
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Law 1: UAdmin deep provenance ≡ the recursive definition.
    #[test]
    fn admin_provenance_matches_recursive_definition(
        seed in any::<u64>(),
        class in any::<u8>(),
        modules in 3usize..15,
    ) {
        let (spec, run) = workload(seed, class, modules);
        let vr = ViewRun::new(&run, &UserView::admin(&spec));
        let mut memo = HashMap::new();
        for &d in run.all_data().iter().take(40) {
            let got: BTreeSet<DataId> = zoom::warehouse::deep_provenance(&run, &vr, d)
                .expect("run is well-formed")
                .expect("all data visible under UAdmin")
                .data_ids()
                .into_iter()
                .collect();
            let want = oracle_prov(&run, d, &mut memo);
            prop_assert_eq!(&got, &want, "provenance of {} diverges", d);
        }
    }

    /// Law 2: result size shrinks monotonically as views coarsen along a
    /// refinement chain UAdmin -> built view -> UBlackBox.
    #[test]
    fn refinement_shrinks_results(
        seed in any::<u64>(),
        class in any::<u8>(),
        modules in 3usize..15,
        mask in any::<u64>(),
    ) {
        let (spec, run) = workload(seed, class, modules);
        let relevant: Vec<_> = spec
            .module_ids()
            .enumerate()
            .filter(|(i, _)| mask & (1 << (i % 64)) != 0)
            .map(|(_, m)| m)
            .collect();
        let mid = relev_user_view_builder(&spec, &relevant).expect("builds").view;
        let admin = UserView::admin(&spec);
        let bb = UserView::black_box(&spec);
        prop_assume!(!run.final_outputs().is_empty());
        let target = run.final_outputs()[0];
        let size = |v: &UserView| {
            zoom::warehouse::deep_provenance(&run, &ViewRun::new(&run, v), target)
                .expect("run is well-formed")
                .expect("final outputs visible at every level")
                .tuples()
        };
        let (a, m, b) = (size(&admin), size(&mid), size(&bb));
        prop_assert!(a >= m, "UAdmin {a} < built view {m}");
        prop_assert!(m >= b, "built view {m} < UBlackBox {b}");
        // Visibility is monotone, too.
        let vr_mid = ViewRun::new(&run, &mid);
        let vr_admin = ViewRun::new(&run, &admin);
        for d in vr_mid.visible_data() {
            prop_assert!(vr_admin.is_visible(d));
        }
        let vr_bb = ViewRun::new(&run, &bb);
        for d in vr_bb.visible_data() {
            prop_assert!(vr_mid.is_visible(d), "{d} visible at blackbox but not mid");
        }
    }

    /// Law 3: provenance/dependents duality at the UAdmin level.
    #[test]
    fn provenance_dependents_duality(
        seed in any::<u64>(),
        class in any::<u8>(),
        modules in 3usize..12,
    ) {
        let (spec, run) = workload(seed, class, modules);
        let vr = ViewRun::new(&run, &UserView::admin(&spec));
        let data = run.all_data();
        // Sample pairs to keep the quadratic check bounded.
        for &d in data.iter().step_by((data.len() / 12).max(1)) {
            let deps = zoom::warehouse::dependents_of(&run, &vr, d).expect("visible");
            for &x in data.iter().step_by((data.len() / 12).max(1)) {
                if x == d {
                    continue;
                }
                let prov_x: Vec<DataId> = zoom::warehouse::deep_provenance(&run, &vr, x)
                    .expect("run is well-formed")
                    .expect("visible")
                    .data_ids();
                prop_assert_eq!(
                    prov_x.contains(&d),
                    deps.contains(&x),
                    "duality broken for d={}, x={}",
                    d,
                    x
                );
            }
        }
    }

    /// Law 4: composite-execution boundary data.
    #[test]
    fn composite_boundary_law(
        seed in any::<u64>(),
        class in any::<u8>(),
        modules in 3usize..15,
        mask in any::<u64>(),
    ) {
        let (spec, run) = workload(seed, class, modules);
        let relevant: Vec<_> = spec
            .module_ids()
            .enumerate()
            .filter(|(i, _)| mask & (1 << (i % 64)) != 0)
            .map(|(_, m)| m)
            .collect();
        let view = relev_user_view_builder(&spec, &relevant).expect("builds").view;
        let vr = ViewRun::new(&run, &view);
        for (i, exec) in vr.execs().iter().enumerate() {
            let members: BTreeSet<_> = exec.members.iter().copied().collect();
            // Expected inputs: data on run edges from outside into a member.
            let mut expect_in: BTreeSet<DataId> = BTreeSet::new();
            let mut expect_out: BTreeSet<DataId> = BTreeSet::new();
            let g = run.graph();
            for (e, s, t, data) in g.edges() {
                let _ = e;
                let s_in = run.step_at(s).map(|(id, _)| members.contains(&id)).unwrap_or(false);
                let t_in = run.step_at(t).map(|(id, _)| members.contains(&id)).unwrap_or(false);
                if !s_in && t_in {
                    expect_in.extend(data.iter().copied());
                }
                if s_in && !t_in {
                    expect_out.extend(data.iter().copied());
                }
            }
            let got_in: BTreeSet<DataId> = vr.inputs_of(i as u32).into_iter().collect();
            let got_out: BTreeSet<DataId> = vr.outputs_of(i as u32).into_iter().collect();
            prop_assert_eq!(&got_in, &expect_in, "inputs of {:?}", exec.id);
            prop_assert_eq!(&got_out, &expect_out, "outputs of {:?}", exec.id);
        }
    }

    /// Law 6 (the implementation strategy as a theorem): the deep
    /// provenance at any view level is exactly the UAdmin answer's data set
    /// intersected with the view-visible data — "first compute UAdmin and
    /// then remove information hidden within composite steps".
    #[test]
    fn view_answer_is_projection_of_admin_answer(
        seed in any::<u64>(),
        class in any::<u8>(),
        modules in 3usize..15,
        mask in any::<u64>(),
    ) {
        let (spec, run) = workload(seed, class, modules);
        let relevant: Vec<_> = spec
            .module_ids()
            .enumerate()
            .filter(|(i, _)| mask & (1 << (i % 64)) != 0)
            .map(|(_, m)| m)
            .collect();
        let view = relev_user_view_builder(&spec, &relevant).expect("builds").view;
        let vr = ViewRun::new(&run, &view);
        let vr_admin = ViewRun::new(&run, &UserView::admin(&spec));
        prop_assume!(!run.final_outputs().is_empty());
        let target = run.final_outputs()[0];
        let admin: BTreeSet<DataId> = zoom::warehouse::deep_provenance(&run, &vr_admin, target)
            .expect("run is well-formed")
            .expect("visible")
            .data_ids()
            .into_iter()
            .collect();
        let at_view: BTreeSet<DataId> = zoom::warehouse::deep_provenance(&run, &vr, target)
            .expect("run is well-formed")
            .expect("final output visible")
            .data_ids()
            .into_iter()
            .collect();
        let projected: BTreeSet<DataId> = admin
            .iter()
            .copied()
            .filter(|&d| vr.is_visible(d))
            .collect();
        prop_assert_eq!(&at_view, &projected);
    }

    /// Law 5: run -> log -> run preserves provenance answers.
    #[test]
    fn log_roundtrip_preserves_provenance(
        seed in any::<u64>(),
        class in any::<u8>(),
        modules in 3usize..15,
    ) {
        let (spec, run) = workload(seed, class, modules);
        let log = EventLog::from_run(&run, &spec);
        let back = log.to_run(&spec).expect("reconstructs");
        prop_assert_eq!(back.step_count(), run.step_count());
        prop_assert_eq!(back.all_data(), run.all_data());
        let admin = UserView::admin(&spec);
        let (va, vb) = (ViewRun::new(&run, &admin), ViewRun::new(&back, &admin));
        for &d in run.final_outputs().iter().take(3) {
            let a = zoom::warehouse::deep_provenance(&run, &va, d)
                .expect("well-formed")
                .expect("visible");
            let b = zoom::warehouse::deep_provenance(&back, &vb, d)
                .expect("well-formed")
                .expect("visible");
            prop_assert_eq!(a.rows, b.rows);
        }
    }
}
