//! Golden test for the observability surface of `zoomctl`: `stats --json`
//! must emit well-formed JSON carrying every documented counter key, and
//! `slowlog --json` must emit a JSON array of slow-query records. The
//! parser below is a minimal structural validator (the workspace carries
//! no JSON dependency by design), so a malformed emitter fails loudly
//! here rather than in a user's `jq` pipeline.

use std::path::PathBuf;
use std::process::Command;

fn zoomctl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_zoomctl"))
}

fn temp_snapshot(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("zoomctl-json-{name}-{}", std::process::id()));
    p
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("zoomctl spawns");
    assert!(
        out.status.success(),
        "zoomctl failed: {}\n{}",
        String::from_utf8_lossy(&out.stderr),
        String::from_utf8_lossy(&out.stdout)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

/// Validates one JSON value starting at `i`, returning the index one past
/// its end. Panics (with context) on malformed input — good enough to
/// prove the hand-rolled emitter balances its braces, quotes its strings,
/// and separates its elements.
fn check_value(s: &[u8], mut i: usize) -> usize {
    while s[i].is_ascii_whitespace() {
        i += 1;
    }
    match s[i] {
        b'{' => {
            i += 1;
            loop {
                while s[i].is_ascii_whitespace() {
                    i += 1;
                }
                if s[i] == b'}' {
                    return i + 1;
                }
                assert_eq!(s[i] as char, '"', "object key must be a string at {i}");
                i = check_value(s, i); // key
                while s[i].is_ascii_whitespace() {
                    i += 1;
                }
                assert_eq!(s[i] as char, ':', "missing colon at {i}");
                i = check_value(s, i + 1); // value
                while s[i].is_ascii_whitespace() {
                    i += 1;
                }
                match s[i] {
                    b',' => i += 1,
                    b'}' => return i + 1,
                    c => panic!("expected , or }} at {i}, got {}", c as char),
                }
            }
        }
        b'[' => {
            i += 1;
            loop {
                while s[i].is_ascii_whitespace() {
                    i += 1;
                }
                if s[i] == b']' {
                    return i + 1;
                }
                i = check_value(s, i);
                while s[i].is_ascii_whitespace() {
                    i += 1;
                }
                match s[i] {
                    b',' => i += 1,
                    b']' => return i + 1,
                    c => panic!("expected , or ] at {i}, got {}", c as char),
                }
            }
        }
        b'"' => {
            i += 1;
            while s[i] != b'"' {
                if s[i] == b'\\' {
                    i += 1;
                }
                i += 1;
            }
            i + 1
        }
        b'n' => {
            assert_eq!(&s[i..i + 4], b"null");
            i + 4
        }
        b't' => {
            assert_eq!(&s[i..i + 4], b"true");
            i + 4
        }
        b'f' => {
            assert_eq!(&s[i..i + 5], b"false");
            i + 5
        }
        c if c == b'-' || c.is_ascii_digit() => {
            while i < s.len()
                && (s[i].is_ascii_digit() || matches!(s[i], b'-' | b'+' | b'.' | b'e' | b'E'))
            {
                i += 1;
            }
            i
        }
        c => panic!("unexpected byte `{}` at {i}", c as char),
    }
}

fn assert_well_formed(json: &str) {
    let bytes = json.as_bytes();
    let end = check_value(bytes, 0);
    assert!(
        json[end..].trim().is_empty(),
        "trailing garbage after JSON value: {:?}",
        &json[end..]
    );
}

/// The documented top-level and nested keys of the `stats --json` payload
/// (DESIGN.md §11). Renaming any of these is a breaking change to the
/// observability surface and must update both the docs and this list.
const DOCUMENTED_KEYS: &[&str] = &[
    // stats sub-object (WarehouseStats)
    "\"stats\"",
    "\"specs\"",
    "\"views\"",
    "\"runs\"",
    "\"steps\"",
    "\"data_objects\"",
    "\"cached_view_runs\"",
    "\"view_run_hits\"",
    "\"view_run_misses\"",
    "\"view_run_evictions\"",
    "\"index_hits\"",
    "\"index_misses\"",
    // per-class query latency
    "\"queries\"",
    "\"kind\"",
    "\"view_class\"",
    "\"count\"",
    "\"sum_nanos\"",
    "\"max_nanos\"",
    "\"mean_nanos\"",
    "\"buckets\"",
    "\"query_errors\"",
    // caches
    "\"view_run_cache\"",
    "\"index_cache\"",
    "\"hits\"",
    "\"misses\"",
    "\"race_lost_builds\"",
    "\"evictions\"",
    "\"entries\"",
    "\"build_nanos\"",
    // reachability index backends (DESIGN.md §13)
    "\"index\"",
    "\"backend\"",
    "\"bitset_bytes\"",
    "\"label_bytes\"",
    "\"label_intervals\"",
    "\"label_count_hist\"",
    "\"label_cache\"",
    // batch fan-out
    "\"batch\"",
    "\"batches\"",
    "\"max_fanout\"",
    // durability
    "\"journal\"",
    "\"appends\"",
    "\"append_latency\"",
    "\"checkpoint_latency\"",
    // privacy enforcement (DESIGN.md §16)
    "\"privacy\"",
    "\"substitutions\"",
    "\"denials\"",
    "\"cache_hits\"",
    "\"compilations\"",
    // interactivity + slow log
    "\"view_switch\"",
    "\"slow_query_threshold_nanos\"",
    "\"slow_queries\"",
    // resilience (DESIGN.md §12)
    "\"degraded\"",
    "\"resilience\"",
    "\"attempts\"",
    "\"admitted\"",
    "\"shed\"",
    "\"deadline_exceeded\"",
    "\"cancelled\"",
    "\"io_retries\"",
    "\"breaker_trips\"",
    "\"breaker_recoveries\"",
    "\"degraded_writes_rejected\"",
];

#[test]
fn stats_json_is_well_formed_and_carries_documented_keys() {
    let snap = temp_snapshot("stats");
    let snap_s = snap.to_str().expect("utf-8 path");
    run_ok(zoomctl().args(["demo", snap_s]));

    let json = run_ok(zoomctl().args(["stats", snap_s, "--json"]));
    assert_well_formed(&json);
    for key in DOCUMENTED_KEYS {
        assert!(json.contains(key), "stats --json is missing {key}\n{json}");
    }
    // The plain-text rendering must be unchanged by the flag's existence.
    let text = run_ok(zoomctl().args(["stats", snap_s]));
    assert!(text.contains("data objects : 447"), "{text}");

    let _ = std::fs::remove_file(&snap);
}

#[test]
fn health_json_is_well_formed_for_snapshots() {
    let snap = temp_snapshot("health");
    let snap_s = snap.to_str().expect("utf-8 path");
    run_ok(zoomctl().args(["demo", snap_s]));

    let json = run_ok(zoomctl().args(["health", snap_s, "--json"]));
    assert_well_formed(&json);
    for key in [
        "\"status\"",
        "\"writable\"",
        "\"durable\"",
        "\"breaker\"",
        "\"consecutive_failures\"",
        "\"breaker_trips\"",
        "\"breaker_recoveries\"",
        "\"io_retries\"",
        "\"degraded_writes_rejected\"",
        // shard supervision (DESIGN.md §17)
        "\"state\"",
        "\"epoch\"",
        "\"quarantines\"",
        "\"repairs\"",
        "\"last_repair_nanos\"",
    ] {
        assert!(json.contains(key), "health --json is missing {key}\n{json}");
    }
    // A snapshot-backed store is always healthy and never durable.
    assert!(json.contains("\"status\":\"ok\""), "{json}");
    assert!(json.contains("\"durable\":false"), "{json}");

    let text = run_ok(zoomctl().args(["health", snap_s]));
    assert!(text.contains("status            : ok"), "{text}");

    let _ = std::fs::remove_file(&snap);
}

/// `health --json` against a live daemon must emit one object per shard,
/// each tagged with its shard index and carrying the supervision fields
/// (DESIGN.md §17) dashboards key on.
#[test]
fn remote_health_json_has_per_shard_breakdown() {
    use std::io::BufRead;

    let mut daemon = Command::new(env!("CARGO_BIN_EXE_zoomd"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--shards",
            "3",
            "--supervise",
            "20",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("zoomd spawns");
    let addr = {
        let stdout = daemon.stdout.as_mut().expect("piped stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .expect("zoomd announces its address");
        line.split_whitespace()
            .nth(2)
            .expect("address in announce line")
            .to_string()
    };

    let json = run_ok(zoomctl().args(["--connect", &addr, "health", "--json"]));
    assert_well_formed(&json);
    for shard in 0..3 {
        assert!(
            json.contains(&format!("\"shard\":{shard},")),
            "missing shard {shard} object:\n{json}"
        );
    }
    for key in [
        "\"state\":\"healthy\"",
        "\"epoch\"",
        "\"quarantines\":0",
        "\"repairs\":0",
        "\"last_repair_nanos\":0",
        "\"breaker\":\"closed\"",
    ] {
        assert!(json.contains(key), "health --json is missing {key}\n{json}");
    }
    // Exactly one object per shard.
    assert_eq!(json.matches("\"shard\":").count(), 3, "{json}");

    // The human rendering carries the same per-shard supervision columns.
    let text = run_ok(zoomctl().args(["--connect", &addr, "health"]));
    for needle in ["shard 0", "healthy", "quarantines=0", "repairs=0"] {
        assert!(
            text.contains(needle),
            "health text missing {needle}:\n{text}"
        );
    }

    run_ok(zoomctl().args(["--connect", &addr, "shutdown"]));
    let status = daemon.wait().expect("zoomd exits after shutdown");
    assert!(status.success(), "zoomd exited with {status}");
}

/// A tenant name full of JSON metacharacters must come out of
/// `stats --json` correctly escaped — this is the regression test for the
/// unescaped string interpolation in zoomctl's hand-rolled emitter.
#[test]
fn hostile_tenant_name_is_escaped_in_remote_stats_json() {
    use std::io::BufRead;

    let mut daemon = Command::new(env!("CARGO_BIN_EXE_zoomd"))
        .args(["--addr", "127.0.0.1:0", "--shards", "2"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("zoomd spawns");
    let addr = {
        let stdout = daemon.stdout.as_mut().expect("piped stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .expect("zoomd announces its address");
        // "listening on 127.0.0.1:PORT (N shard(s))"
        line.split_whitespace()
            .nth(2)
            .expect("address in announce line")
            .to_string()
    };

    let hostile = "evil\"tenant\\name\twith\nnewline";
    let json = run_ok(zoomctl().args(["--connect", &addr, "--tenant", hostile, "stats", "--json"]));
    assert_well_formed(&json);
    assert!(
        json.contains(r#""tenant":"evil\"tenant\\name\twith\nnewline""#),
        "hostile tenant not escaped:\n{json}"
    );
    // The raw metacharacters must never appear inside the emitted string.
    assert!(
        !json.contains("evil\"tenant"),
        "unescaped quote leaked:\n{json}"
    );

    run_ok(zoomctl().args(["--connect", &addr, "shutdown"]));
    let status = daemon.wait().expect("zoomd exits after shutdown");
    assert!(status.success(), "zoomd exited with {status}");
}

#[test]
fn slowlog_json_is_an_array_of_query_records() {
    let snap = temp_snapshot("slowlog");
    let snap_s = snap.to_str().expect("utf-8 path");
    run_ok(zoomctl().args(["demo", snap_s]));

    // Threshold 0 captures the audit sweep's every query: the demo
    // warehouse has 1 run and 3 views, so exactly 3 records.
    let json = run_ok(zoomctl().args(["slowlog", snap_s, "--json"]));
    assert_well_formed(&json);
    for key in ["\"seq\"", "\"kind\"", "\"view\"", "\"run\"", "\"nanos\""] {
        assert!(
            json.contains(key),
            "slowlog --json is missing {key}\n{json}"
        );
    }
    assert_eq!(json.matches("\"seq\"").count(), 3, "{json}");

    // A sky-high threshold yields an empty, still-valid array.
    let json = run_ok(zoomctl().args([
        "slowlog",
        snap_s,
        "--threshold-nanos",
        "999999999999",
        "--json",
    ]));
    assert_well_formed(&json);
    assert_eq!(json.trim(), "[]");

    let _ = std::fs::remove_file(&snap);
}
