//! End-to-end verification of every worked example in the paper's
//! Sections I–II, on the Figure 1 phylogenomic workflow and its Figure 2
//! run, across the whole crate stack (gen → views → model → warehouse →
//! core).

use zoom::core::ImmediateAnswer;
use zoom::model::{CompositeModule, DataId, StepId, UserView, ViewRun};
use zoom::views::relev_user_view_builder;
use zoom::Zoom;
use zoom_gen::library::{figure2_run, phylogenomic};

fn labels(spec: &zoom::WorkflowSpec, view: &UserView, of: &str) -> Vec<String> {
    let m = spec.module(of).unwrap();
    let c = view.composite_of(m);
    let mut ls: Vec<String> = view
        .members(c)
        .iter()
        .map(|&x| spec.label(x).to_string())
        .collect();
    ls.sort();
    ls
}

/// Joe flags {M2, M3, M7}: the algorithm produces his size-4 view with
/// M10 = {M3, M4, M5} and M9 = {M6, M7, M8} (Section I / Figure 3a).
#[test]
fn joes_view_is_constructed_automatically() {
    let spec = phylogenomic();
    let rel: Vec<_> = ["M2", "M3", "M7"]
        .iter()
        .map(|l| spec.module(l).unwrap())
        .collect();
    let built = relev_user_view_builder(&spec, &rel).unwrap();
    assert_eq!(built.view.size(), 4, "Joe's view has size 4");
    assert_eq!(labels(&spec, &built.view, "M3"), vec!["M3", "M4", "M5"]); // M10
    assert_eq!(labels(&spec, &built.view, "M7"), vec!["M6", "M7", "M8"]); // M9
    assert_eq!(labels(&spec, &built.view, "M2"), vec!["M2"]);
    assert_eq!(labels(&spec, &built.view, "M1"), vec!["M1"]);
    assert!(zoom::views::is_good_view(&spec, &built.view, &rel));
    assert!(zoom::views::is_minimal(&spec, &built.view, &rel));
}

/// Mary also cares about the rectification step M5: her view has size 5
/// with M11 = {M3, M4}, and she agrees with Joe on M9 (Section I /
/// Figure 3b).
#[test]
fn marys_view_is_constructed_automatically() {
    let spec = phylogenomic();
    let rel: Vec<_> = ["M2", "M3", "M5", "M7"]
        .iter()
        .map(|l| spec.module(l).unwrap())
        .collect();
    let built = relev_user_view_builder(&spec, &rel).unwrap();
    assert_eq!(built.view.size(), 5, "Mary's view has size 5");
    assert_eq!(labels(&spec, &built.view, "M3"), vec!["M3", "M4"]); // M11
    assert_eq!(labels(&spec, &built.view, "M5"), vec!["M5"]);
    assert_eq!(labels(&spec, &built.view, "M7"), vec!["M6", "M7", "M8"]); // M9
}

/// Returns Joe's and Mary's views (built by the algorithm) and the spec.
fn joe_and_mary() -> (zoom::WorkflowSpec, UserView, UserView) {
    let spec = phylogenomic();
    let joe = relev_user_view_builder(&spec, &["M2", "M3", "M7"].map(|l| spec.module(l).unwrap()))
        .unwrap()
        .view;
    let mary = relev_user_view_builder(
        &spec,
        &["M2", "M3", "M5", "M7"].map(|l| spec.module(l).unwrap()),
    )
    .unwrap()
    .view;
    (spec, joe, mary)
}

/// Section II, composite executions: Joe sees one execution S13 of M10 with
/// input {d308..d408} and output {d413}; Mary sees two executions of M11 —
/// S11 (input {d308..d408}, output {d410}) and S12 (input {d411}, output
/// {d413}).
#[test]
fn composite_executions_match_section_two() {
    let (spec, joe, mary) = joe_and_mary();
    let run = figure2_run(&spec);

    // Joe: M10's steps {S2, S3, S4, S5, S6} form ONE virtual execution.
    let vr = ViewRun::new(&run, &joe);
    let e = vr.exec_of_step(StepId(2)).unwrap();
    assert!(e.is_virtual);
    assert_eq!(
        e.members,
        [2, 3, 4, 5, 6].map(StepId).to_vec(),
        "S13 groups the whole alignment loop"
    );
    let d308_408: Vec<DataId> = (308..=408).map(DataId).collect();
    let idx = vr
        .execs()
        .iter()
        .position(|x| x.id == e.id)
        .expect("exec exists") as u32;
    assert_eq!(vr.inputs_of(idx), d308_408);
    assert_eq!(vr.outputs_of(idx), vec![DataId(413)]);

    // Mary: M11 has TWO executions.
    let vr = ViewRun::new(&run, &mary);
    let s11 = vr.exec_of_step(StepId(2)).unwrap();
    assert_eq!(s11.members, vec![StepId(2), StepId(3)]);
    let s12 = vr.exec_of_step(StepId(5)).unwrap();
    assert_eq!(s12.members, vec![StepId(5), StepId(6)]);
    assert_ne!(s11.id, s12.id);
    let i11 = vr.execs().iter().position(|x| x.id == s11.id).unwrap() as u32;
    let i12 = vr.execs().iter().position(|x| x.id == s12.id).unwrap() as u32;
    assert_eq!(vr.inputs_of(i11), d308_408);
    assert_eq!(vr.outputs_of(i11), vec![DataId(410)]);
    assert_eq!(vr.inputs_of(i12), vec![DataId(411)]);
    assert_eq!(vr.outputs_of(i12), vec![DataId(413)]);
}

/// Section II: "the immediate provenance of d413 seen by Joe would be S13
/// and its input {d308..d408} … that seen by Mary would be S12 and its
/// input {d411}". And Mary's deep provenance of d413 includes S11 with
/// {d308..d408}, while Joe never sees d410/d411/d412.
#[test]
fn provenance_of_d413_through_both_views() {
    let (spec, joe, mary) = joe_and_mary();
    let run = figure2_run(&spec);
    let mut z = Zoom::new();
    let sid = z.register_workflow(spec.clone()).unwrap();
    let vjoe = z.register_view(sid, joe).unwrap();
    let vmary = z.register_view(sid, mary).unwrap();
    let rid = z.load_run(sid, run).unwrap();

    // Joe's immediate provenance of d413.
    match z.immediate_provenance(rid, vjoe, DataId(413)).unwrap() {
        ImmediateAnswer::Produced { inputs, .. } => {
            assert_eq!(inputs, (308..=408).map(DataId).collect::<Vec<_>>());
        }
        o => panic!("unexpected {o:?}"),
    }
    // Mary's immediate provenance of d413.
    match z.immediate_provenance(rid, vmary, DataId(413)).unwrap() {
        ImmediateAnswer::Produced { inputs, .. } => {
            assert_eq!(inputs, vec![DataId(411)]);
        }
        o => panic!("unexpected {o:?}"),
    }

    // Mary sees d410 and d411 ("the data passed between executions of M11
    // and M5"); Joe sees neither, nor d412 (internal looping).
    let mary_deep = z.deep_provenance(rid, vmary, DataId(413)).unwrap();
    let mary_data = mary_deep.data_ids();
    assert!(mary_data.contains(&DataId(410)));
    assert!(mary_data.contains(&DataId(411)));
    let joe_deep = z.deep_provenance(rid, vjoe, DataId(413)).unwrap();
    let joe_data = joe_deep.data_ids();
    for hidden in [410u64, 411, 412] {
        assert!(
            !joe_data.contains(&DataId(hidden)),
            "Joe must not see d{hidden}"
        );
        assert!(z.deep_provenance(rid, vjoe, DataId(hidden)).is_err());
    }
    // d412 is internal to M11's executions, hidden even from Mary.
    assert!(!mary_data.contains(&DataId(412)));
}

/// Parameters recorded on steps surface through composite executions: the
/// two alignment steps' settings are reported as part of S13's immediate
/// provenance under Joe's view ("what data objects and parameters were
/// input to that step").
#[test]
fn parameters_surface_through_composite_executions() {
    let (spec, joe, _) = joe_and_mary();
    let run = figure2_run(&spec);
    let mut z = Zoom::new();
    let sid = z.register_workflow(spec).unwrap();
    let vjoe = z.register_view(sid, joe).unwrap();
    let rid = z.load_run(sid, run).unwrap();
    match z.immediate_provenance(rid, vjoe, DataId(413)).unwrap() {
        ImmediateAnswer::Produced { params, .. } => {
            // Params of both M3 executions (S2 and S5) belong to the
            // composite execution that produced d413.
            assert!(params.contains(&(StepId(2), "gap-penalty".into(), "10".into())));
            assert!(params.contains(&(StepId(5), "gap-penalty".into(), "8".into())));
            assert_eq!(params.len(), 4);
        }
        o => panic!("unexpected {o:?}"),
    }
}

/// Section I: "the provenance of the final data object d447 would include
/// every data object (d1..d447) and every step (S1..S10)" — at the UAdmin
/// level.
#[test]
fn deep_provenance_of_d447_under_uadmin_is_everything() {
    let spec = phylogenomic();
    let run = figure2_run(&spec);
    let mut z = Zoom::new();
    let sid = z.register_workflow(spec).unwrap();
    let admin = z.admin_view(sid).unwrap();
    let rid = z.load_run(sid, run).unwrap();
    let res = z.deep_provenance(rid, admin, DataId(447)).unwrap();
    assert_eq!(res.tuples(), 447, "all 447 data objects");
    assert_eq!(
        res.execs,
        (1..=10).map(StepId).collect::<Vec<_>>(),
        "all ten steps"
    );
}

/// The introduction's cautionary example: grouping M1 with M2 fabricates an
/// apparent dependency of Run-alignment on Annotation-checking; the
/// property checker rejects that view.
#[test]
fn grouping_m1_with_m2_is_rejected() {
    let spec = phylogenomic();
    let m = |l: &str| spec.module(l).unwrap();
    let rel = vec![m("M2"), m("M3"), m("M7")];
    let bad = UserView::new(
        "bad-joe",
        &spec,
        vec![
            CompositeModule::new("M12", vec![m("M1"), m("M2")]),
            CompositeModule::new("M10", vec![m("M3"), m("M4"), m("M5")]),
            CompositeModule::new("M9", vec![m("M6"), m("M7"), m("M8")]),
        ],
    )
    .unwrap();
    assert!(!zoom::views::is_good_view(&spec, &bad, &rel));
}

/// The full pipeline through logs: synthesizing the Figure 2 run's event
/// log, ingesting it into the warehouse, and querying, gives the same
/// answers as loading the run directly.
#[test]
fn log_ingestion_preserves_provenance_answers() {
    let spec = phylogenomic();
    let run = figure2_run(&spec);
    let log = zoom::model::EventLog::from_run(&run, &spec);

    let mut z = Zoom::new();
    let sid = z.register_workflow(spec.clone()).unwrap();
    let admin = z.admin_view(sid).unwrap();
    let direct = z.load_run(sid, run).unwrap();
    let via_log = z.load_log(sid, &log).unwrap();

    let a = z.deep_provenance(direct, admin, DataId(447)).unwrap();
    let b = z.deep_provenance(via_log, admin, DataId(447)).unwrap();
    assert_eq!(a.rows, b.rows);
    assert_eq!(a.execs, b.execs);
}

/// Joe's and Mary's induced specifications have the expected shapes
/// (Figure 3): sizes 4 and 5, and Mary's keeps the M11 <-> M5 loop visible
/// while Joe's hides the loop inside M10.
#[test]
fn induced_specifications_match_figure3() {
    let (spec, joe, mary) = joe_and_mary();

    // Joe: the M3->M4->M5 cycle is internal to M10, so it surfaces only as
    // a self-loop on M10 (a loop that *was* present in the original, per
    // the paper's no-new-loops lemma); there is no cycle between distinct
    // composites.
    let ij = zoom::model::induced_spec(&spec, &joe);
    assert_eq!(ij.spec.module_count(), 4);
    let m10 = ij.node(joe.composite_of(spec.module("M3").unwrap()));
    assert!(
        ij.spec.graph().has_edge(m10, m10),
        "M10 carries a self-loop"
    );
    let ij_backs = zoom::graph::algo::cycles::back_edges(ij.spec.graph());
    assert_eq!(
        ij_backs.len(),
        1,
        "the self-loop is the only cycle Joe sees"
    );
    assert_eq!(ij.spec.graph().endpoints(ij_backs[0]), (m10, m10));

    // Mary: the loop leaves M11 through M5, so she sees a genuine
    // two-composite cycle M11 <-> M5.
    let im = zoom::model::induced_spec(&spec, &mary);
    assert_eq!(im.spec.module_count(), 5);
    let m11 = im.node(mary.composite_of(spec.module("M3").unwrap()));
    let m5 = im.node(mary.composite_of(spec.module("M5").unwrap()));
    assert!(im.spec.graph().has_edge(m11, m5));
    assert!(im.spec.graph().has_edge(m5, m11));
    assert!(!im.spec.graph().has_edge(m11, m11));
}
