//! Daemon-level chaos: a live `zoomd` ([`Daemon`] in-process) with
//! fault-injecting storage armed under individual shards, driven by the
//! deterministic [`ChaosDriver`].
//!
//! The load-bearing properties:
//!
//! * **Isolation** — a quarantined shard takes nothing else down: other
//!   tenants' queries keep answering byte-identically (digest-compared
//!   against an in-process oracle), error renderings included, and the
//!   client's connection never drops.
//! * **Zero lost acks** — every mutation the daemon acknowledged survives
//!   quarantine and repair; every refused mutation got a definite answer
//!   (a warehouse error or the typed `Unavailable`), never a hang or a
//!   broken connection.
//! * **Online recovery** — the supervisor repairs the sick shard while
//!   the daemon keeps serving, within a bounded time once the disk heals,
//!   and the repaired shard answers digest-clean.
//! * **Restart resumption** — a daemon restart mid-stream surfaces as a
//!   loud, typed failure on the in-flight append, after which the same
//!   client object transparently reconnects (same tenant, fresh session)
//!   and finishes the work.

use std::sync::Arc;
use std::time::{Duration, Instant};
use zoom::core::{Daemon, DaemonConfig, RemoteError, RemoteRetry, RemoteZoom, Zoom};
use zoom::model::EventLog;
use zoom::warehouse::{
    ChaosDriver, DurableOptions, FaultAction, FaultEvent, FaultFs, FaultSchedule, ReplayOptions,
    RunId, ShardRouter, ShardState, StorageIo, TraceOp, TraceReplayer, TraceTarget,
};
use zoom_gen::library::{figure2_run, phylogenomic};

fn tempdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("zoomd-chaos-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Durability options tuned so the breaker trips fast and injected
/// permanent faults are not retried away.
fn twitchy_options() -> DurableOptions {
    let mut options = DurableOptions::default();
    options.retry.max_attempts = 1;
    options.breaker_threshold = 2;
    options
}

fn fault_config(dir: &std::path::Path, shards: usize) -> (DaemonConfig, Vec<Arc<FaultFs>>) {
    let ios: Vec<Arc<FaultFs>> = (0..shards).map(|_| Arc::new(FaultFs::counting())).collect();
    let config = DaemonConfig {
        shards,
        dir: Some(dir.to_path_buf()),
        durable_options: Some(twitchy_options()),
        shard_ios: ios
            .iter()
            .map(|f| Arc::clone(f) as Arc<dyn StorageIo>)
            .collect(),
        supervise_interval: Some(Duration::from_millis(10)),
        ..DaemonConfig::default()
    };
    (config, ios)
}

/// Waits until `pred` holds over the shard states, or panics after 5s.
fn await_states(daemon: &Daemon, what: &str, pred: impl Fn(&[ShardState]) -> bool) -> Duration {
    let started = Instant::now();
    loop {
        let states = daemon.shard_states();
        if pred(&states) {
            return started.elapsed();
        }
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "timed out waiting for {what}; states: {states:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn chaos_schedule_isolates_faults_to_the_sick_shard() {
    const SHARDS: usize = 3;
    const SICK: usize = 1;
    let dir = tempdir("isolate");
    let (config, ios) = fault_config(&dir, SHARDS);
    let daemon = Daemon::spawn("127.0.0.1:0", config).unwrap();

    let spec = phylogenomic();
    let run = figure2_run(&spec);
    let log = EventLog::from_run(&run, &spec);
    let probe = run.final_outputs()[0];

    // In-process oracle: the daemon must answer digest-for-digest what a
    // plain local system answers.
    let mut oracle = Zoom::new();
    let sid_o = oracle.register_workflow(spec.clone()).unwrap();
    let vid_o = oracle.admin_view(sid_o).unwrap();

    // The writer surfaces `Unavailable` refusals immediately (no retry
    // absorption) so the chaos loop observes them; the reader keeps the
    // default patient policy.
    let writer_retry = RemoteRetry {
        max_unavailable_retries: 0,
        ..RemoteRetry::default()
    };
    let mut writer = RemoteZoom::connect_with(daemon.addr(), "writer", writer_retry).unwrap();
    let mut reader = RemoteZoom::connect(daemon.addr(), "reader").unwrap();
    let sid = writer.register_workflow(spec.clone()).unwrap();
    let vid = writer.admin_view(sid).unwrap();
    assert_eq!((sid, vid), (sid_o, vid_o));

    // Run-id → shard mapping is a pure function of (global id, shard
    // count); a throwaway router answers it without peeking inside the
    // daemon.
    let mapper = ShardRouter::in_memory(SHARDS);

    // The deterministic fault plan: the sick shard's disk goes dark
    // mid-workload, armed by the op-ticked driver, and stays dark until
    // the explicit heal below — the supervisor must quarantine it and
    // keep failing repairs (the write probe tells) in the meantime.
    let schedule = FaultSchedule::from_events(vec![FaultEvent {
        at_op: 8,
        shard: SICK,
        action: FaultAction::Arm {
            count: u64::MAX,
            transient: false,
        },
    }]);
    let mut driver = ChaosDriver::new(schedule, ios.clone());

    // Drive the workload, ticking the chaos driver once per op. Every op
    // must get a *definite* answer — an id or a rendered refusal — and
    // the connection must never drop (that is what "zero lost acks"
    // means at the wire).
    let mut acked: Vec<RunId> = Vec::new();
    let mut refused = 0u32;
    for i in 0..40 {
        driver.tick();
        match writer.load_log(sid, &log) {
            Ok(rid) => {
                oracle.load_log(sid_o, &log).unwrap();
                acked.push(rid);
            }
            Err(RemoteError::Server(_)) | Err(RemoteError::Unavailable { .. }) => refused += 1,
            Err(other) => panic!("op {i}: lost ack — non-warehouse failure: {other}"),
        }
    }
    assert!(
        acked.iter().any(|r| mapper.shard_of(*r) == SICK),
        "workload never touched the sick shard; acked: {acked:?}"
    );

    // The burst must have tripped the breaker and the supervisor must
    // have pulled the shard out of the write path.
    await_states(&daemon, "quarantine of the sick shard", |s| {
        !s[SICK].accepts_writes()
    });

    // Isolation, mid-quarantine: every previously-acked run still
    // answers, and healthy-shard answers plus error renderings are
    // digest-identical to the oracle. Reads on the *sick* shard serve
    // from memory and must agree too.
    for &rid in &acked {
        let op = TraceOp::DeepProvenance(rid, vid, probe);
        assert_eq!(
            reader.apply_trace_op(&op),
            oracle.apply_trace_op(&op),
            "answer diverged mid-quarantine for {rid:?} (shard {})",
            mapper.shard_of(rid)
        );
    }
    let absent = TraceOp::DeepProvenance(RunId(999), vid, probe);
    assert_eq!(
        reader.apply_trace_op(&absent),
        oracle.apply_trace_op(&absent),
        "error rendering diverged mid-quarantine"
    );

    // Heal the disk. A *patient* client (default retry policy) issued
    // right away never sees the quarantine: its bounded Unavailable
    // retries outlast the supervisor's repair.
    ios[SICK].heal();
    let patient = reader.load_log(sid, &log).unwrap();
    assert_eq!(patient, oracle.load_log(sid_o, &log).unwrap());
    acked.push(patient);
    let recovery = await_states(&daemon, "repair of the sick shard", |s| {
        s.iter().all(|st| *st == ShardState::Healthy)
    });
    assert!(
        recovery < Duration::from_secs(5),
        "recovery took {recovery:?}"
    );

    // Post-repair: everything acked is still there (digest-identical),
    // and the shard takes writes again.
    for &rid in &acked {
        let op = TraceOp::DeepProvenance(rid, vid, probe);
        assert_eq!(
            reader.apply_trace_op(&op),
            oracle.apply_trace_op(&op),
            "answer diverged post-repair for {rid:?}"
        );
    }
    let next = writer.load_log(sid, &log).unwrap();
    assert_eq!(next, oracle.load_log(sid_o, &log).unwrap());

    // The whole episode never cost either client its connection.
    assert_eq!(writer.reconnect_count(), 0);
    assert_eq!(reader.reconnect_count(), 0);
    assert!(refused > 0, "the fault burst never refused anything");

    // The repair surfaced in per-shard health.
    let health = reader.health_per_shard().unwrap();
    assert!(health[SICK].repairs >= 1);
    assert!(health[SICK].quarantines >= 1);
    assert!(health[SICK].last_repair_nanos > 0);

    drop((writer, reader));
    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quarantined_shard_answers_typed_unavailable_and_repairs_digest_clean() {
    const SHARDS: usize = 2;
    let dir = tempdir("typed");
    let (mut config, ios) = fault_config(&dir, SHARDS);
    // Manual lifecycle control for this test.
    config.supervise_interval = None;
    let daemon = Daemon::spawn("127.0.0.1:0", config).unwrap();

    // The golden trace replays digest-clean through the durable,
    // fault-wrapped (but not yet faulted) daemon.
    let mut rz = RemoteZoom::connect_with(daemon.addr(), "golden", RemoteRetry::none()).unwrap();
    let bytes = std::fs::read(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/data/golden.zoomtrace"
    ))
    .expect("golden trace artifact present");
    let replayer = TraceReplayer::from_bytes(&bytes).unwrap();
    let report = replayer.replay(&mut rz, &ReplayOptions::default());
    assert!(report.is_clean(), "pre-fault golden replay diverged");

    // Pile our own runs on top of the replayed state (the trace already
    // registered `phylogenomic`) and note per-run query digests.
    let spec = phylogenomic();
    let run = figure2_run(&spec);
    let log = EventLog::from_run(&run, &spec);
    let probe = run.final_outputs()[0];
    let (sid, _, _) = rz.resolve(spec.name(), None).unwrap();
    let vid = rz.admin_view(sid).unwrap();
    let mapper = ShardRouter::in_memory(SHARDS);
    let mut runs = Vec::new();
    while runs.len() < 6 || !runs.iter().any(|r| mapper.shard_of(*r) == 1) {
        runs.push(rz.load_log(sid, &log).unwrap());
    }
    let ops: Vec<TraceOp> = runs
        .iter()
        .map(|&r| TraceOp::DeepProvenance(r, vid, probe))
        .collect();
    let before: Vec<u64> = ops.iter().map(|op| rz.apply_trace_op(op)).collect();

    // Sicken shard 1 and quarantine it. A no-retry client sees the typed
    // refusal — rendered byte-identically to the in-process error — on a
    // mutation routed to that shard, while the connection stays usable.
    ios[1].arm_failures(u64::MAX, false);
    assert!(daemon.quarantine_shard(1));
    let refusal = loop {
        // Only loads whose fresh global id hashes to shard 1 are
        // refused; refusals burn no id, so keep loading until the next
        // id maps there.
        let next = RunId(runs.last().unwrap().0 + 1);
        if mapper.shard_of(next) == 1 {
            break rz.load_log(sid, &log).unwrap_err();
        }
        runs.push(rz.load_log(sid, &log).unwrap());
    };
    match refusal {
        RemoteError::Unavailable {
            shard,
            retry_after_ms,
        } => {
            assert_eq!(shard, 1);
            assert_eq!(
                refusal.to_string(),
                format!("shard 1 unavailable (under repair); retry after {retry_after_ms} ms"),
                "typed refusal must render like the in-process error"
            );
        }
        other => panic!("expected the typed Unavailable refusal, got: {other}"),
    }
    rz.ping().unwrap();

    // Repair fails while the disk is still sick (the write probe tells),
    // succeeds once healed, and the fsck report comes back clean.
    assert!(daemon.repair_shard(1).is_err());
    ios[1].heal();
    let outcome = daemon.repair_shard(1).unwrap();
    let fsck = outcome.fsck.expect("durable repair carries an fsck report");
    assert_eq!(fsck.torn_bytes, 0);
    assert!(fsck.strays.is_empty());

    // The repaired shard serves digest-clean: every pre-fault query
    // answers with the identical digest, and writes flow again.
    let after: Vec<u64> = ops.iter().map(|op| rz.apply_trace_op(op)).collect();
    assert_eq!(before, after, "repaired shard diverged");
    rz.load_log(sid, &log).unwrap();

    let health = rz.health_per_shard().unwrap();
    assert_eq!(health[1].repairs, 1);
    assert!(health[1].last_repair_nanos > 0);

    drop(rz);
    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn daemon_restart_mid_stream_resumes_via_the_reconnecting_client() {
    let dir = tempdir("restart");
    let spec = phylogenomic();
    let run = figure2_run(&spec);
    let log = EventLog::from_run(&run, &spec);
    let config = || DaemonConfig {
        shards: 2,
        dir: Some(dir.clone()),
        ..DaemonConfig::default()
    };

    let mut daemon = Daemon::spawn("127.0.0.1:0", config()).unwrap();
    let addr = daemon.addr();
    let retry = RemoteRetry {
        max_reconnects: 12,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(100),
        ..RemoteRetry::default()
    };
    let mut rz = RemoteZoom::connect_with(addr, "streamer", retry).unwrap();
    let sid = rz.register_workflow(spec.clone()).unwrap();
    let vid = rz.admin_view(sid).unwrap();
    let loaded = rz.load_log(sid, &log).unwrap();
    rz.checkpoint().unwrap();

    // Open a stream and push half of it, then yank the daemon out from
    // under the client.
    let streaming = rz.begin_stream(sid).unwrap();
    for ev in &log.events[..log.events.len() / 2] {
        rz.stream_push(streaming, ev).unwrap();
    }
    let report = daemon.drain(Duration::from_millis(200));
    assert!(!report.drained, "an open connection cannot drain cleanly");
    assert!(report.conns_aborted >= 1);

    // The in-flight append fails LOUDLY — a stream push must never be
    // silently re-sent, because the daemon might have committed it.
    let lost = rz.stream_push(streaming, &log.events[0]).unwrap_err();
    assert!(
        matches!(lost, RemoteError::ConnectionLost(_)),
        "expected a loud connection-lost failure, got: {lost}"
    );

    // Restart the daemon on the same address and keep using the same
    // client object: idempotent traffic reconnects transparently, with
    // the tenant preserved and a fresh session.
    let daemon = Daemon::spawn(&addr.to_string(), config()).unwrap();
    rz.ping().unwrap();
    assert!(rz.reconnect_count() >= 1, "client should have reconnected");
    assert_eq!(rz.final_outputs(loaded).unwrap(), run.final_outputs());

    // The aborted stream is gone with the session; resume by streaming
    // the run afresh to completion.
    let resumed = rz.begin_stream(sid).unwrap();
    let mut committed = 0usize;
    for ev in &log.events {
        if let zoom::warehouse::PushOutcome::Committed(steps) = rz.stream_push(resumed, ev).unwrap()
        {
            committed += steps.len();
        }
    }
    rz.stream_seal(resumed).unwrap();
    assert_eq!(committed, run.step_count());
    assert_eq!(rz.final_outputs(resumed).unwrap(), run.final_outputs());
    let deep = rz
        .deep_provenance(resumed, vid, run.final_outputs()[0])
        .unwrap();
    assert!(!deep.rows.is_empty());

    drop(rz);
    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drain_reports_clean_when_clients_left_and_dirty_when_abandoned() {
    let dir = tempdir("drain");
    let (config, _ios) = fault_config(&dir, 2);
    let mut daemon = Daemon::spawn("127.0.0.1:0", config).unwrap();
    let spec = phylogenomic();
    let log = EventLog::from_run(&figure2_run(&spec), &spec);
    {
        let mut rz = RemoteZoom::connect(daemon.addr(), "tidy").unwrap();
        let sid = rz.register_workflow(spec.clone()).unwrap();
        rz.load_log(sid, &log).unwrap();
        // Client disconnects before the drain.
    }
    // An abandoned client that never says goodbye.
    let abandoned = RemoteZoom::connect(daemon.addr(), "rude").unwrap();

    let report = daemon.drain(Duration::from_millis(300));
    assert!(!report.drained, "the abandoned connection held the drain");
    assert_eq!(report.conns_aborted, 1);
    assert!(report.checkpointed, "healthy shards checkpoint on drain");
    assert_eq!(
        report.sessions_remaining, 0,
        "force-closed connections still release their sessions"
    );
    drop(abandoned);

    // A daemon with no connections drains instantly and cleanly.
    let (config2, _ios2) = fault_config(&tempdir("drain2"), 2);
    let mut idle = Daemon::spawn("127.0.0.1:0", config2).unwrap();
    let report = idle.drain(Duration::from_secs(2));
    assert!(report.drained);
    assert_eq!(report.conns_aborted, 0);
    assert_eq!(report.sessions_remaining, 0);
    let _ = std::fs::remove_dir_all(&dir);
}
