//! Concurrent querying: the paper's lab has many users ("Joe", "Mary", …)
//! exploring provenance over the same warehouse simultaneously. Reads are
//! lock-light (`parking_lot`-guarded materialization cache); this test
//! hammers one warehouse from many threads and checks that every answer
//! matches the single-threaded result.

use std::collections::BTreeMap;
use zoom::model::DataId;
use zoom_bench::{build_corpus, Scale};

#[test]
fn parallel_view_switching_matches_serial_answers() {
    let corpus = build_corpus(Scale::Quick, 2024);
    let zoom = &corpus.zoom;

    // Serial ground truth: tuples for every (workflow, kind, view family).
    let mut expected: BTreeMap<(usize, usize, u8), usize> = BTreeMap::new();
    for (wi, w) in corpus.workflows.iter().enumerate() {
        for (ki, (_, runs)) in w.runs.iter().enumerate() {
            let rid = runs[0];
            for (vi, view) in [w.admin, w.bio, w.black_box].into_iter().enumerate() {
                let t = zoom
                    .deep_provenance_of_final_output(rid, view)
                    .expect("visible")
                    .tuples();
                expected.insert((wi, ki, vi as u8), t);
            }
        }
    }
    zoom.warehouse().clear_cache();

    // Parallel: 8 threads, each walking the whole corpus in a different
    // order, racing on the materialization cache.
    std::thread::scope(|scope| {
        for t in 0..8usize {
            let expected = &expected;
            let corpus = &corpus;
            scope.spawn(move || {
                let n = corpus.workflows.len();
                for step in 0..n {
                    let wi = (step * 7 + t) % n;
                    let w = &corpus.workflows[wi];
                    for (ki, (_, runs)) in w.runs.iter().enumerate() {
                        let rid = runs[0];
                        for (vi, view) in [w.admin, w.bio, w.black_box].into_iter().enumerate() {
                            let got = corpus
                                .zoom
                                .deep_provenance_of_final_output(rid, view)
                                .expect("visible")
                                .tuples();
                            assert_eq!(
                                got,
                                expected[&(wi, ki, vi as u8)],
                                "thread {t}: divergent answer at ({wi},{ki},{vi})"
                            );
                        }
                    }
                }
            });
        }
    });

    // The cache saw real contention but stayed consistent.
    let (hits, misses) = zoom.warehouse().cache_counters();
    assert!(hits > 0);
    assert!(misses > 0);
}

#[test]
fn concurrent_mixed_query_kinds() {
    let corpus = build_corpus(Scale::Quick, 4048);
    let w = &corpus.workflows[0];
    let rid = w.runs[2].1[0]; // a large run
    let zoom = &corpus.zoom;
    let finals = zoom.final_outputs(rid).expect("loaded");
    let target = finals[0];

    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(move || {
                for _ in 0..50 {
                    let deep = zoom.deep_provenance(rid, w.bio, target).expect("visible");
                    assert!(deep.tuples() >= 1);
                    let imm = zoom
                        .immediate_provenance(rid, w.bio, target)
                        .expect("visible");
                    match imm {
                        zoom::core::ImmediateAnswer::Produced { inputs, .. } => {
                            assert!(!inputs.is_empty())
                        }
                        zoom::core::ImmediateAnswer::UserInput { .. } => {}
                    }
                    let deps = zoom
                        .dependents_of(rid, w.admin, DataId(1))
                        .expect("d1 exists");
                    let _ = deps.len();
                }
            });
        }
    });
}
