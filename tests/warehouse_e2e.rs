//! End-to-end warehouse tests on generated workloads: ingestion paths agree,
//! caching is transparent, persistence survives at scale, and the
//! evaluation corpus behaves like Section V expects.

use rand::rngs::StdRng;
use rand::SeedableRng;
use zoom::model::EventLog;
use zoom::Zoom;
use zoom_bench::{build_corpus, Scale};
use zoom_gen::{generate_run, generate_spec, RunGenConfig, RunKind, SpecGenConfig, WorkflowClass};

/// Loading a run directly and loading its synthesized log give identical
/// provenance answers across all three view families.
#[test]
fn run_and_log_ingestion_agree_on_generated_workloads() {
    let mut rng = StdRng::seed_from_u64(77);
    for class in [WorkflowClass::Linear, WorkflowClass::Loop] {
        let spec = generate_spec("agree", &SpecGenConfig::new(class, 15), &mut rng);
        let run = generate_run(&spec, &RunGenConfig::for_kind(RunKind::Medium), &mut rng)
            .expect("valid run");
        let log = EventLog::from_run(&run, &spec);

        let mut z = Zoom::new();
        let sid = z.register_workflow(spec.clone()).expect("fresh");
        let admin = z.admin_view(sid).expect("admin");
        let bb = z.black_box_view(sid).expect("bb");
        let direct = z.load_run(sid, run).expect("loads");
        let via_log = z.load_log(sid, &log).expect("loads");

        for view in [admin, bb] {
            let a = z
                .deep_provenance_of_final_output(direct, view)
                .expect("visible");
            let b = z
                .deep_provenance_of_final_output(via_log, view)
                .expect("visible");
            assert_eq!(a.rows, b.rows, "{class} view {view}");
            assert_eq!(a.execs, b.execs);
        }
    }
}

/// Cached and uncached query paths return identical answers; the cache
/// registers hits on repeats.
#[test]
fn cache_is_transparent() {
    let corpus = build_corpus(Scale::Quick, 123);
    corpus.zoom.warehouse().clear_cache();
    let w = &corpus.workflows[0];
    let rid = w.runs[2].1[0]; // a large run
    let cached = corpus
        .zoom
        .deep_provenance_of_final_output(rid, w.bio)
        .expect("visible");
    let vr = corpus
        .zoom
        .warehouse()
        .view_run_uncached(rid, w.bio)
        .expect("valid");
    let target = corpus.zoom.final_outputs(rid).expect("loaded")[0];
    let run = corpus.zoom.warehouse().run(rid).expect("loaded");
    let uncached = zoom::warehouse::deep_provenance(run, &vr, target)
        .expect("well-formed")
        .expect("visible");
    assert_eq!(cached.rows, uncached.rows);
    assert_eq!(cached.execs, uncached.execs);

    let before = corpus.zoom.warehouse().cache_counters();
    corpus
        .zoom
        .deep_provenance_of_final_output(rid, w.bio)
        .expect("visible");
    let after = corpus.zoom.warehouse().cache_counters();
    assert_eq!(after.0, before.0 + 1, "second query hits the cache");
}

/// A full quick-scale corpus survives snapshot persistence with identical
/// query answers.
#[test]
fn corpus_snapshot_roundtrip() {
    let corpus = build_corpus(Scale::Quick, 321);
    let mut path = std::env::temp_dir();
    path.push(format!("zoom-e2e-snapshot-{}", std::process::id()));
    corpus.zoom.save(&path).expect("saves");
    let reloaded = Zoom::load(&path).expect("loads");
    std::fs::remove_file(&path).ok();

    let s1 = corpus.zoom.warehouse().stats();
    let s2 = reloaded.warehouse().stats();
    assert_eq!(s1.specs, s2.specs);
    assert_eq!(s1.views, s2.views);
    assert_eq!(s1.runs, s2.runs);
    assert_eq!(s1.steps, s2.steps);
    assert_eq!(s1.data_objects, s2.data_objects);

    for w in corpus.workflows.iter().take(4) {
        for (_, runs) in &w.runs {
            let rid = runs[0];
            for view in [w.admin, w.bio, w.black_box] {
                let a = corpus
                    .zoom
                    .deep_provenance_of_final_output(rid, view)
                    .expect("visible");
                let b = reloaded
                    .deep_provenance_of_final_output(rid, view)
                    .expect("visible");
                assert_eq!(a.rows, b.rows);
            }
        }
    }
}

/// The Section V headline ordering holds on every run of a quick corpus:
/// UAdmin ≥ UBio ≥ UBlackBox, and UBlackBox answers contain only user
/// inputs plus the target.
#[test]
fn view_family_ordering_holds_corpus_wide() {
    let corpus = build_corpus(Scale::Quick, 55);
    for w in &corpus.workflows {
        for (_, runs) in &w.runs {
            for &rid in runs {
                let q = |view| {
                    corpus
                        .zoom
                        .deep_provenance_of_final_output(rid, view)
                        .expect("visible")
                };
                let (a, b, c) = (q(w.admin), q(w.bio), q(w.black_box));
                assert!(a.tuples() >= b.tuples());
                assert!(b.tuples() >= c.tuples());
                // Black-box answers: every row is user input or the target.
                let run = corpus.zoom.warehouse().run(rid).expect("loaded");
                let finals = run.final_outputs();
                for row in &c.rows {
                    assert!(
                        row.producer.is_none() || finals.contains(&row.data),
                        "black-box row {row:?} is neither user input nor final"
                    );
                }
            }
        }
    }
}

/// Journaled ingestion reaches the same state as bulk loading followed by
/// a snapshot: same stats, same provenance answers.
#[test]
fn journal_and_snapshot_agree() {
    use zoom::warehouse::JournaledWarehouse;
    let mut rng = StdRng::seed_from_u64(888);
    let specs: Vec<_> = (0..3)
        .map(|i| {
            generate_spec(
                &format!("jn-{i}"),
                &SpecGenConfig::new(WorkflowClass::Loop, 10),
                &mut rng,
            )
        })
        .collect();
    let runs: Vec<Vec<_>> = specs
        .iter()
        .map(|s| {
            (0..2)
                .map(|_| {
                    generate_run(s, &RunGenConfig::for_kind(RunKind::Medium), &mut rng)
                        .expect("valid run")
                })
                .collect()
        })
        .collect();

    // Path A: journal every mutation, then reopen.
    let mut jpath = std::env::temp_dir();
    jpath.push(format!("zoom-e2e-journal-{}", std::process::id()));
    {
        let mut jw = JournaledWarehouse::create(&jpath).expect("creates");
        for (s, rs) in specs.iter().zip(&runs) {
            let sid = jw.register_spec(s.clone()).expect("registers");
            jw.register_view(sid, zoom::model::UserView::admin(s))
                .expect("registers");
            for r in rs {
                jw.load_run(sid, r.clone()).expect("loads");
            }
        }
    }
    let replayed = JournaledWarehouse::open(&jpath).expect("replays");

    // Path B: bulk-load the same content into a plain warehouse.
    let mut z = Zoom::new();
    for (s, rs) in specs.iter().zip(&runs) {
        let sid = z.register_workflow(s.clone()).expect("registers");
        z.admin_view(sid).expect("registers");
        for r in rs {
            z.load_run(sid, r.clone()).expect("loads");
        }
    }

    let (a, b) = (replayed.warehouse().stats(), z.warehouse().stats());
    assert_eq!(a.specs, b.specs);
    assert_eq!(a.views, b.views);
    assert_eq!(a.runs, b.runs);
    assert_eq!(a.steps, b.steps);
    assert_eq!(a.data_objects, b.data_objects);

    // Same answers for every final output.
    for name in specs.iter().map(|s| s.name()) {
        let (sa, sb) = (
            replayed.warehouse().spec_by_name(name).expect("present"),
            z.warehouse().spec_by_name(name).expect("present"),
        );
        let (va, vb) = (
            replayed
                .warehouse()
                .find_view(sa, "UAdmin")
                .expect("present"),
            z.warehouse().find_view(sb, "UAdmin").expect("present"),
        );
        for (&ra, &rb) in replayed
            .warehouse()
            .runs_of_spec(sa)
            .iter()
            .zip(z.warehouse().runs_of_spec(sb))
        {
            let target = replayed
                .warehouse()
                .run(ra)
                .expect("loaded")
                .final_outputs()[0];
            let x = replayed
                .warehouse()
                .deep_provenance(ra, va, target)
                .expect("visible");
            let y = z
                .warehouse()
                .deep_provenance(rb, vb, target)
                .expect("visible");
            assert_eq!(x.rows, y.rows);
        }
    }
    std::fs::remove_file(&jpath).ok();
}

/// Edge inspection (Section IV): for every view edge of a materialized
/// view-run, `data_between` returns exactly the edge label.
#[test]
fn data_between_agrees_with_view_run_edges() {
    let corpus = build_corpus(Scale::Quick, 99);
    let w = &corpus.workflows[8]; // a synthetic workflow
    let rid = w.runs[1].1[0];
    let vr = corpus
        .zoom
        .warehouse()
        .view_run(rid, w.bio)
        .expect("materializes");
    let g = vr.graph();
    let mut checked = 0;
    for (e, s, t, data) in g.edges() {
        let _ = e;
        let from = vr.exec_at(s).map(|x| x.id);
        let to = vr.exec_at(t).map(|x| x.id);
        if (from.is_none() && s != vr.input()) || (to.is_none() && t != vr.output()) {
            continue;
        }
        let got = corpus
            .zoom
            .data_between(rid, w.bio, from, to)
            .expect("valid endpoints");
        for d in data {
            assert!(got.contains(d));
        }
        checked += 1;
    }
    assert!(checked > 0);
}
