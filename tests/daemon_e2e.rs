//! End-to-end tests of the `zoomd` daemon: an in-process [`Daemon`]
//! serving real sockets, driven through [`RemoteZoom`].
//!
//! The load-bearing property is *equivalence*: the daemon must answer
//! exactly what the in-process facade answers — same ids, same rows, same
//! error renderings — because that is what lets recorded traces replay
//! against it digest-for-digest and lets `zoomctl --connect` reuse every
//! local code path.

use zoom::core::{execute_canned_remote, CannedQuery, Daemon, DaemonConfig, RemoteZoom, Zoom};
use zoom::model::{DataId, EventLog};
use zoom::warehouse::{ReplayOptions, TenantQuotas, TraceReplayer};
use zoom_gen::library::{figure2_run, phylogenomic};

fn spawn_memory(shards: usize) -> Daemon {
    Daemon::spawn(
        "127.0.0.1:0",
        DaemonConfig {
            shards,
            ..DaemonConfig::default()
        },
    )
    .expect("daemon binds an ephemeral port")
}

#[test]
fn remote_answers_match_local_facade() {
    let daemon = spawn_memory(4);
    let mut rz = RemoteZoom::connect(daemon.addr(), "equiv").unwrap();

    let spec = phylogenomic();
    let run = figure2_run(&spec);
    let log = EventLog::from_run(&run, &spec);

    // Local oracle.
    let mut zoom = Zoom::new();
    let sid_l = zoom.register_workflow(spec.clone()).unwrap();
    let vid_l = zoom.admin_view(sid_l).unwrap();
    let good_l = zoom.build_view(sid_l, &["M2", "M3", "M7"]).unwrap();
    let rid_l = zoom.load_run(sid_l, run.clone()).unwrap();

    // Remote: identical id sequences.
    let sid_r = rz.register_workflow(spec.clone()).unwrap();
    let vid_r = rz.admin_view(sid_r).unwrap();
    let good_r = rz.build_view(sid_r, &["M2", "M3", "M7"]).unwrap();
    let rid_r = rz.load_log(sid_r, &log).unwrap();
    assert_eq!(sid_r, sid_l);
    assert_eq!(vid_r, vid_l);
    assert_eq!(good_r, good_l);
    assert_eq!(rid_r, rid_l);

    // Every canned query form agrees with the local answer.
    for &d in &run.final_outputs() {
        let local = zoom.deep_provenance(rid_l, good_l, d).unwrap();
        let remote = rz.deep_provenance(rid_r, good_r, d).unwrap();
        assert_eq!(local.rows, remote.rows);
        assert_eq!(local.execs, remote.execs);

        let li = zoom.immediate_provenance(rid_l, vid_l, d).unwrap();
        let ri = rz.immediate_provenance(rid_r, vid_r, d).unwrap();
        assert_eq!(format!("{li:?}"), format!("{ri:?}"));
    }
    assert_eq!(
        zoom.final_outputs(rid_l).unwrap(),
        rz.final_outputs(rid_r).unwrap()
    );
    assert_eq!(
        zoom.dependents_of(rid_l, vid_l, DataId(1)).unwrap(),
        rz.dependents_of(rid_r, vid_r, DataId(1)).unwrap()
    );
    assert_eq!(
        zoom.warehouse()
            .view_run(rid_l, good_l)
            .unwrap()
            .visible_data(),
        rz.visible_data(rid_r, good_r).unwrap()
    );

    // Error renderings agree byte-for-byte (what digest parity rests on).
    let el = zoom
        .deep_provenance(zoom::core::RunId(99), vid_l, DataId(1))
        .unwrap_err();
    let er = rz
        .deep_provenance(zoom::core::RunId(99), vid_r, DataId(1))
        .unwrap_err();
    assert_eq!(el.to_string(), er.to_string());

    // Canned query plumbing works end to end.
    let ans = execute_canned_remote(&mut rz, rid_r, good_r, &CannedQuery::FinalOutputs).unwrap();
    assert!(format!("{ans}").contains("data object"));
}

#[test]
fn remote_batch_and_resolve() {
    let daemon = spawn_memory(3);
    let mut rz = RemoteZoom::connect(daemon.addr(), "batch").unwrap();
    let spec = phylogenomic();
    let run = figure2_run(&spec);
    let log = EventLog::from_run(&run, &spec);
    let sid = rz.register_workflow(spec.clone()).unwrap();
    let vid = rz.admin_view(sid).unwrap();
    let runs: Vec<_> = (0..6).map(|_| rz.load_log(sid, &log).unwrap()).collect();

    let finals = run.final_outputs();
    let queries: Vec<_> = runs.iter().map(|&r| (r, vid, finals[0])).collect();
    let answers = rz.query_batch(&queries).unwrap();
    assert_eq!(answers.len(), 6);
    for a in &answers {
        assert!(a.is_ok(), "batch slot failed: {a:?}");
    }

    let (rsid, rvid, rruns) = rz.resolve("phylogenomic", Some("UAdmin")).unwrap();
    assert_eq!(rsid, sid);
    assert_eq!(rvid, Some(vid));
    assert_eq!(rruns, runs);
    let missing = rz.resolve("nope", None).unwrap_err();
    assert!(missing.to_string().contains("no workflow named"));
}

#[test]
fn golden_trace_replays_clean_through_the_daemon() {
    let daemon = spawn_memory(4);
    let mut rz = RemoteZoom::connect(daemon.addr(), "golden").unwrap();
    let bytes = std::fs::read(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/data/golden.zoomtrace"
    ))
    .expect("golden trace artifact present");
    let replayer = TraceReplayer::from_bytes(&bytes).unwrap();
    let report = replayer.replay(&mut rz, &ReplayOptions::default());
    assert!(report.ops > 1000, "golden trace is non-trivial");
    assert!(
        report.is_clean(),
        "daemon replay diverged: {:?}",
        &report.mismatches[..report.mismatches.len().min(5)]
    );
}

#[test]
fn streaming_ingest_commits_mid_run_over_the_wire() {
    let daemon = spawn_memory(2);
    let mut rz = RemoteZoom::connect(daemon.addr(), "stream").unwrap();
    let spec = phylogenomic();
    let run = figure2_run(&spec);
    let log = EventLog::from_run(&run, &spec);
    let sid = rz.register_workflow(spec.clone()).unwrap();
    let vid = rz.admin_view(sid).unwrap();
    let rid = rz.begin_stream(sid).unwrap();

    let mut committed = 0usize;
    for (i, ev) in log.events.iter().enumerate() {
        if let zoom::warehouse::PushOutcome::Committed(steps) = rz.stream_push(rid, ev).unwrap() {
            committed += steps.len();
            // The committed prefix answers queries mid-stream.
            if i > log.events.len() / 2 {
                let vis = rz.visible_data(rid, vid).unwrap();
                assert!(!vis.is_empty());
            }
        }
    }
    rz.stream_seal(rid).unwrap();
    assert_eq!(committed, run.step_count());
    let finals = rz.final_outputs(rid).unwrap();
    assert_eq!(finals, run.final_outputs());
}

#[test]
fn stats_aggregate_across_shards_and_sessions() {
    let daemon = spawn_memory(4);
    let mut rz = RemoteZoom::connect(daemon.addr(), "stats").unwrap();
    let spec = phylogenomic();
    let log = EventLog::from_run(&figure2_run(&spec), &spec);
    let sid = rz.register_workflow(spec.clone()).unwrap();
    for _ in 0..8 {
        rz.load_log(sid, &log).unwrap();
    }
    let per_shard = rz.stats_per_shard().unwrap();
    assert_eq!(per_shard.len(), 4);
    let agg = zoom::warehouse::ShardRouter::aggregate_stats(&per_shard);
    assert_eq!(agg.specs, 1, "broadcast tables are not summed");
    assert_eq!(agg.runs, 8, "per-run counters sum across shards");
    assert!(
        per_shard.iter().all(|s| s.runs < 8),
        "runs actually sharded"
    );

    // Session gauge counts every connection's logical sessions.
    let mut extra = Vec::new();
    for _ in 0..64 {
        extra.push(rz.open_session().unwrap());
    }
    assert!(rz.session_count().unwrap() >= 65);
    for id in extra {
        rz.close_session(id).unwrap();
    }
    assert_eq!(rz.session_count().unwrap(), 1);
    assert_eq!(rz.health_per_shard().unwrap().len(), 4);
}

#[test]
fn tenant_session_cap_is_enforced_per_tenant() {
    let daemon = Daemon::spawn(
        "127.0.0.1:0",
        DaemonConfig {
            shards: 2,
            dir: None,
            quotas: TenantQuotas {
                max_sessions: 3,
                ..TenantQuotas::default()
            },
            ..DaemonConfig::default()
        },
    )
    .unwrap();
    // Connecting burns one session slot per connection.
    let mut a = RemoteZoom::connect(daemon.addr(), "alice").unwrap();
    let mut b = RemoteZoom::connect(daemon.addr(), "bob").unwrap();
    a.open_session().unwrap();
    a.open_session().unwrap();
    let over = a.open_session().unwrap_err();
    assert!(
        over.to_string().contains("session cap"),
        "expected cap error, got: {over}"
    );
    // Another tenant is unaffected.
    b.open_session().unwrap();
    b.open_session().unwrap();
}

#[test]
fn closing_foreign_sessions_is_refused() {
    let daemon = spawn_memory(2);
    let a = RemoteZoom::connect(daemon.addr(), "alice").unwrap();
    let mut b = RemoteZoom::connect(daemon.addr(), "mallory").unwrap();
    let alices = a.session();

    // Session ids are guessable; guessing must not be enough to close
    // someone else's session (that would corrupt alice's quota books).
    let refused = b.close_session(alices).unwrap_err();
    assert!(
        refused
            .to_string()
            .contains("not opened on this connection"),
        "expected ownership refusal, got: {refused}"
    );
    assert_eq!(daemon.session_count(), 2, "alice's session survived");

    // Closing your own session still works.
    let own = b.open_session().unwrap();
    b.close_session(own).unwrap();
    assert_eq!(daemon.session_count(), 2);
}

#[test]
fn shutdown_requires_the_admin_token_when_configured() {
    let daemon = Daemon::spawn(
        "127.0.0.1:0",
        DaemonConfig {
            shards: 1,
            admin_token: Some("s3cret".to_string()),
            ..DaemonConfig::default()
        },
    )
    .unwrap();
    let mut rz = RemoteZoom::connect(daemon.addr(), "anon").unwrap();
    // No token / wrong token: refused, daemon stays up (even loopback —
    // a configured token always wins).
    for bad in [None, Some("wrong")] {
        let refused = rz.shutdown(bad).unwrap_err();
        assert!(
            refused.to_string().contains("admin token"),
            "expected token refusal, got: {refused}"
        );
    }
    rz.ping().unwrap();
    // The right token stops it.
    rz.shutdown(Some("s3cret")).unwrap();
}

#[test]
fn tokenless_shutdown_is_honoured_from_loopback() {
    let daemon = spawn_memory(1);
    let mut rz = RemoteZoom::connect(daemon.addr(), "local").unwrap();
    rz.shutdown(None).unwrap();
}

#[test]
fn oversized_tenant_names_are_refused() {
    let daemon = spawn_memory(1);
    let huge = "t".repeat(zoom::warehouse::wire::MAX_TENANT_NAME_BYTES + 1);
    let refused = match RemoteZoom::connect(daemon.addr(), &huge) {
        Ok(_) => panic!("oversized tenant name accepted"),
        Err(e) => e,
    };
    assert!(
        refused.to_string().contains("byte cap"),
        "expected name-cap refusal, got: {refused}"
    );
}

#[test]
fn durable_daemon_refuses_a_changed_shard_count() {
    let dir = std::env::temp_dir().join(format!("zoomd-e2e-shards-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = |shards| DaemonConfig {
        shards,
        dir: Some(dir.clone()),
        ..DaemonConfig::default()
    };
    drop(Daemon::spawn("127.0.0.1:0", config(3)).unwrap());
    let err = match Daemon::spawn("127.0.0.1:0", config(2)) {
        Ok(_) => panic!("changed shard count accepted"),
        Err(e) => e,
    };
    assert!(
        err.to_string().contains("created with 3 shard(s)"),
        "expected shard-count refusal, got: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn durable_daemon_survives_restart_with_same_ids() {
    let dir = std::env::temp_dir().join(format!("zoomd-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = phylogenomic();
    let run = figure2_run(&spec);
    let log = EventLog::from_run(&run, &spec);
    let config = || DaemonConfig {
        shards: 3,
        dir: Some(dir.clone()),
        ..DaemonConfig::default()
    };
    let (sid, vid, rid, finals) = {
        let daemon = Daemon::spawn("127.0.0.1:0", config()).unwrap();
        let mut rz = RemoteZoom::connect(daemon.addr(), "durable").unwrap();
        let sid = rz.register_workflow(spec.clone()).unwrap();
        let vid = rz.admin_view(sid).unwrap();
        let rid = rz.load_log(sid, &log).unwrap();
        let finals = rz.final_outputs(rid).unwrap();
        rz.checkpoint().unwrap();
        (sid, vid, rid, finals)
    };
    let daemon = Daemon::spawn("127.0.0.1:0", config()).unwrap();
    let mut rz = RemoteZoom::connect(daemon.addr(), "durable").unwrap();
    assert_eq!(rz.final_outputs(rid).unwrap(), finals);
    let deep = rz.deep_provenance(rid, vid, finals[0]).unwrap();
    assert!(!deep.rows.is_empty());
    // The id sequence continues where it left off.
    let next = rz.load_log(sid, &log).unwrap();
    assert_eq!(next.0, rid.0 + 1);
    drop(rz);
    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}
