//! Adversarial wire-protocol tests: raw sockets throwing hostile byte
//! sequences at a live `zoomd` daemon.
//!
//! The contract under test has three layers:
//!
//! 1. A declared frame length above `MAX_FRAME_BYTES` is rejected
//!    *before any allocation* — a 4 GiB length prefix costs nothing.
//! 2. A framing error (truncation, bad checksum, oversized length)
//!    poisons only that connection: one framed error reply, then drop.
//!    A codec error inside a valid frame keeps the connection alive.
//! 3. None of it is visible to other tenants: their in-flight queries
//!    keep completing while the daemon absorbs garbage.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;

use zoom::core::{Daemon, DaemonConfig, RemoteZoom};
use zoom::model::EventLog;
use zoom::warehouse::journal::crc32;
use zoom::warehouse::wire::{read_message, write_frame};
use zoom::warehouse::{Request, Response};
use zoom_gen::library::{figure2_run, phylogenomic};

fn spawn(shards: usize) -> Daemon {
    Daemon::spawn(
        "127.0.0.1:0",
        DaemonConfig {
            shards,
            ..DaemonConfig::default()
        },
    )
    .expect("daemon binds an ephemeral port")
}

fn raw(daemon: &Daemon) -> TcpStream {
    let s = TcpStream::connect(daemon.addr()).expect("daemon accepts connections");
    s.set_nodelay(true).unwrap();
    s
}

/// Reads one framed [`Response`] off a raw socket.
fn read_response(stream: &TcpStream) -> Option<Response> {
    let mut r = BufReader::new(stream.try_clone().unwrap());
    read_message::<Response>(&mut r).ok().flatten()
}

/// The daemon is still healthy: a fresh client can do real work.
fn assert_daemon_serves(daemon: &Daemon) {
    let mut rz = RemoteZoom::connect(daemon.addr(), "probe").unwrap();
    assert!(
        matches!(rz.ping(), Ok(())),
        "daemon stopped answering pings"
    );
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    let daemon = spawn(2);
    let mut s = raw(&daemon);
    // Declared length: 4 GiB - 1. If the server allocated this eagerly the
    // test box would notice; instead it must answer with a framed error.
    s.write_all(&u32::MAX.to_le_bytes()).unwrap();
    s.write_all(&0u32.to_le_bytes()).unwrap();
    s.flush().unwrap();
    match read_response(&s) {
        Some(Response::Error { message }) => {
            assert!(
                message.contains("exceeds cap"),
                "expected the frame-cap error, got: {message}"
            );
        }
        other => panic!("expected a framed error reply, got {other:?}"),
    }
    // The byte stream is no longer trusted: the connection must be dropped.
    let mut rest = Vec::new();
    BufReader::new(&s).read_to_end(&mut rest).unwrap();
    assert!(
        rest.is_empty(),
        "connection should close after framing error"
    );
    assert_daemon_serves(&daemon);
}

#[test]
fn corrupted_checksum_gets_an_error_then_a_hangup() {
    let daemon = spawn(2);
    let payload = b"not even close to a request";
    let mut s = raw(&daemon);
    s.write_all(&(payload.len() as u32).to_le_bytes()).unwrap();
    s.write_all(&(crc32(payload) ^ 0xDEAD_BEEF).to_le_bytes())
        .unwrap();
    s.write_all(payload).unwrap();
    s.flush().unwrap();
    match read_response(&s) {
        Some(Response::Error { message }) => {
            assert!(message.contains("checksum"), "got: {message}");
        }
        other => panic!("expected a framed error reply, got {other:?}"),
    }
    let mut rest = Vec::new();
    BufReader::new(&s).read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
    assert_daemon_serves(&daemon);
}

#[test]
fn garbage_inside_a_valid_frame_keeps_the_connection_alive() {
    let daemon = spawn(2);
    let s = raw(&daemon);
    let mut w = s.try_clone().unwrap();
    // A perfectly framed payload that is not a Request: the frame
    // boundaries are still trustworthy, so the connection survives.
    write_frame(&mut w, &[0xFF; 64]).unwrap();
    w.flush().unwrap();
    let mut reader = BufReader::new(s.try_clone().unwrap());
    match read_message::<Response>(&mut reader).unwrap() {
        Some(Response::Error { message }) => {
            assert!(message.contains("malformed request"), "got: {message}");
        }
        other => panic!("expected malformed-request error, got {other:?}"),
    }
    // Same connection, now speak the protocol: it still answers.
    zoom::warehouse::wire::write_message(&mut w, &Request::Ping).unwrap();
    w.flush().unwrap();
    match read_message::<Response>(&mut reader).unwrap() {
        Some(Response::Pong) => {}
        other => panic!("connection should still serve after codec error, got {other:?}"),
    }
}

#[test]
fn mid_frame_disconnects_leave_no_wedged_state() {
    let daemon = spawn(2);
    for cut in 0..12 {
        let mut s = raw(&daemon);
        // A frame claiming 1 KiB, cut off after `cut` payload bytes.
        s.write_all(&1024u32.to_le_bytes()).unwrap();
        s.write_all(&0u32.to_le_bytes()).unwrap();
        s.write_all(&vec![0xAB; cut * 7]).unwrap();
        s.flush().unwrap();
        drop(s); // hang up mid-frame
    }
    // Partial *headers* too: 1..7 bytes of the 8-byte header.
    for cut in 1..8 {
        let mut s = raw(&daemon);
        s.write_all(&[0x41; 8][..cut]).unwrap();
        s.flush().unwrap();
        drop(s);
    }
    assert_daemon_serves(&daemon);
}

#[test]
fn random_byte_storms_never_kill_the_daemon() {
    let daemon = spawn(2);
    // Deterministic xorshift so a failure reproduces byte-for-byte.
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..40 {
        let mut s = raw(&daemon);
        let len = (next() % 512 + 1) as usize;
        let blob: Vec<u8> = (0..len).map(|_| next() as u8).collect();
        let _ = s.write_all(&blob);
        let _ = s.flush();
        let _ = s.shutdown(std::net::Shutdown::Write);
        // Drain whatever the daemon says (an error frame, or nothing).
        let mut sink = Vec::new();
        let _ = BufReader::new(&s).read_to_end(&mut sink);
    }
    assert_daemon_serves(&daemon);
}

#[test]
fn hostile_traffic_does_not_disturb_other_tenants() {
    let daemon = spawn(4);

    // An honest tenant with real data and a stream of in-flight queries.
    let mut honest = RemoteZoom::connect(daemon.addr(), "honest").unwrap();
    let spec = phylogenomic();
    let run = figure2_run(&spec);
    let log = EventLog::from_run(&run, &spec);
    let sid = honest.register_workflow(spec.clone()).unwrap();
    let vid = honest.admin_view(sid).unwrap();
    let rid = honest.load_log(sid, &log).unwrap();
    let finals = run.final_outputs();

    let addr = daemon.addr().to_string();
    let attacker = std::thread::spawn(move || {
        let mut state: u64 = 0xDEAD_BEEF_CAFE_F00D;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..60 {
            let Ok(mut s) = TcpStream::connect(&addr) else {
                continue;
            };
            match i % 3 {
                // Oversized declared length.
                0 => {
                    let _ = s.write_all(&u32::MAX.to_le_bytes());
                    let _ = s.write_all(&0u32.to_le_bytes());
                }
                // Mid-frame hangup.
                1 => {
                    let _ = s.write_all(&4096u32.to_le_bytes());
                    let _ = s.write_all(&0u32.to_le_bytes());
                    let _ = s.write_all(&[0xCC; 17]);
                }
                // Pure noise.
                _ => {
                    let blob: Vec<u8> = (0..97).map(|_| next() as u8).collect();
                    let _ = s.write_all(&blob);
                }
            }
            let _ = s.flush();
        }
    });

    // Every query completes with the right answer while the storm runs.
    for round in 0..50 {
        let d = finals[round % finals.len()];
        let result = honest
            .deep_provenance(rid, vid, d)
            .unwrap_or_else(|e| panic!("query failed during hostile traffic: {e}"));
        assert!(!result.rows.is_empty());
    }
    attacker.join().expect("attacker thread survived");
    assert_daemon_serves(&daemon);
}
