//! Chaos suite for the resilience layer: transient storage faults under
//! concurrent queries, circuit-breaker degradation and recovery, deadline
//! bounds on pathological queries, and the admission-control accounting
//! invariants.
//!
//! Companion to `crates/warehouse/tests/durable_recovery.rs` (which kills
//! the store at every sync point): here the storage *misbehaves but
//! survives*, and the store must absorb it — retry transients, trip the
//! breaker on persistent failures, keep answering queries throughout, and
//! never lose an acknowledged write.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};
use zoom::model::{RunBuilder, SpecBuilder, UserView, WorkflowRun, WorkflowSpec};
use zoom::warehouse::io::FaultFs;
use zoom::warehouse::{
    BreakerState, DurableError, DurableOptions, DurableWarehouse, RetryPolicy, Warehouse,
    WarehouseError,
};
use zoom::{DataId, Zoom};
use zoom_gen::{generate_run, generate_spec, RunGenConfig, SpecGenConfig, WorkflowClass};

fn tempdir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("zoom-chaos-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

/// A linear three-module spec, unique by name.
fn spec(name: &str) -> WorkflowSpec {
    let mut b = SpecBuilder::new(name);
    b.analysis("M0");
    b.analysis("M1");
    b.analysis("M2");
    b.from_input("M0").edge("M0", "M1").edge("M1", "M2");
    b.to_output("M2");
    b.build().unwrap()
}

/// A linear run through `s`: d1 → M0 → d2 → M1 → d3 → M2 → d4.
fn run(s: &WorkflowSpec) -> WorkflowRun {
    let mut rb = RunBuilder::new(s);
    let steps: Vec<_> = (0..3)
        .map(|i| rb.step(s.module(&format!("M{i}")).unwrap()))
        .collect();
    rb.input_edge(steps[0], [1]);
    rb.data_edge(steps[0], steps[1], [2]);
    rb.data_edge(steps[1], steps[2], [3]);
    rb.output_edge(steps[2], [4]);
    rb.build().unwrap()
}

fn no_compact() -> DurableOptions {
    DurableOptions {
        compact_threshold_bytes: u64::MAX,
        auto_compact: false,
        ..DurableOptions::default()
    }
}

/// Every mutation hits one injected transient fault (plus write latency to
/// widen race windows) while reader threads hammer queries; the default
/// retry policy must absorb every fault, no acknowledged write may be lost
/// across a reopen, and the retry counter must account for every fault.
#[test]
fn transient_faults_absorbed_under_concurrent_queries() {
    let dir = tempdir("transient");
    let faulty = Arc::new(FaultFs::counting());
    let mut dw = DurableWarehouse::open_with(faulty.clone(), &dir, no_compact()).unwrap();

    // A known-good run for the readers to query throughout.
    let s0 = spec("chaos-base");
    let sid = dw.register_spec(s0.clone()).unwrap();
    let vid = dw.register_view(sid, UserView::admin(&s0)).unwrap();
    let rid = dw.load_run(sid, run(&s0)).unwrap();

    faulty.set_write_latency(Duration::from_millis(1));
    const WRITES: u64 = 20;
    let shared = RwLock::new(dw);
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            for i in 0..WRITES {
                // One transient fault armed per mutation: the first append
                // attempt fails, the retry succeeds.
                faulty.arm_failures(1, true);
                let name = format!("chaos-t{i}");
                shared.write().unwrap().register_spec(spec(&name)).unwrap();
            }
            done.store(true, Ordering::Release);
        });
        for _ in 0..4 {
            scope.spawn(|| {
                while !done.load(Ordering::Acquire) {
                    let g = shared.read().unwrap();
                    let res = g.warehouse().deep_provenance(rid, vid, DataId(4)).unwrap();
                    assert_eq!(res.tuples(), 4);
                }
            });
        }
    });

    let dw = shared.into_inner().unwrap();
    let m = dw.warehouse().metrics_with(dw.stats());
    assert!(
        m.resilience.io_retries >= WRITES,
        "every armed fault should cost one retry: {} < {WRITES}",
        m.resilience.io_retries
    );
    assert_eq!(m.resilience.breaker_trips, 0, "transients must not trip");
    assert!(!dw.degraded());
    drop(dw);

    // Nothing acknowledged may be missing after recovery.
    let recovered = DurableWarehouse::open(&dir).unwrap();
    assert_eq!(recovered.stats().specs as u64, WRITES + 1);
    for i in 0..WRITES {
        let name = format!("chaos-t{i}");
        assert!(
            recovered.warehouse().spec_by_name(&name).is_some(),
            "acknowledged `{name}` lost"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Persistent append failures trip the breaker into degraded read-only
/// mode: mutations fail fast without touching storage, queries keep
/// serving from memory, and a successful checkpoint (the half-open probe)
/// restores write availability.
#[test]
fn breaker_trips_degrades_and_recovers_via_checkpoint() {
    let dir = tempdir("breaker");
    let faulty = Arc::new(FaultFs::counting());
    let options = DurableOptions {
        retry: RetryPolicy::none(),
        breaker_threshold: 2,
        ..no_compact()
    };
    let mut dw = DurableWarehouse::open_with(faulty.clone(), &dir, options).unwrap();
    let s0 = spec("breaker-base");
    let sid = dw.register_spec(s0.clone()).unwrap();
    let vid = dw.register_view(sid, UserView::admin(&s0)).unwrap();
    let rid = dw.load_run(sid, run(&s0)).unwrap();

    // Two consecutive permanent failures = the threshold.
    faulty.arm_failures(2, false);
    assert!(dw.register_spec(spec("lost-1")).is_err());
    assert!(!dw.degraded(), "one failure is below the threshold");
    assert!(dw.register_spec(spec("lost-2")).is_err());
    assert!(dw.degraded(), "threshold reached: breaker open");
    assert!(dw.stats().degraded);
    let h = dw.health();
    assert!(!h.writable);
    assert_eq!(h.breaker, BreakerState::Open);

    // Degraded writes fail fast — no storage op is even attempted.
    let ops_before = faulty.ops();
    let err = dw.register_spec(spec("rejected")).unwrap_err();
    assert!(
        matches!(err, DurableError::Warehouse(WarehouseError::Degraded)),
        "expected Degraded, got {err:?}"
    );
    assert_eq!(faulty.ops(), ops_before, "fail-fast must not touch storage");

    // Queries still serve from memory while degraded.
    let res = dw.warehouse().deep_provenance(rid, vid, DataId(4)).unwrap();
    assert_eq!(res.tuples(), 4);

    // Storage heals; the next checkpoint is the half-open probe.
    faulty.heal();
    dw.checkpoint().unwrap();
    assert!(!dw.degraded(), "successful probe closes the breaker");
    assert!(dw.health().writable);
    let after = dw.register_spec(spec("post-recovery")).unwrap();
    assert_ne!(after, sid);

    let m = dw.warehouse().metrics_with(dw.stats());
    assert_eq!(m.resilience.breaker_trips, 1);
    assert_eq!(m.resilience.breaker_recoveries, 1);
    assert!(m.resilience.degraded_writes_rejected >= 1);
    drop(dw);

    // Acknowledged survives; rejected and failed writes are simply absent.
    let recovered = DurableWarehouse::open(&dir).unwrap();
    let w = recovered.warehouse();
    assert!(w.spec_by_name("breaker-base").is_some());
    assert!(w.spec_by_name("post-recovery").is_some());
    for lost in ["lost-1", "lost-2", "rejected"] {
        assert!(w.spec_by_name(lost).is_none(), "`{lost}` was never acked");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Builds a loop-heavy dense run large enough that deep provenance does
/// real work (thousands of closure members).
fn pathological_zoom() -> (Zoom, zoom::core::RunId, zoom::core::ViewId, DataId) {
    let mut rng = StdRng::seed_from_u64(4242);
    let spec = generate_spec(
        "pathological",
        &SpecGenConfig::new(WorkflowClass::Loop, 40),
        &mut rng,
    );
    let cfg = RunGenConfig {
        user_input: (50, 100),
        data_per_step: (5, 10),
        loop_iterations: (30, 60),
        max_nodes: 20_000,
        max_edges: 40_000,
    };
    let run = generate_run(&spec, &cfg, &mut rng).expect("valid run");
    let mut z = Zoom::new();
    let sid = z.register_workflow(spec).unwrap();
    let vid = z.admin_view(sid).unwrap();
    let rid = z.load_run(sid, run).unwrap();
    let target = z.final_outputs(rid).unwrap()[0];
    (z, rid, vid, target)
}

/// An already-expired deadline interrupts a pathological query
/// deterministically, and a mid-flight expiry surfaces within twice the
/// budget (plus scheduler slack): the cooperative checks bound overshoot
/// to one check stride, not the whole traversal.
#[test]
fn deadlines_bound_pathological_queries() {
    let (z, rid, vid, target) = pathological_zoom();

    // Baseline: unbounded answer exists and takes measurable work.
    let t0 = Instant::now();
    let full = z.deep_provenance(rid, vid, target).unwrap();
    let unbounded = t0.elapsed();
    assert!(full.tuples() > 64, "run too small to exercise the stride");

    // Deterministic: an expired budget must interrupt, promptly.
    z.warehouse().clear_cache();
    let t0 = Instant::now();
    let err = z
        .deep_provenance_within(rid, vid, target, Duration::ZERO)
        .unwrap_err();
    assert!(
        matches!(err, WarehouseError::DeadlineExceeded),
        "expected DeadlineExceeded, got {err:?}"
    );
    assert!(
        t0.elapsed() < unbounded.max(Duration::from_millis(1)) + Duration::from_millis(250),
        "expired deadline should abort almost immediately"
    );
    assert!(z.metrics().resilience.deadline_exceeded >= 1);

    // Timing: a budget a quarter of the measured cost should expire
    // mid-traversal and surface within ~2× the budget. The added slack
    // absorbs scheduler noise on loaded CI machines; the real overshoot
    // is one 64-node check stride.
    let budget = (unbounded / 4).max(Duration::from_micros(100));
    z.warehouse().clear_cache();
    let t0 = Instant::now();
    let res = z.deep_provenance_within(rid, vid, target, budget);
    let elapsed = t0.elapsed();
    match res {
        Err(WarehouseError::DeadlineExceeded) => {
            assert!(
                elapsed <= budget * 2 + Duration::from_millis(50),
                "query overshot its deadline: {elapsed:?} vs budget {budget:?}"
            );
        }
        // A warm machine may finish inside the budget; that is a valid
        // outcome — the deterministic case above already proved expiry.
        Ok(r) => assert_eq!(r.tuples(), full.tuples()),
        Err(other) => panic!("unexpected error: {other:?}"),
    }

    // The default-deadline knob routes every facade query through the
    // same bound.
    z.set_default_deadline(Some(Duration::ZERO));
    z.warehouse().clear_cache();
    assert!(matches!(
        z.deep_provenance(rid, vid, target),
        Err(WarehouseError::DeadlineExceeded)
    ));
    z.set_default_deadline(None);
    assert!(z.deep_provenance(rid, vid, target).is_ok());
}

/// Admission control sheds deterministically when the store is saturated,
/// and the counters balance: every attempt is either admitted or shed.
#[test]
fn admission_sheds_when_saturated_and_accounts_exactly() {
    let mut w = Warehouse::new();
    let s = spec("admission");
    let sid = w.register_spec(s.clone()).unwrap();
    let vid = w.register_view(sid, UserView::admin(&s)).unwrap();
    let rid = w.load_run(sid, run(&s)).unwrap();

    // One slot, no queue: holding the only permit makes the next query
    // shed immediately.
    w.set_admission_limits(1, 0);
    let permit = w.admission().clone().admit().expect("slot free");
    let err = w.deep_provenance(rid, vid, DataId(4)).unwrap_err();
    assert!(
        matches!(err, WarehouseError::Overloaded),
        "expected Overloaded, got {err:?}"
    );
    drop(permit);
    w.deep_provenance(rid, vid, DataId(4)).unwrap();

    let m = w.metrics_with(w.stats());
    assert_eq!(
        m.resilience.attempts,
        m.resilience.admitted + m.resilience.shed,
        "every admission attempt must be admitted or shed"
    );
    assert!(m.resilience.shed >= 1);
    assert!(m.resilience.admitted >= 1);
}

/// Chaos under replay: a recorded ingestion trace is re-executed against a
/// durable warehouse whose storage injects one transient fault before
/// every operation. The retry layer must absorb every fault, every per-op
/// digest must match both the recording and a clean in-memory replay, and
/// a reopen must find every acknowledged event — the capture/replay
/// harness is only trustworthy if determinism survives misbehaving
/// storage.
#[test]
fn replayed_trace_survives_transient_faults_without_divergence() {
    use zoom::model::EventLog;
    use zoom::warehouse::{
        ReplayOptions, RunId, SpecId, TraceOp, TraceRecorder, TraceReplayer, TraceTarget, ViewId,
    };

    // Record an all-success session: three streamed runs of the linear
    // spec with a post-seal query battery each. (No failing ops: their
    // digests embed the error type's rendering, which differs between the
    // in-memory and durable targets.)
    let s = spec("chaos-replay");
    let log = EventLog::from_run(&run(&s), &s);
    let mut mem = Warehouse::new();
    let mut rec = TraceRecorder::default();
    rec.record(&mut mem, TraceOp::RegisterSpec(s.clone()));
    rec.record(
        &mut mem,
        TraceOp::RegisterView(SpecId(0), UserView::admin(&s)),
    );
    for r in 0..3u32 {
        let rid = RunId(r);
        rec.record(&mut mem, TraceOp::BeginStream(SpecId(0)));
        for ev in &log.events {
            rec.record(&mut mem, TraceOp::PushEvent(rid, ev.clone()));
        }
        rec.record(&mut mem, TraceOp::SealStream(rid));
        rec.record(&mut mem, TraceOp::DeepProvenance(rid, ViewId(0), DataId(4)));
        rec.record(&mut mem, TraceOp::DependentsOf(rid, ViewId(0), DataId(1)));
        rec.record(
            &mut mem,
            TraceOp::ImmediateProvenance(rid, ViewId(0), DataId(2)),
        );
    }
    let bytes = rec.to_bytes().unwrap();
    let replayer = TraceReplayer::from_bytes(&bytes).unwrap();

    // The clean oracle: an in-memory replay reproduces every digest.
    let mut clean = Warehouse::new();
    let clean_report = replayer.replay(&mut clean, &ReplayOptions::default());
    assert!(clean_report.is_clean(), "{:?}", clean_report.mismatches);

    // The chaos run: one transient fault armed before every single op.
    let dir = tempdir("replay-chaos");
    let faulty = Arc::new(FaultFs::counting());
    let mut dw = DurableWarehouse::open_with(faulty.clone(), &dir, no_compact()).unwrap();
    for r in replayer.records() {
        faulty.arm_failures(1, true);
        let got = dw.apply_trace_op(&r.op);
        assert_eq!(
            got,
            r.digest,
            "op {} diverged under transient faults",
            r.op.name()
        );
    }
    let events = log.len() as u64;
    let m = dw.warehouse().metrics_with(dw.stats());
    assert!(
        m.resilience.io_retries >= 3 * events,
        "each journaled push should have absorbed its armed fault: {} retries",
        m.resilience.io_retries
    );
    assert_eq!(m.resilience.breaker_trips, 0, "transients must not trip");
    assert_eq!(m.stream.streams_sealed, 3);
    drop(dw);

    // Zero lost acknowledged events: the reopened store holds all three
    // sealed runs and answers exactly like the in-memory oracle.
    let recovered = DurableWarehouse::open(&dir).unwrap();
    assert_eq!(recovered.stats().runs, 3);
    assert_eq!(recovered.warehouse().active_streams(), 0);
    for r in 0..3u32 {
        let a = recovered
            .warehouse()
            .deep_provenance(RunId(r), ViewId(0), DataId(4))
            .unwrap();
        let b = clean
            .deep_provenance(RunId(r), ViewId(0), DataId(4))
            .unwrap();
        assert_eq!(a, b, "run {r} diverged after recovery");
        assert_eq!(a.tuples(), 4);
    }
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Seeded fault schedules against the shard router
// ---------------------------------------------------------------------------

/// The deterministic chaos driver end-to-end at the router level: the same
/// seed must produce the same per-op outcome trace on two independent
/// router instances (distinct directories, same fault plan), every shard
/// must be repairable once its disk heals, and every acknowledged load
/// must survive quarantine + repair + checkpoint + reopen.
#[test]
fn seeded_fault_schedule_reproduces_router_outcomes_and_loses_no_acks() {
    use zoom::model::EventLog;
    use zoom::warehouse::{ChaosDriver, FaultSchedule, ShardRouter, ShardState, StorageIo};

    const SHARDS: usize = 2;
    const OPS: u64 = 40;

    let twitchy = || {
        let mut o = no_compact();
        o.retry = RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        };
        o.breaker_threshold = 2;
        o
    };

    // One episode: drive OPS loads through a fault-scheduled router,
    // returning (per-op outcome trace, acked count, run_count at reopen).
    let episode = |seed: u64, name: &str| -> (Vec<String>, u32) {
        let dir = tempdir(name);
        let ios: Vec<Arc<FaultFs>> = (0..SHARDS).map(|_| Arc::new(FaultFs::counting())).collect();
        let dyn_ios: Vec<Arc<dyn StorageIo>> = ios
            .iter()
            .map(|f| Arc::clone(f) as Arc<dyn StorageIo>)
            .collect();
        let router = ShardRouter::open_durable_with(&dir, SHARDS, twitchy(), &dyn_ios).unwrap();
        let s = spec("chaos-schedule");
        let log = EventLog::from_run(&run(&s), &s);
        let sid = router.register_spec(&s).unwrap();

        let schedule = FaultSchedule::generate(seed, SHARDS, OPS, 3);
        let mut driver = ChaosDriver::new(schedule, ios.clone());
        let mut trace = Vec::new();
        let mut acked = 0u32;
        while driver.op() < OPS {
            driver.tick();
            // Outcome classes only — durability error renderings embed
            // the (per-episode) directory path.
            match router.load_log(sid, &log) {
                Ok(rid) => {
                    acked += 1;
                    trace.push(format!("ok:{}", rid.0));
                }
                Err(WarehouseError::ShardUnavailable { shard, .. }) => {
                    trace.push(format!("unavailable:{shard}"));
                }
                Err(_) => trace.push("refused".to_string()),
            }
            // The supervisor pass: sync breaker state, quarantine any
            // shard the breaker has given up on.
            for (sh, st) in router.supervise_once().into_iter().enumerate() {
                if st == ShardState::Degraded {
                    router.quarantine_shard(sh);
                    trace.push(format!("quarantined:{sh}"));
                }
            }
        }

        // Heal every disk and repair whatever is out of the write path;
        // repair must succeed and re-admit each shard.
        for (sh, io) in ios.iter().enumerate() {
            io.heal();
            if router.shard_state(sh) != ShardState::Healthy {
                let outcome = router.repair_shard(sh).unwrap();
                assert_eq!(outcome.shard, sh);
                assert!(outcome.fsck.is_some(), "durable repair carries fsck");
            }
            assert_eq!(router.shard_state(sh), ShardState::Healthy);
        }
        router.checkpoint().unwrap();
        let persisted = router.run_count();
        drop(router);

        // Zero lost acks: a cold reopen still holds every acknowledged
        // run (refused loads burned no id, so the counts line up).
        let reopened = ShardRouter::open_durable_with(&dir, SHARDS, twitchy(), &dyn_ios).unwrap();
        assert_eq!(reopened.run_count(), persisted);
        assert_eq!(reopened.run_count(), acked);
        std::fs::remove_dir_all(&dir).ok();
        (trace, acked)
    };

    let (trace_a, acked_a) = episode(0xC0FFEE, "sched-a");
    let (trace_b, acked_b) = episode(0xC0FFEE, "sched-b");
    assert_eq!(trace_a, trace_b, "same seed must replay identically");
    assert_eq!(acked_a, acked_b);
    assert!(acked_a > 0, "the schedule refused every load");
    assert!(
        trace_a.iter().any(|t| !t.starts_with("ok:")),
        "the schedule never faulted anything — widen it"
    );
}
