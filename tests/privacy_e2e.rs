//! End-to-end tests of the daemon's privacy enforcement and the
//! observability surfaces it gates: server-side `Resolve` must not be an
//! existence oracle for hidden workflows, the slow-query ring must not
//! leak cross-tenant query context, and policy administration itself is
//! admin-gated.

use zoom::core::{Daemon, DaemonConfig, RemoteZoom, Zoom};
use zoom::model::{DataId, EventLog};
use zoom::warehouse::VisibilityPolicy;
use zoom_gen::library::{figure2_run, phylogenomic};

fn spawn(shards: usize, admin_token: Option<&str>) -> Daemon {
    Daemon::spawn(
        "127.0.0.1:0",
        DaemonConfig {
            shards,
            admin_token: admin_token.map(str::to_string),
            ..DaemonConfig::default()
        },
    )
    .expect("daemon binds an ephemeral port")
}

/// Loads the phylogenomic demo through `ctl` and returns (spec, admin
/// view, run).
fn load_demo(ctl: &mut RemoteZoom) -> (zoom::core::SpecId, zoom::core::ViewId, zoom::core::RunId) {
    let spec = phylogenomic();
    let run = figure2_run(&spec);
    let log = EventLog::from_run(&run, &spec);
    let sid = ctl.register_workflow(spec).unwrap();
    let vid = ctl.admin_view(sid).unwrap();
    let rid = ctl.load_log(sid, &log).unwrap();
    (sid, vid, rid)
}

/// Satellite 2 (golden bytes): resolving a hidden-and-present workflow
/// must answer byte-for-byte what resolving it on a daemon that never
/// registered it answers — no existence oracle.
#[test]
fn resolve_renders_hidden_exactly_like_absent() {
    // Daemon A: the workflow exists, hidden from alice.
    let with_wf = spawn(2, None);
    let mut ctl = RemoteZoom::connect(with_wf.addr(), "ctl").unwrap();
    load_demo(&mut ctl);
    ctl.set_policy(
        "alice",
        Some(VisibilityPolicy {
            hidden_modules: vec![],
            hidden_workflows: vec!["phylogenomic".to_string()],
        }),
        None,
    )
    .unwrap();

    // Daemon B: the workflow genuinely does not exist.
    let without_wf = spawn(2, None);
    let mut probe = RemoteZoom::connect(without_wf.addr(), "alice").unwrap();

    let mut alice = RemoteZoom::connect(with_wf.addr(), "alice").unwrap();
    let hidden_err = alice.resolve("phylogenomic", None).unwrap_err().to_string();
    let absent_err = probe.resolve("phylogenomic", None).unwrap_err().to_string();
    assert_eq!(
        hidden_err, absent_err,
        "hidden-and-present must render like truly-absent"
    );
    // The golden bytes themselves, pinned: a change here is a protocol
    // change an attacker could fingerprint across versions.
    assert_eq!(hidden_err, "no workflow named `phylogenomic`");

    // View-name resolution through a hidden workflow is equally blind.
    let hidden_view = alice
        .resolve("phylogenomic", Some("UAdmin"))
        .unwrap_err()
        .to_string();
    let absent_view = probe
        .resolve("phylogenomic", Some("UAdmin"))
        .unwrap_err()
        .to_string();
    assert_eq!(hidden_view, absent_view);

    // The unrestricted tenant still resolves normally.
    let (sid, vid, runs) = ctl.resolve("phylogenomic", Some("UAdmin")).unwrap();
    assert_eq!(sid.0, 0);
    assert!(vid.is_some());
    assert_eq!(runs.len(), 1);
}

/// A hidden workflow's runs render as absent runs, byte-identically.
#[test]
fn hidden_workflow_runs_render_like_absent_runs() {
    let daemon = spawn(2, None);
    let mut ctl = RemoteZoom::connect(daemon.addr(), "ctl").unwrap();
    let (_, vid, rid) = load_demo(&mut ctl);
    ctl.set_policy(
        "alice",
        Some(VisibilityPolicy {
            hidden_modules: vec![],
            hidden_workflows: vec!["phylogenomic".to_string()],
        }),
        None,
    )
    .unwrap();
    let mut alice = RemoteZoom::connect(daemon.addr(), "alice").unwrap();
    let hidden = alice
        .deep_provenance(rid, vid, DataId(1))
        .unwrap_err()
        .to_string();
    let absent = alice
        .deep_provenance(zoom::core::RunId(999), vid, DataId(1))
        .unwrap_err()
        .to_string();
    assert_eq!(
        hidden.replace(&format!("{}", rid.0), "R"),
        absent.replace("999", "R")
    );
    assert_eq!(
        alice.final_outputs(rid).unwrap_err().to_string(),
        format!("{rid} not found")
    );
}

/// Satellite 1: the slow-query ring is tenant-filtered for non-admin
/// callers and only admin may reset the capture threshold.
#[test]
fn slowlog_is_tenant_scoped_without_admin_token() {
    let daemon = spawn(2, Some("sekrit"));
    let mut ctl = RemoteZoom::connect(daemon.addr(), "ctl").unwrap();
    let (_, vid, rid) = load_demo(&mut ctl);

    // Admin (token) opens capture for everything.
    assert!(ctl.slow_queries_admin(Some(0), Some("sekrit")).is_ok());

    let mut alice = RemoteZoom::connect(daemon.addr(), "alice").unwrap();
    let mut bob = RemoteZoom::connect(daemon.addr(), "bob").unwrap();
    let spec = phylogenomic();
    let finals = figure2_run(&spec).final_outputs();
    alice.deep_provenance(rid, vid, finals[0]).unwrap();
    bob.deep_provenance(rid, vid, finals[0]).unwrap();
    bob.dependents_of(rid, vid, DataId(1)).unwrap();

    // Each non-admin tenant sees exactly its own entries.
    let alice_log = alice.slow_queries(None).unwrap();
    assert!(!alice_log.is_empty());
    assert!(alice_log
        .iter()
        .all(|q| q.tenant.as_deref() == Some("alice")));
    let bob_log = bob.slow_queries(None).unwrap();
    assert!(bob_log.iter().all(|q| q.tenant.as_deref() == Some("bob")));
    assert!(bob_log.len() > alice_log.len());

    // A non-admin "threshold reset" is ignored: the ring keeps capturing.
    let before = ctl.slow_queries_admin(None, Some("sekrit")).unwrap().len();
    alice.slow_queries(Some(u64::MAX)).unwrap();
    alice.deep_provenance(rid, vid, finals[0]).unwrap();
    let after = ctl.slow_queries_admin(None, Some("sekrit")).unwrap().len();
    assert!(after > before, "non-admin must not disable capture");

    // Admin sees the full cross-tenant ring.
    let full = ctl.slow_queries_admin(None, Some("sekrit")).unwrap();
    let tenants: std::collections::HashSet<_> =
        full.iter().filter_map(|q| q.tenant.clone()).collect();
    assert!(
        tenants.contains("alice") && tenants.contains("bob"),
        "{tenants:?}"
    );
}

/// Metrics snapshots embed the slow-query ring: non-admin callers get it
/// filtered to their own tenant.
#[test]
fn metrics_slowlog_is_tenant_filtered() {
    let daemon = spawn(2, Some("sekrit"));
    let mut ctl = RemoteZoom::connect(daemon.addr(), "ctl").unwrap();
    let (_, vid, rid) = load_demo(&mut ctl);
    ctl.slow_queries_admin(Some(0), Some("sekrit")).unwrap();
    let mut alice = RemoteZoom::connect(daemon.addr(), "alice").unwrap();
    let spec = phylogenomic();
    let finals = figure2_run(&spec).final_outputs();
    alice.deep_provenance(rid, vid, finals[0]).unwrap();
    ctl.deep_provenance(rid, vid, finals[0]).unwrap();

    let own = alice.metrics_per_shard().unwrap();
    assert!(own
        .iter()
        .flat_map(|s| &s.slow_queries)
        .all(|q| q.tenant.as_deref() == Some("alice")));

    let full = ctl.metrics_per_shard_admin(Some("sekrit")).unwrap();
    let tenants: std::collections::HashSet<_> = full
        .iter()
        .flat_map(|s| &s.slow_queries)
        .filter_map(|q| q.tenant.clone())
        .collect();
    assert!(tenants.contains("ctl"), "{tenants:?}");
}

/// Policy administration is admin-gated; reading one's own policy is not.
#[test]
fn policy_administration_requires_admin() {
    let daemon = spawn(2, Some("sekrit"));
    let mut ctl = RemoteZoom::connect(daemon.addr(), "ctl").unwrap();
    load_demo(&mut ctl);
    let policy = VisibilityPolicy {
        hidden_modules: vec!["M5".to_string()],
        hidden_workflows: vec![],
    };

    // Tokenless install is refused even from loopback (token configured).
    assert!(ctl.set_policy("alice", Some(policy.clone()), None).is_err());
    ctl.set_policy("alice", Some(policy.clone()), Some("sekrit"))
        .unwrap();

    // Alice reads her own policy without a token…
    let mut alice = RemoteZoom::connect(daemon.addr(), "alice").unwrap();
    assert_eq!(alice.policy("alice", None).unwrap(), Some(policy));
    // …but not another tenant's.
    assert!(alice.policy("ctl", None).is_err());
    // And cannot clear her own restriction.
    assert!(alice.set_policy("alice", None, None).is_err());

    // Admin clears it.
    ctl.set_policy("alice", None, Some("sekrit")).unwrap();
    assert_eq!(ctl.policy("alice", Some("sekrit")).unwrap(), None);
}

/// An unsatisfiable policy is refused at install time over the wire.
#[test]
fn unsatisfiable_policy_is_refused_at_install() {
    let daemon = spawn(1, None);
    let mut ctl = RemoteZoom::connect(daemon.addr(), "ctl").unwrap();
    let mut b = zoom::model::SpecBuilder::new("solo");
    b.analysis("Only");
    b.from_input("Only");
    b.to_output("Only");
    ctl.register_workflow(b.build().unwrap()).unwrap();
    let err = ctl
        .set_policy(
            "alice",
            Some(VisibilityPolicy {
                hidden_modules: vec!["Only".to_string()],
                hidden_workflows: vec![],
            }),
            None,
        )
        .unwrap_err()
        .to_string();
    assert!(err.contains("unsatisfiable"), "{err}");
}

/// View-returning requests hand a restricted tenant the effective (meet)
/// id — the id it holds is already safe to query with.
#[test]
fn view_registration_returns_the_effective_view() {
    let daemon = spawn(2, None);
    let mut ctl = RemoteZoom::connect(daemon.addr(), "ctl").unwrap();
    let (sid, admin_vid, rid) = load_demo(&mut ctl);
    ctl.set_policy(
        "alice",
        Some(VisibilityPolicy {
            hidden_modules: vec!["M5".to_string()],
            hidden_workflows: vec![],
        }),
        None,
    )
    .unwrap();

    let mut alice = RemoteZoom::connect(daemon.addr(), "alice").unwrap();
    // Alice re-requests the admin view: she gets the privacy meet back,
    // not the admin id.
    let got = alice.admin_view(sid).unwrap();
    assert_ne!(got, admin_vid);
    // And querying with it answers — the substituted view is real.
    let spec = phylogenomic();
    let finals = figure2_run(&spec).final_outputs();
    let res = alice.deep_provenance(rid, got, finals[0]).unwrap();
    assert!(res.tuples() > 0);

    // Local-facade equivalence: the daemon's answer equals what the
    // in-process facade answers for the same policy.
    let mut local = Zoom::new();
    let lsid = local.register_workflow(spec.clone()).unwrap();
    let lvid = local.admin_view(lsid).unwrap();
    let lrid = local.load_run(lsid, figure2_run(&spec)).unwrap();
    local
        .set_policy(
            "alice",
            Some(VisibilityPolicy {
                hidden_modules: vec!["M5".to_string()],
                hidden_workflows: vec![],
            }),
        )
        .unwrap();
    let lres = local
        .deep_provenance_as("alice", lrid, lvid, finals[0])
        .unwrap();
    assert_eq!(lres.rows, res.rows);
}
