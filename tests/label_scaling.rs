//! Release-mode scaling smoke for the interval-label index: a 100k-step
//! deep chain must build, answer, and incrementally extend under a
//! generous wall-clock budget, and must beat the `O(n²/64)` bitset on
//! memory by an order of magnitude. Debug builds run a 20k-step chain
//! with the timing assertions relaxed, so `cargo test -q` stays fast;
//! CI runs this test with `--release` for the real budget.

use std::time::{Duration, Instant};
use zoom::gen::deep_chain;
use zoom::graph::NodeId;
use zoom::model::{UserView, ViewRun};
use zoom::warehouse::{
    deep_provenance_labeled, dependents_of_labeled, Deadline, LabelIndex, UpdateOutcome,
};

const RELEASE: bool = !cfg!(debug_assertions);

#[test]
fn label_index_scales_to_deep_chains() {
    let steps = if RELEASE { 100_000 } else { 20_000 };
    let build_budget = if RELEASE {
        Duration::from_secs(10)
    } else {
        Duration::from_secs(120)
    };

    let (spec, run) = deep_chain(steps);
    let nodes = run.graph().node_count();

    let started = Instant::now();
    let labels = LabelIndex::build(&run).expect("chains are acyclic");
    let build = started.elapsed();
    assert!(
        build < build_budget,
        "label build took {build:?} for {nodes} nodes (budget {build_budget:?})"
    );

    // O(n · avg_labels) memory: a chain's labels are one interval per
    // node per direction, and the bitset analytic footprint is ≥10× that
    // from well below this size.
    let bitset_bytes = 2 * nodes * nodes.div_ceil(64) * 8;
    let label_bytes = labels.memory_bytes();
    assert!(
        label_bytes * 10 <= bitset_bytes,
        "labels {label_bytes}B vs bitset {bitset_bytes}B — less than 10x smaller"
    );

    // Point queries answer in microseconds: the closure of an early step's
    // output is tiny and label-directed enumeration is O(answer).
    let vr = ViewRun::new(&run, &UserView::admin(&spec));
    let early = run.all_data()[1]; // produced by the first step
    let started = Instant::now();
    let reps = 50u32;
    for _ in 0..reps {
        deep_provenance_labeled(&run, &vr, &labels, early)
            .expect("no failure")
            .expect("visible");
    }
    let per_query = started.elapsed() / reps;
    if RELEASE {
        assert!(
            per_query < Duration::from_millis(5),
            "point query took {per_query:?}"
        );
    }

    // The full-closure query from the final output touches every node —
    // still bounded, since enumeration is O(answer) not O(n²).
    let out = run.final_outputs()[0];
    let started = Instant::now();
    let full = deep_provenance_labeled(&run, &vr, &labels, out)
        .expect("no failure")
        .expect("visible");
    let closure = started.elapsed();
    assert!(full.tuples() >= steps, "full closure misses the chain");
    if RELEASE {
        assert!(
            closure < Duration::from_secs(5),
            "closure query took {closure:?}"
        );
    }

    // Forward provenance from the first user input reaches the whole chain.
    let first = run.all_data()[0];
    let dependents = dependents_of_labeled(&run, &vr, &labels, first).expect("visible");
    assert!(
        dependents.len() >= steps,
        "forward closure misses the chain"
    );

    // Incremental append: extending the chain by one sink touches every
    // ancestor, so it shares the rebuild's O(n) asymptotics — only assert
    // it does not *exceed* a rebuild by more than noise. The asymptotic
    // win is asserted below on the fan-out, where `affected` is O(1).
    let mut grown = labels.clone();
    let last_step = NodeId::from_index(nodes - 1);
    let started = Instant::now();
    let v = grown.append_node(&[last_step.index()], &[]);
    let append = started.elapsed();
    assert!(grown.reaches(NodeId::from_index(0), NodeId::from_index(v)));
    assert!(grown.reaches(last_step, NodeId::from_index(v)));
    if RELEASE {
        assert!(
            append < build * 2,
            "chain append ({append:?}) should not dwarf a rebuild ({build:?})"
        );
    }

    // The asymptotic append win: on a wide fan-out a new leaf's closure
    // is {input, root, leaf}, so `O(affected)` is constant while a
    // rebuild is O(n) — two-plus orders of magnitude at this size. The
    // first append after a build pays a one-off Vec-doubling realloc of
    // the label storage, so it absorbs that untimed; the timed appends
    // after it measure the actual incremental work.
    let (_, fan) = zoom::gen::wide_fanout(steps);
    let started = Instant::now();
    let mut fan_labels = LabelIndex::build(&fan).expect("fan-outs are acyclic");
    let fan_build = started.elapsed();
    let root = NodeId::from_index(2); // input, output, then the root step
    let leaf = fan_labels.append_node(&[root.index()], &[]);
    assert!(fan_labels.reaches(root, NodeId::from_index(leaf)));
    assert!(fan_labels.reaches(NodeId::from_index(0), NodeId::from_index(leaf)));
    let append_reps = 32u32;
    let started = Instant::now();
    for _ in 0..append_reps {
        fan_labels.append_node(&[root.index()], &[]);
    }
    let fan_append = started.elapsed() / append_reps;
    if RELEASE {
        assert!(
            fan_append * 50 < fan_build,
            "fan-out append ({fan_append:?}) should be far under a rebuild ({fan_build:?})"
        );
    }

    // And update_to on an unchanged graph is a free no-op.
    let outcome = grown
        .update_to(run.graph(), &mut Deadline::unlimited())
        .expect("acyclic");
    // `grown` has one more node than the run graph, so this is a rebuild
    // request; the original index sees Fresh.
    let mut unchanged = labels.clone();
    assert_eq!(
        unchanged
            .update_to(run.graph(), &mut Deadline::unlimited())
            .expect("acyclic"),
        UpdateOutcome::Fresh
    );
    assert_eq!(outcome, UpdateOutcome::Rebuilt);

    eprintln!(
        "label_scaling: {nodes} nodes — build {build:?}, point {per_query:?}, \
         closure {closure:?}, append {append:?}, {label_bytes}B labels vs \
         {bitset_bytes}B bitset"
    );
}
